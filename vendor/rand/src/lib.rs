//! Vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and no crates.io cache, so the
//! workspace vendors the tiny API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`Rng::random_range`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, seedable, and good
//! enough statistically for seeded simulation experiments. It is **not** the
//! upstream `StdRng` (ChaCha12) and must not be used for cryptography.
//!
//! Unlike upstream, the internal state is inspectable
//! ([`rngs::StdRng::state_words`]) so simulation checkpoints can capture and
//! restore RNG state exactly — the `apdm-ledger` flight recorder relies on
//! this for deterministic replay from mid-run snapshots.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset of upstream's trait the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    ///
    /// Unlike upstream, an empty `lo..lo` range returns `lo` instead of
    /// panicking (several experiment sweeps legitimately collapse a range to
    /// a point).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }

    /// A uniform value over the full domain of a supported primitive.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types with a "whole domain" uniform distribution for [`Rng::random`].
pub trait Standard: Sized {
    /// Sample a value over the type's whole domain.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// 53 random mantissa bits mapped to `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start <= self.end, "random_range: start > end");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: start > end");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_from(rng) as f32
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start <= self.end, "random_range: start > end");
                let span = (self.end as i128 - self.start as i128) as u128;
                if span == 0 {
                    return self.start;
                }
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: start > end");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: the standard seeding sequence for xoshiro generators.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's deterministic seeded generator (xoshiro256++).
    ///
    /// Not the upstream ChaCha12 `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw 256-bit state, for simulation checkpoints.
        pub fn state_words(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from captured state words.
        pub fn from_state_words(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
        let mut c = StdRng::seed_from_u64(8);
        let seq_a: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let seq_c: Vec<u64> = (0..8).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let g = rng.random_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&g));
            let u = rng.random_range(0usize..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn degenerate_range_returns_the_point() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.random_range(5..5), 5);
        assert_eq!(rng.random_range(5.0..5.0f64), 5.0);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).abs() < (expected as i64) / 5,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn state_roundtrip_resumes_identically() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..17 {
            let _ = rng.random_range(0.0..1.0);
        }
        let words = rng.state_words();
        let mut resumed = StdRng::from_state_words(words);
        for _ in 0..100 {
            assert_eq!(
                rng.random_range(0u64..u64::MAX),
                resumed.random_range(0u64..u64::MAX)
            );
        }
    }
}
