//! Vendored stand-in for `serde`.
//!
//! The build container has no network access, so the workspace ships a tiny
//! self-hosted serialization layer under the `serde` name. Instead of
//! upstream's visitor-based architecture it uses one concrete data model,
//! [`Value`]: [`Serialize`] maps a type into a `Value`, [`Deserialize`] maps
//! a `Value` back. The companion `serde_derive` proc-macro crate provides
//! `#[derive(Serialize, Deserialize)]` for plain structs and enums (named
//! fields, tuple/newtype/unit structs, unit/newtype/tuple/struct variants —
//! exactly the shapes this workspace uses), and the vendored `serde_json`
//! renders `Value` to and from JSON text.
//!
//! Conventions match `serde_json` where cheap: structs are maps, newtype
//! structs are transparent, enums are externally tagged (`"Variant"` or
//! `{"Variant": payload}`). Maps with non-string keys are encoded as
//! sequences of `[key, value]` pairs — this workspace only needs
//! self-round-tripping, not wire compatibility.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The single concrete data model every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved, which
    /// makes serialized output canonical for a given type).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` when this is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Map entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Sequence elements, when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Signed integer contents, when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// Unsigned integer contents, when integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// Boolean contents.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// A one-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can map themselves into a [`Value`].
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", value))
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value.as_i64().ok_or_else(|| Error::expected("integer", value))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let u = value.as_u64().ok_or_else(|| Error::expected("unsigned integer", value))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Rc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq().ok_or_else(|| Error::expected("sequence", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Maps serialize as a sequence of `[key, value]` pairs so that non-string
/// keys (tuples, ids) round-trip losslessly.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Seq(
        entries
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_entries_from_value<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<Vec<(K, V)>, Error> {
    let items = value
        .as_seq()
        .ok_or_else(|| Error::expected("sequence of pairs", value))?;
    items
        .iter()
        .map(|item| {
            let pair = item
                .as_seq()
                .ok_or_else(|| Error::expected("[key, value] pair", item))?;
            if pair.len() != 2 {
                return Err(Error::custom("map entries must be [key, value] pairs"));
            }
            Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_entries_from_value(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort by serialized key so output is canonical regardless of hash
        // iteration order.
        let mut entries: Vec<(String, Value, Value)> = self
            .iter()
            .map(|(k, v)| {
                let kv = k.to_value();
                (format!("{kv:?}"), kv, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Seq(
            entries
                .into_iter()
                .map(|(_, k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_entries_from_value(value)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut rendered: Vec<(String, Value)> = self
            .iter()
            .map(|item| {
                let v = item.to_value();
                (format!("{v:?}"), v)
            })
            .collect();
        rendered.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Seq(rendered.into_iter().map(|(_, v)| v).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Helpers the derive macro expands to; not part of the public contract.
pub mod derive_support {
    use super::{Error, Value};

    /// Look up a struct field, treating a missing key as `null` (so `Option`
    /// fields tolerate elision, as upstream does).
    pub fn field<'v>(value: &'v Value, name: &str) -> &'v Value {
        static NULL: Value = Value::Null;
        value.get(name).unwrap_or(&NULL)
    }

    /// The `(tag, payload)` of an externally-tagged enum value.
    pub fn variant(value: &Value) -> Result<(&str, &Value), Error> {
        static NULL: Value = Value::Null;
        match value {
            Value::Str(tag) => Ok((tag.as_str(), &NULL)),
            Value::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
            other => Err(Error::expected("an enum tag", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(u64::from_value(&7u64.to_value()), Ok(7));
        assert_eq!(i32::from_value(&(-3i32).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(u64::from_value(&u64::MAX.to_value()), Ok(u64::MAX));
    }

    #[test]
    fn numeric_coercions() {
        // Integers widen to floats on demand.
        assert_eq!(f64::from_value(&Value::Int(2)), Ok(2.0));
        // Signed/unsigned cross over when in range.
        assert_eq!(u64::from_value(&Value::Int(5)), Ok(5));
        assert!(u64::from_value(&Value::Int(-5)).is_err());
    }

    #[test]
    fn options_and_containers_roundtrip() {
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()), Ok(None));
        let v = Some(4u32);
        assert_eq!(Option::<u32>::from_value(&v.to_value()), Ok(Some(4)));

        let xs = vec![(1i32, 2.0f64), (3, 4.0)];
        assert_eq!(Vec::<(i32, f64)>::from_value(&xs.to_value()), Ok(xs));

        let mut map = BTreeMap::new();
        map.insert((1i32, 2i32), "a".to_string());
        map.insert((3, 4), "b".to_string());
        assert_eq!(
            BTreeMap::<(i32, i32), String>::from_value(&map.to_value()),
            Ok(map)
        );
    }

    #[test]
    fn arc_is_transparent() {
        let v = Arc::new(vec![1u8, 2, 3]);
        assert_eq!(Arc::<Vec<u8>>::from_value(&v.to_value()).unwrap(), v);
    }
}
