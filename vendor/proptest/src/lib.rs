//! Vendored stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the strategy/`proptest!` subset the workspace's property tests use, on top
//! of the vendored deterministic `rand`. Differences from upstream worth
//! knowing:
//!
//! - no shrinking: a failing case panics with the generated inputs unshrunk
//!   (the `prop_assert*` macros are plain `assert*`, so the panic message
//!   carries whatever context the test formats in);
//! - deterministic: each test's RNG is seeded from its module path + name,
//!   so failures reproduce exactly and `proptest-regressions` files are not
//!   consulted;
//! - a fixed number of cases per test ([`test_runner::CASES`]).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange};

/// A recipe for generating test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<T: Clone> Strategy for Range<T>
where
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: Clone> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// A strategy that always yields the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over a type's whole domain.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

macro_rules! arbitrary_via_words {
    ($($t:ty => $gen:expr),+ $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                let f: fn(&mut StdRng) -> $t = $gen;
                f(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )+};
}

arbitrary_via_words! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    isize => |rng| rng.next_u64() as isize,
    f64 => |rng| rng.random_range(-1.0e9..1.0e9),
}

/// The canonical strategy for `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies (the `vec` subset the workspace uses).

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Deterministic per-test runner support used by [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases generated per property test.
    pub const CASES: usize = 64;

    /// Error type for the `Result` context property-test bodies run in.
    /// The `prop_assert*` macros panic directly, so this only surfaces if a
    /// test body constructs an `Err` by hand.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    /// A deterministic RNG derived from the test's fully qualified name, so
    /// each property test explores a stable but test-specific input sequence.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    //! Everything a property-test module conventionally imports.

    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running [`test_runner::CASES`]
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut prop_rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _prop_case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut prop_rng);)*
                    // Upstream bodies run in a `Result` context so tests can
                    // `return Ok(())` to skip a case early; mirror that.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!("property case failed: {error:?}");
                    }
                }
            }
        )*
    };
}

/// Upstream records failures and shrinks; here it is a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Upstream records failures and shrinks; here it is a plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Upstream records failures and shrinks; here it is a plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_point() -> impl Strategy<Value = (f64, f64)> {
        (0.0..=1.0f64, 0.0..=1.0f64)
    }

    proptest! {
        /// Range strategies stay in bounds; vec lengths honor their spec.
        #[test]
        fn generated_values_in_bounds(
            x in 0u64..100,
            f in -2.0..2.0f64,
            v in collection::vec(0i32..10, 1..5),
            exact in collection::vec(0.0..1.0f64, 3),
            flag in any::<bool>(),
        ) {
            prop_assert!(x < 100);
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&i| (0..10).contains(&i)));
            prop_assert_eq!(exact.len(), 3);
            prop_assert!(u8::from(flag) <= 1);
        }

        /// `prop_map` and custom strategy functions compose.
        #[test]
        fn mapping_composes(p in arb_point().prop_map(|(x, y)| x + y)) {
            prop_assert!((0.0..=2.0).contains(&p));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::test_runner::rng_for;
        use rand::Rng;
        let mut a = rng_for("mod::case");
        let mut b = rng_for("mod::case");
        for _ in 0..32 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }
}
