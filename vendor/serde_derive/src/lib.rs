//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde stand-in.
//!
//! The build container has no crates.io access, so this proc macro is written
//! against raw [`proc_macro`] — no `syn`, no `quote`. It parses the derive
//! input token stream by hand and emits impls of the Value-based traits from
//! the vendored `serde` crate as source strings.
//!
//! Supported shapes (everything the workspace actually derives):
//! - structs with named fields → `Value::Map` in declaration order
//! - newtype structs → transparent (the inner value)
//! - tuple structs → `Value::Seq`
//! - unit structs → `Value::Null`
//! - enums, externally tagged: unit variants → `Value::Str(name)`, data
//!   variants → single-entry `Value::Map { name: payload }`
//!
//! Unsupported (fails with `compile_error!`): generic types, unions, and
//! `#[serde(...)]` field attributes — none exist in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip any number of outer attributes (`#[...]`) at the iterator head.
fn skip_attributes(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        // The bracket group of the attribute.
        tokens.next();
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, `pub(in ...)`).
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Count top-level comma-separated chunks in a tuple-struct/variant body,
/// ignoring commas nested inside `<...>` or inner groups. Groups arrive as
/// single `TokenTree::Group`s so only angle brackets need depth tracking.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut chunk_has_tokens = false;
    let mut angle_depth = 0i32;
    let mut prev_was_dash = false;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => angle_depth += 1,
                    // `->` in `fn` pointer types must not close an angle bracket.
                    '>' if !prev_was_dash => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        if chunk_has_tokens {
                            arity += 1;
                        }
                        chunk_has_tokens = false;
                        prev_was_dash = false;
                        continue;
                    }
                    _ => {}
                }
                prev_was_dash = c == '-';
            }
            _ => prev_was_dash = false,
        }
        chunk_has_tokens = true;
    }
    if chunk_has_tokens {
        arity += 1;
    }
    arity
}

/// Extract field names (declaration order) from a named-fields body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        let mut prev_was_dash = false;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                let c = p.as_char();
                match c {
                    '<' => angle_depth += 1,
                    '>' if !prev_was_dash => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
                prev_was_dash = c == '-';
            } else {
                prev_was_dash = false;
            }
        }
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match tokens.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match tokens.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        for tt in tokens.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found `{other:?}`")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unexpected struct body: `{other:?}`")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unexpected enum body: `{other:?}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            (
                name,
                format!("::serde::Value::Map(vec![{}])", entries.join(", ")),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Seq(vec![{}])", entries.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                let arm = match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{vn}(f0) => ::serde::Value::Map(vec![\
                         (::std::string::String::from({vn:?}), \
                         ::serde::Serialize::to_value(f0))])"
                    ),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![\
                             (::std::string::String::from({vn:?}), \
                             ::serde::Value::Seq(vec![{}]))])",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let vals: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![\
                             (::std::string::String::from({vn:?}), \
                             ::serde::Value::Map(vec![{}]))])",
                            vals.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            let body = if arms.is_empty() {
                "match *self {}".to_string()
            } else {
                format!("match self {{ {} }}", arms.join(", "))
            };
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::derive_support::field(value, {f:?}))?"
                    )
                })
                .collect();
            let body = format!(
                "if value.as_map().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::expected(\
                         \"map for struct {name}\", value));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            );
            (name, body)
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            let body = format!(
                "let items = value.as_seq().ok_or_else(|| \
                     ::serde::Error::expected(\"seq for tuple struct {name}\", value))?;\n\
                 if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(format!(\
                         \"tuple struct {name} expects {arity} elements, got {{}}\", \
                         items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            );
            (name, body)
        }
        Item::UnitStruct { name } => (name, format!("::std::result::Result::Ok({name})")),
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                let arm = match &v.kind {
                    VariantKind::Unit => {
                        format!("{vn:?} => ::std::result::Result::Ok({name}::{vn})")
                    }
                    VariantKind::Tuple(1) => format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(payload)?))"
                    ),
                    VariantKind::Tuple(arity) => {
                        let inits: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "{vn:?} => {{\n\
                                 let items = payload.as_seq().ok_or_else(|| \
                                     ::serde::Error::expected(\
                                         \"seq for variant {name}::{vn}\", payload))?;\n\
                                 if items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::custom(\
                                         format!(\"variant {name}::{vn} expects {arity} \
                                         elements, got {{}}\", items.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }}",
                            inits.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::derive_support::field(payload, {f:?}))?"
                                )
                            })
                            .collect();
                        format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {} }})",
                            inits.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            arms.push(format!(
                "other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for enum {name}\")))"
            ));
            let body = format!(
                "let (tag, payload) = ::serde::derive_support::variant(value)?;\n\
                 let _ = payload;\n\
                 match tag {{ {} }}",
                arms.join(", ")
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
