//! Vendored stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] model to JSON text and parses it
//! back. Output is canonical for a given `Value`: struct fields serialize in
//! declaration order and no whitespace is emitted by [`to_string`], which is
//! what lets `apdm-ledger` hash serialized records deterministically.
//!
//! Divergences from upstream worth knowing: non-finite floats serialize as
//! `null` (upstream does the same), and integers parse to `i64` when they
//! fit, then `u64`, then `f64`.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Specialized `Result` for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to compact (whitespace-free) JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into the generic [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a typed value from the generic [`Value`] model.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format_f64(*f));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

/// Shortest-roundtrip float text, always distinguishable from an integer.
fn format_f64(f: f64) -> String {
    let text = format!("{f}");
    if text.contains(['.', 'e', 'E']) {
        text
    } else {
        format!("{text}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest plain (escape-free, ASCII-or-UTF8) run at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42i32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&5.0f64).unwrap(), "5.0");
        assert_eq!(
            to_string("hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        let back: f64 = from_str("5.0").unwrap();
        assert_eq!(back, 5.0);
        let neg: i64 = from_str("-12").unwrap();
        assert_eq!(neg, -12);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert((1i32, -2i32), "a".to_string());
        m.insert((3, 4), "b".to_string());
        let text = to_string(&m).unwrap();
        let back: BTreeMap<(i32, i32), String> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(9);
        let none: Option<u64> = None;
        assert_eq!(to_string(&some).unwrap(), "9");
        assert_eq!(to_string(&none).unwrap(), "null");
        let back: Option<u64> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn string_escapes_parse() {
        let s: String = from_str(r#""tab\tnl\nuniApair😀""#).unwrap();
        assert_eq!(s, "tab\tnl\nuniApair😀");
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::Int(1)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": 1"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nulla").is_err());
    }
}
