//! Vendored stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this crate provides the
//! harness API shape the workspace's `harness = false` bench targets use
//! (groups, `BenchmarkId`, `Bencher::iter`, `criterion_group!`). Timing is a
//! deliberately simple wall-clock mean over an adaptive iteration count — no
//! statistics, no plots, no comparison to saved baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point; carries the defaults groups inherit.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Upstream parses CLI flags; the stand-in accepts and ignores them so
    /// `cargo bench -- <filter>` invocations still run.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream prints the end-of-run comparison summary; nothing to do here.
    pub fn final_summary(&self) {}

    /// Default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Default time budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        };
        println!();
        println!("benchmarking group `{}`", group.name);
        group
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &id.full_name(),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

/// A named collection of benchmarks sharing sample/time settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Time `f`'s `Bencher::iter` body under this group's settings.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.full_name()),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Like [`Self::bench_function`] but passes `input` through to the
    /// closure (upstream uses this to tag the ID with the input).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.full_name());
        run_benchmark(&name, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (upstream emits summary statistics here).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier for `function_name` at a specific `parameter` point.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier varying only by parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) if self.function_name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function_name, p),
            None => self.function_name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: name,
            parameter: None,
        }
    }
}

/// Passed to the benchmark closure; collects timings via [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, adapting the iteration count to the time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration estimate from one call.
        let warmup = Instant::now();
        black_box(routine());
        let estimate = warmup.elapsed().max(Duration::from_nanos(1));

        // Pick an iteration count that fits the budget but still repeats
        // fast routines enough for a stable mean.
        let budget = self.measurement_time;
        let by_time = (budget.as_nanos() / estimate.as_nanos()).min(10_000_000) as usize;
        let iterations = by_time.clamp(1, 10_000_000).max(self.sample_size.min(1000));

        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        let total = start.elapsed();
        self.mean = Some(total / iterations as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        mean: None,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("{name:<56} time: {}", format_duration(mean)),
        None => println!("{name:<56} time: (no iter() call)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundle benchmark functions into one callable group, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("trivial", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 3).full_name(), "f/3");
        assert_eq!(BenchmarkId::from("plain").full_name(), "plain");
        assert_eq!(BenchmarkId::from_parameter("x=1").full_name(), "x=1");
    }
}
