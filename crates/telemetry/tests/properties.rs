//! Integration and property tests for the telemetry crate: span-stack
//! discipline across panics, and a property-tested JSONL round trip over
//! the full normalized record domain.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use proptest::prelude::*;

use apdm_telemetry::{
    self as telemetry, current_span, export_jsonl, import_jsonl, span, span_depth, FieldValue,
    Level, Name, RecordKind, RingCollector, TraceRecord, VirtualTs,
};

// ---------------------------------------------------------------------------
// Span nesting and unwind safety
// ---------------------------------------------------------------------------

#[test]
fn span_nesting_tracks_depth() {
    let ring = Rc::new(RingCollector::new(64));
    let _guard = telemetry::install(ring.clone());

    assert_eq!(span_depth(), 0);
    {
        let _outer = span!("outer");
        assert_eq!(span_depth(), 1);
        assert_eq!(current_span().as_deref(), Some("outer"));
        {
            let _inner = span!("inner", device = 3u64);
            assert_eq!(span_depth(), 2);
            assert_eq!(current_span().as_deref(), Some("inner"));
        }
        assert_eq!(span_depth(), 1);
        assert_eq!(current_span().as_deref(), Some("outer"));
    }
    assert_eq!(span_depth(), 0);
    assert_eq!(current_span(), None);

    // Emission order: outer-start, inner-start, inner-end, outer-end, with
    // depths 0, 1, 1, 0.
    let recs = ring.records();
    let shape: Vec<(RecordKind, &str, u64)> = recs
        .iter()
        .map(|r| (r.kind, r.name.as_ref(), r.depth))
        .collect();
    assert_eq!(
        shape,
        vec![
            (RecordKind::SpanStart, "outer", 0),
            (RecordKind::SpanStart, "inner", 1),
            (RecordKind::SpanEnd, "inner", 1),
            (RecordKind::SpanEnd, "outer", 0),
        ]
    );
}

#[test]
fn panic_unwind_restores_span_stack() {
    let ring = Rc::new(RingCollector::new(64));
    let _guard = telemetry::install(ring.clone());

    let result = catch_unwind(AssertUnwindSafe(|| {
        let _outer = span!("unwind.outer");
        let _inner = span!("unwind.inner");
        assert_eq!(span_depth(), 2);
        panic!("deliberate");
    }));
    assert!(result.is_err());

    // The unwind dropped inner before outer, so both closed in order and
    // the thread-local stack is empty again.
    assert_eq!(span_depth(), 0);
    assert_eq!(current_span(), None);
    let ends: Vec<&str> = ring
        .records()
        .iter()
        .filter(|r| r.kind == RecordKind::SpanEnd)
        .map(|r| r.name.as_ref())
        .map(|n| match n {
            "unwind.inner" => "unwind.inner",
            "unwind.outer" => "unwind.outer",
            other => panic!("unexpected span end {other}"),
        })
        .collect();
    assert_eq!(ends, vec!["unwind.inner", "unwind.outer"]);

    // The stack is usable afterwards: a fresh span opens at depth 0.
    let _next = span!("after.unwind");
    assert_eq!(span_depth(), 1);
    assert_eq!(current_span().as_deref(), Some("after.unwind"));
}

// ---------------------------------------------------------------------------
// JSONL round trip (property)
// ---------------------------------------------------------------------------

/// Alphabet exercising the JSON writer's escape paths: quotes, backslash,
/// control characters, multi-byte UTF-8.
const CHARS: &[char] = &[
    'a', 'Z', '0', '_', '.', '-', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{7f}', 'é', 'λ',
    '🛰',
];

fn arb_string() -> impl Strategy<Value = String> {
    collection::vec(0usize..CHARS.len(), 0..8)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i]).collect())
}

/// A field value from the *normalized* domain the `From` impls produce:
/// non-negative integers are always `U64` (the wire cannot tell `5i64`
/// from `5u64`), floats are finite (NaN serializes as `null` and is not
/// `PartialEq`-comparable anyway).
fn arb_field_value() -> impl Strategy<Value = FieldValue> {
    (
        0usize..5,
        any::<u64>(),
        any::<i64>(),
        -1.0e9..1.0e9f64,
        any::<bool>(),
        arb_string(),
    )
        .prop_map(|(sel, u, i, f, b, s)| match sel {
            0 => FieldValue::U64(u),
            1 => FieldValue::from(i), // normalizes non-negative to U64
            2 => FieldValue::F64(f),
            3 => FieldValue::Bool(b),
            _ => FieldValue::Str(s),
        })
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        (0usize..3, 0usize..4),
        arb_string(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<u64>()),
        collection::vec((arb_string(), arb_field_value()), 0..5),
    )
        .prop_map(
            |((k, l), name, (tick, seq, depth), (has_dur, dur), fields)| {
                let kind = [
                    RecordKind::SpanStart,
                    RecordKind::SpanEnd,
                    RecordKind::Event,
                ][k];
                let level = [Level::Debug, Level::Info, Level::Warn, Level::Error][l];
                TraceRecord {
                    kind,
                    name: Name::Owned(name),
                    ts: VirtualTs { tick, seq },
                    level,
                    depth,
                    dur_ns: has_dur.then_some(dur),
                    fields: fields
                        .into_iter()
                        .map(|(key, value)| (Name::Owned(key), value))
                        .collect(),
                }
            },
        )
}

proptest! {
    /// export_jsonl → import_jsonl is the identity on arbitrary normalized
    /// records, including hostile names/keys (quotes, escapes, control
    /// characters, multi-byte UTF-8) and `u64` extremes.
    #[test]
    fn jsonl_round_trip_is_identity(records in collection::vec(arb_record(), 0..12)) {
        let wire = export_jsonl(&records);
        let back = import_jsonl(&wire).expect("exported trace must re-import");
        prop_assert_eq!(back, records);
    }

    /// One JSON line per record, in emission order, each independently
    /// re-importable (tools may stream line-by-line).
    #[test]
    fn jsonl_lines_are_independent(records in collection::vec(arb_record(), 1..8)) {
        let wire = export_jsonl(&records);
        let lines: Vec<&str> = wire.lines().collect();
        prop_assert_eq!(lines.len(), records.len());
        for (line, rec) in lines.iter().zip(&records) {
            let solo = import_jsonl(line).expect("single line must import");
            prop_assert_eq!(&solo, std::slice::from_ref(rec));
        }
    }
}
