//! Service-level objectives over the metrics registry, with windowed
//! burn-rate evaluation.
//!
//! An [`SloSpec`] names a target fraction of "good" outcomes (e.g. *99% of
//! decisions under 64 queue ticks*, *at most 5% of submissions shed*) and
//! points at the registry instruments that measure it: either a bad/total
//! counter pair or a histogram with a latency threshold. An [`SloMonitor`]
//! holds a set of specs and, on each [`evaluate`](SloMonitor::evaluate)
//! call, diffs the instruments against the previous call — the window is
//! exactly the span between consecutive evaluations — and computes the
//! **burn rate**: the window's error fraction divided by the objective's
//! error budget (`1 − target`). A burn rate of 1.0 consumes budget exactly
//! as provisioned; above 1.0 the objective is breaching and an `slo.eval`
//! event is emitted at [`Level::Warn`].
//!
//! Everything is deterministic: instruments are read through the installed
//! registry, windows are delimited by explicit `evaluate` calls (the caller
//! ties them to virtual ticks), and histogram thresholds resolve at bucket
//! granularity — a bucket counts as *bad* when any value in it can exceed
//! the threshold, so put thresholds on bucket edges (`2^k − 1`) for exact
//! accounting.

use crate::metrics::{bucket_upper_edge, BUCKETS};
use crate::record::{FieldValue, Level, Name};
use crate::span::emit_event;
use crate::subscriber::with_registry;

/// Where an objective's good/bad accounting comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum SloSource {
    /// `bad / total` over two counters (e.g. sheds over submissions).
    CounterRatio {
        /// Counter of bad outcomes.
        bad: String,
        /// Counter of all outcomes.
        total: String,
    },
    /// Fraction of histogram observations above `threshold` (bucket
    /// resolved; see the module docs).
    HistogramAbove {
        /// Histogram of observations.
        histogram: String,
        /// Largest still-good value.
        threshold: u64,
    },
}

/// One service-level objective: a name, a good-outcome target, a source.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name (rides on emitted `slo.eval` events).
    pub name: String,
    /// Target fraction of good outcomes in `[0, 1)`; the error budget is
    /// `1 − target`.
    pub target: f64,
    /// Instruments measuring the objective.
    pub source: SloSource,
}

impl SloSpec {
    /// An objective over a bad/total counter pair.
    pub fn counter_ratio(
        name: impl Into<String>,
        bad: impl Into<String>,
        total: impl Into<String>,
        target: f64,
    ) -> SloSpec {
        SloSpec {
            name: name.into(),
            target,
            source: SloSource::CounterRatio {
                bad: bad.into(),
                total: total.into(),
            },
        }
    }

    /// A latency objective: at least `target` of the histogram's
    /// observations at or under `threshold`.
    pub fn latency(
        name: impl Into<String>,
        histogram: impl Into<String>,
        threshold: u64,
        target: f64,
    ) -> SloSpec {
        SloSpec {
            name: name.into(),
            target,
            source: SloSource::HistogramAbove {
                histogram: histogram.into(),
                threshold,
            },
        }
    }

    /// This objective's error budget (`1 − target`, floored at a tiny
    /// positive value so burn rates stay finite).
    pub fn error_budget(&self) -> f64 {
        (1.0 - self.target).max(1e-9)
    }
}

/// One objective's reading for one evaluation window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name.
    pub name: String,
    /// Bad outcomes in the window.
    pub bad: u64,
    /// Total outcomes in the window.
    pub total: u64,
    /// `bad / total` (0 when the window is empty).
    pub error_fraction: f64,
    /// `error_fraction / error_budget`; 1.0 burns budget exactly as
    /// provisioned, above 1.0 the objective is breaching.
    pub burn_rate: f64,
    /// `burn_rate > 1`.
    pub breached: bool,
}

/// Windowed burn-rate evaluator over a set of [`SloSpec`]s. See the module
/// docs for semantics.
#[derive(Debug, Default)]
pub struct SloMonitor {
    specs: Vec<SloSpec>,
    /// Cumulative `(bad, total)` per spec at the previous evaluation.
    prev: Vec<(u64, u64)>,
}

impl SloMonitor {
    /// An empty monitor.
    pub fn new() -> SloMonitor {
        SloMonitor::default()
    }

    /// Add an objective (builder style).
    pub fn with_objective(mut self, spec: SloSpec) -> SloMonitor {
        self.add(spec);
        self
    }

    /// Add an objective.
    pub fn add(&mut self, spec: SloSpec) {
        self.specs.push(spec);
        self.prev.push((0, 0));
    }

    /// The configured objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Read each objective's instruments, diff against the previous call,
    /// and emit one `slo.eval` event per objective ([`Level::Warn`] when
    /// breaching, [`Level::Debug`] otherwise). Returns the per-objective
    /// statuses; empty when no telemetry dispatch is installed.
    pub fn evaluate(&mut self) -> Vec<SloStatus> {
        // Read all cumulative values first, then emit: emitting while
        // reading would interleave registry borrows with subscriber calls.
        let cumulative: Option<Vec<(u64, u64)>> = with_registry(|reg| {
            self.specs
                .iter()
                .map(|spec| match &spec.source {
                    SloSource::CounterRatio { bad, total } => {
                        (reg.counter(bad).get(), reg.counter(total).get())
                    }
                    SloSource::HistogramAbove {
                        histogram,
                        threshold,
                    } => {
                        let h = reg.histogram(histogram);
                        let counts = h.bucket_counts();
                        let bad: u64 = (0..BUCKETS)
                            .filter(|&i| bucket_upper_edge(i) > *threshold)
                            .map(|i| counts[i])
                            .sum();
                        (bad, h.count())
                    }
                })
                .collect()
        });
        let Some(cumulative) = cumulative else {
            return Vec::new();
        };
        let mut statuses = Vec::with_capacity(self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            let (cum_bad, cum_total) = cumulative[i];
            let (prev_bad, prev_total) = self.prev[i];
            self.prev[i] = (cum_bad, cum_total);
            let bad = cum_bad.saturating_sub(prev_bad);
            let total = cum_total.saturating_sub(prev_total);
            let error_fraction = if total == 0 {
                0.0
            } else {
                bad as f64 / total as f64
            };
            let burn_rate = error_fraction / spec.error_budget();
            let breached = burn_rate > 1.0;
            let level = if breached { Level::Warn } else { Level::Debug };
            emit_event(
                "slo.eval",
                level,
                vec![
                    (
                        Name::Borrowed("objective"),
                        FieldValue::Str(spec.name.clone()),
                    ),
                    (Name::Borrowed("bad"), FieldValue::U64(bad)),
                    (Name::Borrowed("total"), FieldValue::U64(total)),
                    (
                        Name::Borrowed("error_fraction"),
                        FieldValue::F64(error_fraction),
                    ),
                    (Name::Borrowed("burn_rate"), FieldValue::F64(burn_rate)),
                    (Name::Borrowed("breached"), FieldValue::Bool(breached)),
                ],
            );
            statuses.push(SloStatus {
                name: spec.name.clone(),
                bad,
                total,
                error_fraction,
                burn_rate,
                breached,
            });
        }
        statuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, with_registry, RecordKind, RingCollector};
    use std::rc::Rc;

    #[test]
    fn counter_ratio_burn_rate_windows() {
        let collector = Rc::new(RingCollector::new(64));
        let _g = install(collector.clone());
        let mut mon =
            SloMonitor::new().with_objective(SloSpec::counter_ratio("shed", "bad", "total", 0.95));
        with_registry(|r| {
            r.counter("bad").add(1);
            r.counter("total").add(100);
        });
        let s = &mon.evaluate()[0];
        // 1% errors against a 5% budget: burn 0.2, healthy.
        assert_eq!((s.bad, s.total), (1, 100));
        assert!((s.burn_rate - 0.2).abs() < 1e-9, "burn={}", s.burn_rate);
        assert!(!s.breached);
        // Next window only sees the delta.
        with_registry(|r| {
            r.counter("bad").add(20);
            r.counter("total").add(100);
        });
        let s = &mon.evaluate()[0];
        assert_eq!((s.bad, s.total), (20, 100));
        assert!(s.breached, "20% errors on a 5% budget must breach");
        let events: Vec<_> = collector
            .records()
            .into_iter()
            .filter(|r| r.kind == RecordKind::Event && r.name == "slo.eval")
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].level, Level::Debug);
        assert_eq!(events[1].level, Level::Warn);
    }

    #[test]
    fn latency_objective_resolves_at_bucket_edges() {
        let _g = install(Rc::new(RingCollector::new(64)));
        let mut mon = SloMonitor::new().with_objective(SloSpec::latency(
            "queue-p99",
            "queue.ticks",
            63, // bucket edge: values 0..=63 are good
            0.90,
        ));
        with_registry(|r| {
            let h = r.histogram("queue.ticks");
            for _ in 0..95 {
                h.record(10);
            }
            for _ in 0..5 {
                h.record(200);
            }
        });
        let s = &mon.evaluate()[0];
        assert_eq!((s.bad, s.total), (5, 100));
        assert!((s.error_fraction - 0.05).abs() < 1e-9);
        assert!(!s.breached, "5% errors fit a 10% budget");
    }

    #[test]
    fn empty_window_and_no_dispatch_are_quiet() {
        let mut mon = SloMonitor::new().with_objective(SloSpec::counter_ratio("x", "b", "t", 0.99));
        assert!(mon.evaluate().is_empty(), "no dispatch installed");
        let _g = install(Rc::new(RingCollector::new(8)));
        let s = &mon.evaluate()[0];
        assert_eq!((s.bad, s.total), (0, 0));
        assert_eq!(s.burn_rate, 0.0);
        assert!(!s.breached);
    }
}
