//! The per-thread virtual clock.
//!
//! Trace timestamps must be deterministic so recorded and replayed runs can
//! be compared record-for-record (the same contract the `apdm-ledger` hash
//! chain relies on). Wall-clock time is not deterministic, so the clock is
//! *virtual*: the simulation driver feeds the current tick in via
//! [`set_tick`], and every emitted record draws a fresh monotonic sequence
//! number. `(tick, seq)` totally orders a trace and is identical across
//! re-executions of a deterministic scenario.

use std::cell::Cell;

use crate::record::VirtualTs;

thread_local! {
    static TICK: Cell<u64> = const { Cell::new(0) };
    static SEQ: Cell<u64> = const { Cell::new(0) };
}

/// Advance the virtual clock to a simulation tick. Called by the sim layer
/// at the top of every fleet step; harmless to call with a tick already set.
pub fn set_tick(tick: u64) {
    TICK.with(|t| t.set(tick));
}

/// The current virtual tick.
pub fn current_tick() -> u64 {
    TICK.with(|t| t.get())
}

/// Reset the clock to `(tick 0, seq 0)` — the start of a fresh trace.
/// [`install`](crate::install) calls this when it opens a new root dispatch.
pub fn reset_clock() {
    TICK.with(|t| t.set(0));
    SEQ.with(|s| s.set(0));
}

/// Draw the next timestamp (advances the sequence number).
pub(crate) fn next_ts() -> VirtualTs {
    let seq = SEQ.with(|s| {
        let v = s.get();
        s.set(v + 1);
        v
    });
    VirtualTs {
        tick: current_tick(),
        seq,
    }
}
