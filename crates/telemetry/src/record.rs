//! The trace data model: records, field values, virtual timestamps.

use std::borrow::Cow;
use std::fmt;

/// A record or field name: borrowed (`&'static str`, zero-allocation) at
/// macro call sites, owned after a JSONL import.
pub type Name = Cow<'static, str>;

/// Severity of an [`Event`](RecordKind::Event) record. Spans are emitted at
/// [`Level::Info`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics (per-proposal verdicts and the like).
    Debug,
    /// Progress and state changes worth a line on a console.
    Info,
    /// Something degraded but the run continues.
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// Stable lowercase name (`debug` / `info` / `warn` / `error`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse a [`Level::name`] back; `None` for unknown text.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured field value attached to a span or event.
///
/// Non-negative integers normalize to [`FieldValue::U64`] (the `From`
/// impls enforce this), so a JSONL round trip — which cannot distinguish
/// `5i64` from `5u64` — is lossless.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (all non-negative integers land here).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        if v >= 0 {
            FieldValue::U64(v as u64)
        } else {
            FieldValue::I64(v)
        }
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::from(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// A deterministic virtual timestamp: the simulation tick (fed through
/// [`set_tick`](crate::set_tick)) plus a per-thread monotonic sequence
/// number advanced once per emitted record.
///
/// Virtual time is what makes traces comparable across record and replay:
/// two executions of the same deterministic scenario produce identical
/// `(tick, seq)` streams, where wall-clock stamps never would. Wall-clock
/// *durations* still ride along in [`TraceRecord::dur_ns`] as profiling
/// metadata, explicitly outside the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct VirtualTs {
    /// Simulation tick current at emission.
    pub tick: u64,
    /// Monotonic per-thread sequence number (total order within a trace).
    pub seq: u64,
}

/// What kind of occurrence a [`TraceRecord`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened.
    SpanStart,
    /// A span closed (carries the wall-clock duration when timed).
    SpanEnd,
    /// A point event.
    Event,
}

impl RecordKind {
    /// Stable name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::SpanStart => "span_start",
            RecordKind::SpanEnd => "span_end",
            RecordKind::Event => "event",
        }
    }

    /// Parse a [`RecordKind::name`] back.
    pub fn parse(s: &str) -> Option<RecordKind> {
        match s {
            "span_start" => Some(RecordKind::SpanStart),
            "span_end" => Some(RecordKind::SpanEnd),
            "event" => Some(RecordKind::Event),
            _ => None,
        }
    }
}

/// One emitted trace record, as delivered to every
/// [`Subscriber`](crate::Subscriber).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Span start, span end, or point event.
    pub kind: RecordKind,
    /// Span or event name (dotted taxonomy, e.g. `phase.guard`).
    pub name: Name,
    /// Deterministic virtual timestamp.
    pub ts: VirtualTs,
    /// Severity (always [`Level::Info`] for spans).
    pub level: Level,
    /// Span-stack depth at emission (0 = root).
    pub depth: u64,
    /// Wall-clock duration in nanoseconds; only on [`RecordKind::SpanEnd`]
    /// records of timed spans. Profiling metadata — two identical runs may
    /// legitimately differ here.
    pub dur_ns: Option<u64>,
    /// Structured fields.
    pub fields: Vec<(Name, FieldValue)>,
}
