//! Offline trace analysis: rebuild the cross-device span DAG from exported
//! records, reconstruct per-request critical paths, and emit a multi-device
//! Chrome timeline.
//!
//! The input is whatever [`import_jsonl`](crate::import_jsonl) returns — no
//! live dispatch is needed, so a trace recorded on one machine can be
//! analyzed anywhere. Records participate in the DAG when they carry the
//! [`TraceContext`] fields (`trace`/`span`, optional `parent`/`dev`); the
//! `parent` field *is* the happened-before edge, minted by the sender and
//! carried across hops by the context, so edges survive message loss,
//! duplication, and reordering (every delivered copy names its true cause).
//!
//! The **critical path** of a trace is the parent chain ending at the
//! trace's last node in virtual-time order. Per-step latency is the
//! virtual-tick delta to the causally previous step, so the steps
//! *telescope*: their sum is exactly the end-to-end tick latency — the
//! invariant experiment E14 asserts for every traced request.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::context::{TraceContext, FIELD_DEVICE};
use crate::record::{FieldValue, RecordKind, TraceRecord};

/// One node of the span DAG: a record that carried a trace context.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// Trace the node belongs to.
    pub trace: u64,
    /// This node's span id.
    pub span: u64,
    /// Causing span id (`0` = root).
    pub parent: u64,
    /// Record name (e.g. `comms.send`, `serve.shard`).
    pub name: String,
    /// Emitting device/node id (`dev` field; 0 when absent).
    pub device: u64,
    /// Virtual tick at emission.
    pub tick: u64,
    /// Virtual sequence number at emission.
    pub seq: u64,
}

/// The span DAG of one export, grouped by trace id.
#[derive(Debug, Default)]
pub struct TraceGraph {
    traces: BTreeMap<u64, Vec<TraceNode>>,
}

impl TraceGraph {
    /// Extract the DAG from exported records. Records without `trace`/`span`
    /// fields (plain spans and events) are ignored; nodes keep emission
    /// order within each trace.
    pub fn build(records: &[TraceRecord]) -> TraceGraph {
        let mut traces: BTreeMap<u64, Vec<TraceNode>> = BTreeMap::new();
        for rec in records {
            if rec.kind == RecordKind::SpanEnd {
                continue; // span ends carry no fields; the start is the node
            }
            let Some(ctx) = TraceContext::from_fields(&rec.fields) else {
                continue;
            };
            let device = rec
                .fields
                .iter()
                .find_map(|(k, v)| match v {
                    FieldValue::U64(n) if k == FIELD_DEVICE => Some(*n),
                    _ => None,
                })
                .unwrap_or(0);
            traces.entry(ctx.trace_id).or_default().push(TraceNode {
                trace: ctx.trace_id,
                span: ctx.span_id,
                parent: ctx.parent_id,
                name: rec.name.to_string(),
                device,
                tick: rec.ts.tick,
                seq: rec.ts.seq,
            });
        }
        TraceGraph { traces }
    }

    /// Trace ids present, ascending.
    pub fn traces(&self) -> Vec<u64> {
        self.traces.keys().copied().collect()
    }

    /// Nodes of one trace in emission order (empty for unknown ids).
    pub fn nodes(&self, trace: u64) -> &[TraceNode] {
        self.traces.get(&trace).map_or(&[], Vec::as_slice)
    }

    /// Total nodes across all traces.
    pub fn node_count(&self) -> usize {
        self.traces.values().map(Vec::len).sum()
    }

    /// Is the DAG empty?
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Every `(trace, span, parent)` whose non-root parent has no node in
    /// the same trace — the integrity check the propagation proptest runs:
    /// a delivered message must always be able to name its cause.
    pub fn unresolved_parents(&self) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        for (&trace, nodes) in &self.traces {
            let spans: BTreeSet<u64> = nodes.iter().map(|n| n.span).collect();
            for node in nodes {
                if node.parent != 0 && !spans.contains(&node.parent) {
                    out.push((trace, node.span, node.parent));
                }
            }
        }
        out
    }

    /// Reconstruct the critical path of one trace; `None` for unknown ids.
    pub fn critical_path(&self, trace: u64) -> Option<CriticalPath> {
        let nodes = self.traces.get(&trace)?;
        // Index spans; on duplicate span ids (duplicate deliveries re-emit
        // with fresh slots, so this is defensive) keep the earliest.
        let mut by_span: BTreeMap<u64, &TraceNode> = BTreeMap::new();
        for node in nodes {
            by_span.entry(node.span).or_insert(node);
        }
        // The path ends at the last node in virtual-time order.
        let terminal = nodes.iter().max_by_key(|n| (n.tick, n.seq))?;
        let mut chain = vec![terminal];
        let mut cursor = terminal;
        while cursor.parent != 0 {
            match by_span.get(&cursor.parent) {
                Some(&parent) if !chain.iter().any(|n| n.span == parent.span) => {
                    chain.push(parent);
                    cursor = parent;
                }
                _ => break, // missing or cyclic parent: truncate the chain
            }
        }
        chain.reverse();
        let root_tick = chain.first().map_or(0, |n| n.tick);
        let mut steps = Vec::with_capacity(chain.len());
        let mut prev_tick = root_tick;
        for node in &chain {
            steps.push(PathStep {
                name: node.name.clone(),
                device: node.device,
                tick: node.tick,
                seq: node.seq,
                wait_ticks: node.tick.saturating_sub(prev_tick),
            });
            prev_tick = node.tick;
        }
        let dominant = steps
            .iter()
            .max_by_key(|s| s.wait_ticks)
            .map(|s| s.name.clone())
            .unwrap_or_default();
        let retries = nodes.iter().filter(|n| n.name.contains("retry")).count() as u64;
        let dedups = nodes.iter().filter(|n| n.name.contains("dup")).count() as u64;
        Some(CriticalPath {
            trace,
            total_ticks: terminal.tick.saturating_sub(root_tick),
            steps,
            dominant,
            retries,
            dedups,
        })
    }
}

/// One step on a critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Stage/hop name.
    pub name: String,
    /// Device that emitted it.
    pub device: u64,
    /// Virtual tick it happened at.
    pub tick: u64,
    /// Virtual sequence number.
    pub seq: u64,
    /// Ticks spent waiting on the causally previous step (0 at the root).
    pub wait_ticks: u64,
}

/// The reconstructed critical path of one trace. `steps[..].wait_ticks`
/// telescopes: the waits sum exactly to [`total_ticks`](Self::total_ticks).
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Trace id.
    pub trace: u64,
    /// End-to-end latency in virtual ticks (terminal tick − root tick).
    pub total_ticks: u64,
    /// Root-first path steps.
    pub steps: Vec<PathStep>,
    /// Name of the step that waited longest (latency dominator).
    pub dominant: String,
    /// Retry attempts observed anywhere in the trace.
    pub retries: u64,
    /// Duplicate deliveries suppressed anywhere in the trace.
    pub dedups: u64,
}

impl CriticalPath {
    /// Render the path as an indented text block for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {:016x}: {} ticks end-to-end, {} steps, dominant: {} ({} retries, {} dedups)",
            self.trace,
            self.total_ticks,
            self.steps.len(),
            self.dominant,
            self.retries,
            self.dedups,
        );
        for step in &self.steps {
            let _ = writeln!(
                out,
                "  +{:>4} ticks  tick {:>5}  dev {:>3}  {}",
                step.wait_ticks, step.tick, step.device, step.name
            );
        }
        out
    }
}

/// Export context-carrying records as a Chrome `trace_event` document with
/// **one track per device**: every DAG node becomes a complete (`X`) slice
/// on its device's track, lasting until the trace's next node (min 1).
/// Timestamps follow the [`export_chrome`](crate::export_chrome)
/// convention of one virtual microsecond per sequence number; the real
/// tick rides in `args`.
pub fn export_chrome_devices(records: &[TraceRecord]) -> String {
    use crate::export::{write_fields_object as write_fields, write_json_str as write_str};
    use crate::record::Name;

    let graph = TraceGraph::build(records);
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    // Track-naming metadata, one row per device.
    let devices: BTreeSet<u64> = graph
        .traces()
        .iter()
        .flat_map(|&t| graph.nodes(t).iter().map(|n| n.device))
        .collect();
    for dev in &devices {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{dev},\
             \"args\":{{\"name\":\"device {dev}\"}}}}"
        ));
    }
    for trace in graph.traces() {
        let mut nodes: Vec<&TraceNode> = graph.nodes(trace).iter().collect();
        nodes.sort_by_key(|n| (n.tick, n.seq));
        for (i, node) in nodes.iter().enumerate() {
            let dur = nodes
                .get(i + 1)
                .map_or(1, |next| next.seq.saturating_sub(node.seq).max(1));
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            write_str(&mut out, &node.name);
            out.push_str(&format!(
                ",\"cat\":\"apdm\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\
                 \"pid\":0,\"tid\":{}",
                node.seq, node.device
            ));
            let args = vec![
                (Name::Borrowed("trace"), FieldValue::U64(node.trace)),
                (Name::Borrowed("span"), FieldValue::U64(node.span)),
                (Name::Borrowed("parent"), FieldValue::U64(node.parent)),
                (Name::Borrowed("tick"), FieldValue::U64(node.tick)),
            ];
            out.push_str(",\"args\":");
            write_fields(&mut out, &args);
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceContext;
    use crate::record::{Level, Name, VirtualTs};

    fn node_rec(name: &str, ctx: TraceContext, device: u64, tick: u64, seq: u64) -> TraceRecord {
        let mut fields = Vec::new();
        ctx.push_fields(device, &mut fields);
        TraceRecord {
            kind: RecordKind::Event,
            name: Name::Owned(name.to_string()),
            ts: VirtualTs { tick, seq },
            level: Level::Debug,
            depth: 0,
            dur_ns: None,
            fields,
        }
    }

    /// A three-hop, two-device trace: submit(dev0) → send(dev0) →
    /// recv(dev1) → done(dev1), with one retry sibling off the root.
    fn sample_records() -> (Vec<TraceRecord>, TraceContext) {
        let root = TraceContext::root(7, true);
        let send = root.child(0);
        let retry = root.child(1);
        let recv = send.child(0);
        let done = recv.child(0);
        (
            vec![
                node_rec("req.submit", root, 0, 10, 0),
                node_rec("comms.send", send, 0, 10, 1),
                node_rec("comms.retry", retry, 0, 14, 2),
                node_rec("comms.recv", recv, 1, 16, 3),
                node_rec("req.done", done, 1, 19, 4),
            ],
            root,
        )
    }

    #[test]
    fn graph_extracts_only_context_records() {
        let (mut records, _) = sample_records();
        records.push(TraceRecord {
            kind: RecordKind::Event,
            name: Name::Borrowed("plain"),
            ts: VirtualTs { tick: 1, seq: 9 },
            level: Level::Info,
            depth: 0,
            dur_ns: None,
            fields: Vec::new(),
        });
        let graph = TraceGraph::build(&records);
        assert_eq!(graph.traces().len(), 1);
        assert_eq!(graph.node_count(), 5);
        assert!(graph.unresolved_parents().is_empty());
    }

    #[test]
    fn critical_path_telescopes_to_end_to_end_latency() {
        let (records, root) = sample_records();
        let graph = TraceGraph::build(&records);
        let path = graph.critical_path(root.trace_id).unwrap();
        assert_eq!(path.total_ticks, 9);
        let names: Vec<&str> = path.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["req.submit", "comms.send", "comms.recv", "req.done"]
        );
        let waits: u64 = path.steps.iter().map(|s| s.wait_ticks).sum();
        assert_eq!(waits, path.total_ticks, "decomposition must telescope");
        assert_eq!(path.dominant, "comms.recv"); // 6-tick network hop
        assert_eq!(path.retries, 1);
        assert_eq!(path.dedups, 0);
    }

    #[test]
    fn missing_parent_truncates_and_is_reported() {
        let (mut records, root) = sample_records();
        records.remove(1); // drop the comms.send node: recv's parent vanishes
        let graph = TraceGraph::build(&records);
        let unresolved = graph.unresolved_parents();
        assert_eq!(unresolved.len(), 1);
        let path = graph.critical_path(root.trace_id).unwrap();
        // Chain truncates at the break instead of inventing an edge.
        assert_eq!(path.steps.first().unwrap().name, "comms.recv");
    }

    #[test]
    fn chrome_devices_export_parses_and_tracks_devices() {
        let (records, _) = sample_records();
        let doc = export_chrome_devices(&records);
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"tid\":1"));
        assert!(doc.contains("device 1"));
        assert!(crate::export::parse_json(&doc).is_ok());
    }
}
