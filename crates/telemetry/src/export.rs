//! Trace exporters and the JSONL importer.
//!
//! Two wire formats:
//!
//! * **JSONL** — one [`TraceRecord`] per line, lossless, re-importable with
//!   [`import_jsonl`] (property-tested round trip). This is the format the
//!   CI smoke test and external tooling consume.
//! * **Chrome `trace_event`** — a `{"traceEvents": [...]}` document
//!   loadable in `chrome://tracing` / Perfetto. Timestamps are *virtual*
//!   (one microsecond per sequence number), so the timeline shows
//!   deterministic ordering and nesting; real wall-clock durations ride in
//!   each span-end's `args.dur_ns`.
//!
//! The crate is dependency-free, so this module carries its own minimal
//! JSON writer and parser (objects, arrays, strings with escapes, numbers
//! with 64-bit integer fidelity, booleans, null).

use std::fmt;

use crate::record::{FieldValue, Level, Name, RecordKind, TraceRecord, VirtualTs};

// ---------------------------------------------------------------------------
// Minimal JSON writer
// ---------------------------------------------------------------------------

/// Append a JSON string literal (with escaping) to `out`.
pub(crate) fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_field_value(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(v) => out.push_str(&v.to_string()),
        FieldValue::I64(v) => out.push_str(&v.to_string()),
        FieldValue::F64(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        FieldValue::Str(s) => write_json_str(out, s),
    }
}

pub(crate) fn write_fields_object(out: &mut String, fields: &[(Name, FieldValue)]) {
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_str(out, key);
        out.push(':');
        write_field_value(out, value);
    }
    out.push('}');
}

// ---------------------------------------------------------------------------
// JSONL export / import
// ---------------------------------------------------------------------------

/// Serialize one record as a single JSON line (no trailing newline).
pub fn record_to_json(rec: &TraceRecord) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"kind\":");
    write_json_str(&mut out, rec.kind.name());
    out.push_str(",\"name\":");
    write_json_str(&mut out, &rec.name);
    out.push_str(&format!(
        ",\"tick\":{},\"seq\":{},\"depth\":{},\"level\":\"{}\"",
        rec.ts.tick,
        rec.ts.seq,
        rec.depth,
        rec.level.name()
    ));
    if let Some(dur) = rec.dur_ns {
        out.push_str(&format!(",\"dur_ns\":{dur}"));
    }
    if !rec.fields.is_empty() {
        out.push_str(",\"fields\":");
        write_fields_object(&mut out, &rec.fields);
    }
    out.push('}');
    out
}

/// Export records as JSONL, one record per line in emission order.
pub fn export_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&record_to_json(rec));
        out.push('\n');
    }
    out
}

/// A JSONL import failure, localized to its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace import failed at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ImportError {}

/// Re-import a JSONL trace produced by [`export_jsonl`]. Blank lines are
/// skipped; any malformed line aborts with its line number.
pub fn import_jsonl(text: &str) -> Result<Vec<TraceRecord>, ImportError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|message| ImportError {
            line: idx + 1,
            message,
        })?;
        records.push(record_from_json(&value).map_err(|message| ImportError {
            line: idx + 1,
            message,
        })?);
    }
    Ok(records)
}

fn record_from_json(value: &Json) -> Result<TraceRecord, String> {
    let obj = value
        .as_object()
        .ok_or("record line is not a JSON object")?;
    let get = |key: &str| -> Option<&Json> { obj.iter().find(|(k, _)| k == key).map(|(_, v)| v) };
    let kind_name = get("kind").and_then(Json::as_str).ok_or("missing `kind`")?;
    let kind = RecordKind::parse(kind_name).ok_or_else(|| format!("unknown kind `{kind_name}`"))?;
    let name = Name::Owned(
        get("name")
            .and_then(Json::as_str)
            .ok_or("missing `name`")?
            .to_string(),
    );
    let tick = get("tick").and_then(Json::as_u64).ok_or("missing `tick`")?;
    let seq = get("seq").and_then(Json::as_u64).ok_or("missing `seq`")?;
    let depth = get("depth")
        .and_then(Json::as_u64)
        .ok_or("missing `depth`")?;
    let level_name = get("level")
        .and_then(Json::as_str)
        .ok_or("missing `level`")?;
    let level = Level::parse(level_name).ok_or_else(|| format!("unknown level `{level_name}`"))?;
    let dur_ns = match get("dur_ns") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or("`dur_ns` is not an unsigned integer")?),
    };
    let mut fields = Vec::new();
    if let Some(raw) = get("fields") {
        let entries = raw.as_object().ok_or("`fields` is not an object")?;
        for (key, value) in entries {
            let fv = match value {
                Json::U64(v) => FieldValue::U64(*v),
                Json::I64(v) => FieldValue::I64(*v),
                Json::F64(v) => FieldValue::F64(*v),
                Json::Bool(v) => FieldValue::Bool(*v),
                Json::Str(s) => FieldValue::Str(s.clone()),
                Json::Null => FieldValue::F64(f64::NAN),
                _ => return Err(format!("field `{key}` has a non-scalar value")),
            };
            fields.push((Name::Owned(key.clone()), fv));
        }
    }
    Ok(TraceRecord {
        kind,
        name,
        ts: VirtualTs { tick, seq },
        level,
        depth,
        dur_ns,
        fields,
    })
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

/// Export records as a Chrome `trace_event` document for `chrome://tracing`
/// or Perfetto. Span starts/ends map to `B`/`E` events, point events to
/// instants; `ts` is virtual time at one microsecond per sequence number.
pub fn export_chrome(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for rec in records {
        if !first {
            out.push(',');
        }
        first = false;
        let ph = match rec.kind {
            RecordKind::SpanStart => "B",
            RecordKind::SpanEnd => "E",
            RecordKind::Event => "i",
        };
        out.push_str("{\"name\":");
        write_json_str(&mut out, &rec.name);
        out.push_str(&format!(
            ",\"cat\":\"apdm\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":0",
            rec.ts.seq
        ));
        if rec.kind == RecordKind::Event {
            out.push_str(",\"s\":\"t\"");
        }
        let mut args: Vec<(Name, FieldValue)> = rec.fields.clone();
        args.push((Name::Borrowed("tick"), FieldValue::U64(rec.ts.tick)));
        if let Some(dur) = rec.dur_ns {
            args.push((Name::Borrowed("dur_ns"), FieldValue::U64(dur)));
        }
        out.push_str(",\"args\":");
        write_fields_object(&mut out, &args);
        out.push('}');
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON parser
// ---------------------------------------------------------------------------

/// A parsed JSON value with 64-bit integer fidelity (integers without a
/// fraction or exponent stay exact rather than passing through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub(crate) fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes at offset {}", parser.pos));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte `{}` at offset {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes first.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: RecordKind, name: &str, seq: u64) -> TraceRecord {
        TraceRecord {
            kind,
            name: Name::Owned(name.to_string()),
            ts: VirtualTs { tick: 3, seq },
            level: Level::Info,
            depth: 1,
            dur_ns: match kind {
                RecordKind::SpanEnd => Some(12_345),
                _ => None,
            },
            fields: vec![
                (Name::Owned("device".to_string()), FieldValue::U64(7)),
                (
                    Name::Owned("action".to_string()),
                    FieldValue::Str("strike \"x\"".into()),
                ),
                (Name::Owned("dx".to_string()), FieldValue::I64(-2)),
                (Name::Owned("rate".to_string()), FieldValue::F64(0.25)),
                (Name::Owned("ok".to_string()), FieldValue::Bool(true)),
            ],
        }
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let records = vec![
            rec(RecordKind::SpanStart, "phase.guard", 0),
            rec(RecordKind::Event, "harm", 1),
            rec(RecordKind::SpanEnd, "phase.guard", 2),
        ];
        let jsonl = export_jsonl(&records);
        assert_eq!(jsonl.lines().count(), 3);
        let back = import_jsonl(&jsonl).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn u64_extremes_survive_the_wire() {
        let mut r = rec(RecordKind::SpanEnd, "x", 0);
        r.dur_ns = Some(u64::MAX);
        r.fields = vec![(Name::Owned("big".to_string()), FieldValue::U64(u64::MAX))];
        let back = import_jsonl(&export_jsonl(&[r.clone()])).unwrap();
        assert_eq!(back, vec![r]);
    }

    #[test]
    fn import_localizes_the_bad_line() {
        let good = record_to_json(&rec(RecordKind::Event, "e", 0));
        let text = format!("{good}\n{{not json\n");
        let err = import_jsonl(&text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn import_rejects_unknown_kinds() {
        let text = "{\"kind\":\"mystery\",\"name\":\"x\",\"tick\":0,\"seq\":0,\"depth\":0,\"level\":\"info\"}\n";
        let err = import_jsonl(text).unwrap_err();
        assert!(err.message.contains("unknown kind"), "{err}");
    }

    #[test]
    fn chrome_export_is_loadable_shape() {
        let records = vec![
            rec(RecordKind::SpanStart, "tick", 0),
            rec(RecordKind::Event, "harm", 1),
            rec(RecordKind::SpanEnd, "tick", 2),
        ];
        let doc = export_chrome(&records);
        assert!(doc.starts_with("{\"displayTimeUnit\""));
        assert!(doc.contains("\"ph\":\"B\""));
        assert!(doc.contains("\"ph\":\"E\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"dur_ns\":12345"));
        assert!(doc.ends_with("]}"));
        // The document itself parses with our own parser.
        assert!(parse_json(&doc).is_ok());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let value = parse_json("{\"k\":\"a\\n\\t\\\"b\\\\\\u0041é\"}").unwrap();
        let obj = value.as_object().unwrap();
        assert_eq!(obj[0].1.as_str().unwrap(), "a\n\t\"b\\Aé");
    }

    #[test]
    fn parser_preserves_integer_fidelity() {
        let value = parse_json("[18446744073709551615,-3,1.5]").unwrap();
        match value {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::U64(u64::MAX));
                assert_eq!(items[1], Json::I64(-3));
                assert_eq!(items[2], Json::F64(1.5));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}
