//! # apdm-telemetry — deterministic, zero-dependency observability
//!
//! Lightweight span/event tracing plus a metrics registry for the APDM
//! simulator, built on `std` alone so the workspace keeps its offline,
//! vendored-shim build story.
//!
//! ## Tracing
//!
//! * [`span!`] opens an RAII region; [`event!`] emits a point record.
//!   Both cost one thread-local read and construct *nothing* when no
//!   subscriber is installed.
//! * Timestamps are **virtual** ([`VirtualTs`]): the sim feeds the current
//!   tick via [`set_tick`] and each record draws a monotonic per-thread
//!   sequence number. Two executions of the same deterministic scenario
//!   emit identical `(tick, seq)` streams — the same contract the ledger's
//!   hash chain relies on. Wall-clock durations ([`TraceRecord::dur_ns`])
//!   are profiling metadata outside that contract.
//! * [`Subscriber`]s are pluggable and installed per-thread with
//!   [`install`] (RAII guard). Provided sinks: [`RingCollector`] (bounded
//!   flight recorder), [`StderrSubscriber`] (console progress lines),
//!   [`Fanout`].
//! * Exporters: [`export_jsonl`] (lossless, re-importable via
//!   [`import_jsonl`]) and [`export_chrome`] (`chrome://tracing` /
//!   Perfetto).
//!
//! ## Metrics
//!
//! A [`Registry`] hands out named [`Counter`]s, [`Gauge`]s and log2-bucket
//! [`Histogram`]s. Updates are relaxed atomics — no locks, no allocation on
//! the hot path — and [`Registry::render_summary`] prints a percentile
//! table (p50/p90/p99).
//!
//! ## Cross-device tracing, SLOs, analysis
//!
//! * [`TraceContext`] is the compact causal context (trace id, span id,
//!   parent, seeded sampling decision) that rides across `Courier` hops and
//!   through the serve pipeline; [`TraceSampler`] decides head-based
//!   sampling deterministically from `(seed, trace_id)`.
//! * [`SloMonitor`] evaluates [`SloSpec`] objectives (counter ratios,
//!   histogram latency thresholds) over windowed instrument deltas and
//!   emits `slo.eval` burn-rate events.
//! * [`TraceGraph`] rebuilds the cross-device span DAG from an exported
//!   trace, [`TraceGraph::critical_path`] reconstructs per-request critical
//!   paths (waits telescope exactly to end-to-end latency), and
//!   [`export_chrome_devices`] renders one Chrome track per device.
//!
//! ## Example
//!
//! ```
//! use std::rc::Rc;
//! use apdm_telemetry as telemetry;
//! use telemetry::{event, span, Level, RingCollector};
//!
//! let collector = Rc::new(RingCollector::new(1024));
//! let guard = telemetry::install(collector.clone());
//!
//! telemetry::set_tick(1);
//! {
//!     let _span = span!("phase.guard", device = 3u64);
//!     event!(Level::Info, "verdict", kind = "deny");
//! }
//!
//! telemetry::with_registry(|reg| reg.histogram("guard.ns").record(250));
//! drop(guard);
//!
//! let records = collector.records();
//! assert_eq!(records.len(), 3); // span_start, event, span_end
//! let jsonl = telemetry::export_jsonl(&records);
//! assert_eq!(telemetry::import_jsonl(&jsonl).unwrap(), records);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod clock;
mod context;
mod export;
mod metrics;
mod record;
mod slo;
mod span;
mod subscriber;

pub use analyze::{export_chrome_devices, CriticalPath, PathStep, TraceGraph, TraceNode};
pub use clock::{current_tick, reset_clock, set_tick};
pub use context::{
    mix64, trace_id, TraceContext, TraceSampler, CONTEXT_WIRE_LEN, FIELD_DEVICE, FIELD_PARENT,
    FIELD_SPAN, FIELD_TRACE,
};
pub use export::{export_chrome, export_jsonl, import_jsonl, record_to_json, ImportError};
pub use metrics::{
    bucket_index, bucket_upper_edge, CachedCounter, CachedHistogram, Counter, Gauge, Histogram,
    HistogramSummary, Registry, Sampler, BUCKETS,
};
pub use record::{FieldValue, Level, Name, RecordKind, TraceRecord, VirtualTs};
pub use slo::{SloMonitor, SloSource, SloSpec, SloStatus};
pub use span::{complete_span, current_span, emit_event, enter_span, span_depth, Span};
pub use subscriber::{
    current_registry, emit, enabled, install, install_dispatch, with_registry, Dispatch,
    DispatchGuard, Fanout, RingCollector, StderrSubscriber, Subscriber,
};
