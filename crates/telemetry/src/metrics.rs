//! The metrics registry: counters, gauges, and fixed-bucket log2 histograms.
//!
//! Instruments are cheap enough for the per-device hot loop: a recorded
//! observation is a handful of relaxed atomic increments with no allocation.
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s obtained once
//! from a [`Registry`] and then hammered freely; the registry's name table
//! is only touched at handle-creation and snapshot time.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::subscriber::with_registry;

/// Source of unique [`Registry::id`] values; lets cached handles detect
/// that a different registry has been installed.
static REGISTRY_IDS: AtomicU64 = AtomicU64::new(1);

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64` (stored as its bit pattern).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge reading 0.0.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the reading.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current reading.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`; bucket 64's upper edge
/// saturates at `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram over `u64` observations (latencies in
/// nanoseconds, sizes in bytes…). Recording is allocation-free: one bucket
/// increment plus count/sum/min/max updates, all relaxed atomics.
///
/// Percentiles are bucket-resolved: [`percentile`](Histogram::percentile)
/// returns the upper edge of the bucket containing the requested rank, i.e.
/// an upper bound tight to within the bucket's 2× width. Exact `min` and
/// `max` are tracked separately.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket a value falls in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    match value {
        0 => 0,
        v => (v.ilog2() + 1) as usize,
    }
}

/// Inclusive upper edge of a bucket (`0` for bucket 0, `2^i - 1`
/// otherwise, saturating at `u64::MAX`).
pub fn bucket_upper_edge(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum: overflow would need >2^64 ns (~584 years) total.
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wraps only past 2^64).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        match self.count() {
            0 => None,
            _ => Some(self.min.load(Ordering::Relaxed)),
        }
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        match self.count() {
            0 => None,
            _ => Some(self.max.load(Ordering::Relaxed)),
        }
    }

    /// Bucket-resolved percentile: the upper edge of the bucket holding the
    /// observation of rank `⌈q·count⌉` (`q` in `[0, 1]`). Returns `None`
    /// when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Tighten the edges with the exact extremes.
                let edge = bucket_upper_edge(i);
                let max = self.max.load(Ordering::Relaxed);
                return Some(edge.min(max));
            }
        }
        Some(self.max.load(Ordering::Relaxed))
    }

    /// A point-in-time snapshot of the per-bucket counts. Used by the SLO
    /// monitor to diff consecutive windows; pairs with [`bucket_upper_edge`]
    /// to resolve each slot's value range.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// A point-in-time summary (count, mean, extremes, p50/p90/p99).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            sum: self.sum(),
            mean: if count == 0 {
                0.0
            } else {
                self.sum() as f64 / count as f64
            },
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.percentile(0.50).unwrap_or(0),
            p90: self.percentile(0.90).unwrap_or(0),
            p99: self.percentile(0.99).unwrap_or(0),
        }
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Mean observation.
    pub mean: f64,
    /// Exact smallest observation (0 when empty).
    pub min: u64,
    /// Exact largest observation (0 when empty).
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// A name-keyed registry of instruments. Handle creation is get-or-create;
/// the same name always resolves to the same instrument.
pub struct Registry {
    id: u64,
    counters: RefCell<BTreeMap<String, Arc<Counter>>>,
    gauges: RefCell<BTreeMap<String, Arc<Gauge>>>,
    histograms: RefCell<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            id: REGISTRY_IDS.fetch_add(1, Ordering::Relaxed),
            counters: RefCell::default(),
            gauges: RefCell::default(),
            histograms: RefCell::default(),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// This registry's process-unique id (used by [`CachedCounter`] and
    /// [`CachedHistogram`] to invalidate their handles when the installed
    /// registry changes).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.borrow().get(name) {
            return c.clone();
        }
        self.counters
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.borrow().get(name) {
            return g.clone();
        }
        self.gauges
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.borrow().get(name) {
            return h.clone();
        }
        self.histograms
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// All counters with their current values, name order.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .borrow()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// All gauges with their current readings, name order.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        self.gauges
            .borrow()
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect()
    }

    /// All histograms with their summaries, name order.
    pub fn histogram_summaries(&self) -> Vec<(String, HistogramSummary)> {
        self.histograms
            .borrow()
            .iter()
            .map(|(name, h)| (name.clone(), h.summary()))
            .collect()
    }

    /// Render the whole registry as the percentile summary table the CLI
    /// prints after a traced run. Histogram values are taken as
    /// nanoseconds and printed in adaptive units.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let histograms = self.histogram_summaries();
        if !histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "p50", "p90", "p99", "max"
            );
            for (name, s) in &histograms {
                let _ = writeln!(
                    out,
                    "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    s.count,
                    fmt_ns(s.mean as u64),
                    fmt_ns(s.p50),
                    fmt_ns(s.p90),
                    fmt_ns(s.p99),
                    fmt_ns(s.max),
                );
            }
        }
        let counters = self.counter_values();
        if !counters.is_empty() {
            let _ = writeln!(out, "{:<28} {:>10}", "counter", "value");
            for (name, v) in &counters {
                let _ = writeln!(out, "{name:<28} {v:>10}");
            }
        }
        let gauges = self.gauge_values();
        if !gauges.is_empty() {
            let _ = writeln!(out, "{:<28} {:>10}", "gauge", "value");
            for (name, v) in &gauges {
                let _ = writeln!(out, "{name:<28} {v:>10.3}");
            }
        }
        out
    }
}

/// A statically named counter handle that caches the [`Registry`] lookup.
///
/// The first observation against a given installed registry resolves the
/// name once; subsequent observations are a registry-id compare plus one
/// relaxed atomic add. Embed these in hot structs (guard stacks, ledgers)
/// so per-call instrumentation never touches the name table. Observations
/// made while no dispatch is installed are dropped, like any other
/// registry access.
pub struct CachedCounter {
    name: &'static str,
    slot: RefCell<Option<(u64, Arc<Counter>)>>,
}

impl CachedCounter {
    /// A handle for the counter named `name`; resolves lazily.
    pub const fn new(name: &'static str) -> Self {
        CachedCounter {
            name,
            slot: RefCell::new(None),
        }
    }

    /// Add `n` to the counter in the currently installed registry.
    #[inline]
    pub fn add(&self, n: u64) {
        with_registry(|reg| {
            let mut slot = self.slot.borrow_mut();
            match slot.as_ref() {
                Some((id, c)) if *id == reg.id() => c.add(n),
                _ => {
                    let c = reg.counter(self.name);
                    c.add(n);
                    *slot = Some((reg.id(), c));
                }
            }
        });
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

impl Clone for CachedCounter {
    fn clone(&self) -> Self {
        CachedCounter::new(self.name)
    }
}

impl std::fmt::Debug for CachedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedCounter")
            .field("name", &self.name)
            .finish()
    }
}

/// A statically named histogram handle that caches the [`Registry`] lookup;
/// the histogram analogue of [`CachedCounter`].
pub struct CachedHistogram {
    name: &'static str,
    slot: RefCell<Option<(u64, Arc<Histogram>)>>,
}

impl CachedHistogram {
    /// A handle for the histogram named `name`; resolves lazily.
    pub const fn new(name: &'static str) -> Self {
        CachedHistogram {
            name,
            slot: RefCell::new(None),
        }
    }

    /// Record one observation into the currently installed registry.
    #[inline]
    pub fn record(&self, value: u64) {
        with_registry(|reg| {
            let mut slot = self.slot.borrow_mut();
            match slot.as_ref() {
                Some((id, h)) if *id == reg.id() => h.record(value),
                _ => {
                    let h = reg.histogram(self.name);
                    h.record(value);
                    *slot = Some((reg.id(), h));
                }
            }
        });
    }
}

impl Clone for CachedHistogram {
    fn clone(&self) -> Self {
        CachedHistogram::new(self.name)
    }
}

impl std::fmt::Debug for CachedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedHistogram")
            .field("name", &self.name)
            .finish()
    }
}

/// A deterministic counter-based sampler for hot-path latency timing.
///
/// `sample()` returns `true` on the first call and every `period`-th call
/// after, so call sites can take the two clock reads a latency observation
/// costs only on a fixed fraction of calls. No RNG and no wall clock are
/// involved: the decision sequence is a pure function of the call count,
/// keeping instrumented runs deterministic. Histograms fed this way hold a
/// 1-in-`period` systematic sample of the latency distribution; pair them
/// with exact counters when totals matter.
#[derive(Debug)]
pub struct Sampler {
    period: u32,
    calls: std::cell::Cell<u32>,
}

impl Sampler {
    /// Sample the first and every `period`-th call (`period` 0 and 1 both
    /// mean "every call").
    pub const fn every(period: u32) -> Self {
        Sampler {
            period,
            calls: std::cell::Cell::new(0),
        }
    }

    /// Should this call be timed?
    #[inline]
    pub fn sample(&self) -> bool {
        let n = self.calls.get();
        self.calls.set(if n + 1 >= self.period { 0 } else { n + 1 });
        n == 0
    }
}

impl Clone for Sampler {
    fn clone(&self) -> Self {
        Sampler::every(self.period)
    }
}

/// Format a nanosecond quantity with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1_000.0),
        10_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1_000_000.0),
        _ => format!("{:.2}s", ns as f64 / 1_000_000_000.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_edges_cover_the_domain() {
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(2), 3);
        assert_eq!(bucket_upper_edge(64), u64::MAX);
        // Every value is ≤ its own bucket's upper edge and > the previous
        // bucket's edge.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_edge(i), "{v} in bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_edge(i - 1), "{v} above bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn histogram_boundary_values_round_trip() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        // Ranks: p≤1/3 → bucket 0, p≤2/3 → bucket 1, above → bucket 64.
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(0.33), Some(0));
        assert_eq!(h.percentile(0.5), Some(1));
        assert_eq!(h.percentile(1.0), Some(u64::MAX));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn single_observation_pins_every_percentile() {
        let h = Histogram::new();
        h.record(1000);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            // Edge-tightening caps the bucket bound at the exact max.
            assert_eq!(h.percentile(q), Some(1000), "q={q}");
        }
    }

    #[test]
    fn percentiles_are_upper_bounds_within_a_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5).unwrap();
        // Rank 500 lands in bucket ⌈log2(500)⌉: upper edge 511.
        assert_eq!(p50, 511);
        assert!(h.percentile(0.99).unwrap() >= 990);
        assert_eq!(h.percentile(1.0), Some(1000), "max-tightened");
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn registry_handles_are_shared_by_name() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        reg.counter("a").inc();
        assert_eq!(reg.counter("a").get(), 3);
        reg.gauge("g").set(2.5);
        assert_eq!(reg.gauge("g").get(), 2.5);
        reg.histogram("h").record(7);
        assert_eq!(reg.histogram("h").count(), 1);
        assert_eq!(reg.counter_values(), vec![("a".to_string(), 3)]);
    }

    #[test]
    fn summary_table_renders_all_sections() {
        let reg = Registry::new();
        reg.counter("events.total").add(5);
        reg.gauge("fleet.active").set(12.0);
        reg.histogram("guard.ns").record(1500);
        let table = reg.render_summary();
        assert!(table.contains("histogram"));
        assert!(table.contains("guard.ns"));
        assert!(table.contains("events.total"));
        assert!(table.contains("fleet.active"));
    }

    #[test]
    fn cached_handles_revalidate_across_registries() {
        use std::rc::Rc;
        let c = CachedCounter::new("cached.hits");
        let h = CachedHistogram::new("cached.lat");
        c.inc(); // no dispatch installed: dropped, like a raw registry access
        {
            let _g = crate::install(Rc::new(crate::RingCollector::new(8)));
            c.add(2);
            h.record(5);
            crate::with_registry(|r| assert_eq!(r.counter("cached.hits").get(), 2));
        }
        // A fresh registry: the stale handle must re-resolve, not write to
        // the old instrument.
        {
            let _g = crate::install(Rc::new(crate::RingCollector::new(8)));
            c.inc();
            h.record(7);
            crate::with_registry(|r| {
                assert_eq!(r.counter("cached.hits").get(), 1);
                assert_eq!(r.histogram("cached.lat").count(), 1);
                assert_eq!(r.histogram("cached.lat").max(), Some(7));
            });
        }
    }

    #[test]
    fn sampler_is_periodic_and_deterministic() {
        let s = Sampler::every(4);
        let pattern: Vec<bool> = (0..10).map(|_| s.sample()).collect();
        assert_eq!(
            pattern,
            vec![true, false, false, false, true, false, false, false, true, false]
        );
        let always = Sampler::every(1);
        assert!((0..5).all(|_| always.sample()));
        let degenerate = Sampler::every(0);
        assert!((0..5).all(|_| degenerate.sample()));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(9_999), "9999ns");
        assert_eq!(fmt_ns(15_000), "15.0us");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
    }
}
