//! Subscribers and the thread-local dispatch.
//!
//! A [`Subscriber`] receives every [`TraceRecord`] emitted on the thread it
//! is installed on. Installation is thread-local and RAII-scoped
//! ([`install`] returns a [`DispatchGuard`]); with nothing installed the
//! `span!`/`event!` macros cost one thread-local read and emit nothing,
//! which is what keeps telemetry ~free when disabled.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io::Write;
use std::rc::Rc;

use crate::clock::{next_ts, reset_clock};
use crate::metrics::Registry;
use crate::record::{Level, Name, RecordKind, TraceRecord};

/// A sink for trace records. Single-threaded by design (the dispatch is
/// thread-local), so implementations use interior mutability freely.
pub trait Subscriber {
    /// Receive one record. Records arrive in virtual-timestamp order.
    fn record(&self, rec: &TraceRecord);
}

/// One installed telemetry context: a subscriber plus a metrics registry.
#[derive(Clone)]
pub struct Dispatch {
    subscriber: Rc<dyn Subscriber>,
    registry: Rc<Registry>,
}

impl Dispatch {
    /// Build a dispatch from a subscriber and a fresh registry.
    pub fn new(subscriber: Rc<dyn Subscriber>) -> Self {
        Dispatch {
            subscriber,
            registry: Rc::new(Registry::new()),
        }
    }

    /// Build a dispatch around an existing registry (to accumulate metrics
    /// across several traced runs).
    pub fn with_registry(subscriber: Rc<dyn Subscriber>, registry: Rc<Registry>) -> Self {
        Dispatch {
            subscriber,
            registry,
        }
    }

    /// The dispatch's metrics registry.
    pub fn registry(&self) -> &Rc<Registry> {
        &self.registry
    }
}

thread_local! {
    static DISPATCH: RefCell<Option<Dispatch>> = const { RefCell::new(None) };
    /// Whether a dispatch is installed, shadowed into a `Cell` so the
    /// disabled-path check is a single non-borrowing read.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// Uninstalls the dispatch (restoring any previously installed one) when
/// dropped. Returned by [`install`]; hold it for the scope of the traced
/// run.
#[must_use = "dropping the guard immediately uninstalls the subscriber"]
pub struct DispatchGuard {
    previous: Option<Dispatch>,
}

impl Drop for DispatchGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        ENABLED.with(|e| e.set(previous.is_some()));
        DISPATCH.with(|d| *d.borrow_mut() = previous);
    }
}

/// Install a subscriber (with a fresh [`Registry`]) on this thread and
/// reset the virtual clock, starting a new trace. Returns the RAII guard
/// that uninstalls it.
pub fn install(subscriber: Rc<dyn Subscriber>) -> DispatchGuard {
    install_dispatch(Dispatch::new(subscriber))
}

/// Install a fully configured [`Dispatch`]. The virtual clock resets only
/// when no dispatch was previously active (a nested install observes the
/// outer trace's timeline).
pub fn install_dispatch(dispatch: Dispatch) -> DispatchGuard {
    let previous = DISPATCH.with(|d| d.borrow_mut().replace(dispatch));
    if previous.is_none() {
        reset_clock();
    }
    ENABLED.with(|e| e.set(true));
    DispatchGuard { previous }
}

/// Is any subscriber installed on this thread? The `span!` / `event!`
/// macros check this before allocating anything.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Run `f` against the current metrics registry, if a dispatch is
/// installed.
pub fn with_registry<R>(f: impl FnOnce(&Registry) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    DISPATCH.with(|d| d.borrow().as_ref().map(|dis| f(&dis.registry)))
}

/// The current registry handle, if a dispatch is installed.
pub fn current_registry() -> Option<Rc<Registry>> {
    DISPATCH.with(|d| d.borrow().as_ref().map(|dis| dis.registry.clone()))
}

/// Emit a record through the current dispatch. No-op when disabled.
/// Timestamps are drawn here, so the sequence number advances exactly once
/// per delivered record.
pub fn emit(
    kind: RecordKind,
    name: &'static str,
    level: Level,
    depth: u64,
    dur_ns: Option<u64>,
    fields: Vec<(Name, crate::FieldValue)>,
) {
    if !enabled() {
        return;
    }
    let rec = TraceRecord {
        kind,
        name: Name::Borrowed(name),
        ts: next_ts(),
        level,
        depth,
        dur_ns,
        fields,
    };
    // Deliver inside a *shared* borrow: subscribers may consult the
    // dispatch re-entrantly (`with_registry` also borrows shared), they just
    // must not install or uninstall one mid-record. This keeps the per-
    // record cost free of refcount traffic.
    DISPATCH.with(|d| {
        if let Some(dis) = d.borrow().as_ref() {
            dis.subscriber.record(&rec);
        }
    });
}

// ---------------------------------------------------------------------------
// Collectors
// ---------------------------------------------------------------------------

/// A bounded in-memory collector: keeps the most recent `capacity` records,
/// counting (not silently swallowing) what it evicts. This is the default
/// flight-recorder-style sink for `--trace`: memory stays bounded no matter
/// how long the run is.
pub struct RingCollector {
    capacity: usize,
    buffer: RefCell<VecDeque<TraceRecord>>,
    dropped: Cell<u64>,
}

impl RingCollector {
    /// A collector holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        RingCollector {
            capacity: capacity.max(1),
            buffer: RefCell::new(VecDeque::new()),
            dropped: Cell::new(0),
        }
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buffer.borrow().iter().cloned().collect()
    }

    /// Number of records evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buffer.borrow().len()
    }

    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.buffer.borrow().is_empty()
    }
}

impl Subscriber for RingCollector {
    fn record(&self, rec: &TraceRecord) {
        let mut buf = self.buffer.borrow_mut();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        buf.push_back(rec.clone());
    }
}

/// A console subscriber: prints [`RecordKind::Event`] records at or above a
/// minimum level to stderr, one line each, and ignores spans. This is what
/// the CLI and bench harness route their progress lines through — silencing
/// a run means not installing it.
pub struct StderrSubscriber {
    min_level: Level,
}

impl StderrSubscriber {
    /// Print events at `min_level` and above.
    pub fn new(min_level: Level) -> Self {
        StderrSubscriber { min_level }
    }
}

impl Default for StderrSubscriber {
    fn default() -> Self {
        StderrSubscriber::new(Level::Info)
    }
}

impl Subscriber for StderrSubscriber {
    fn record(&self, rec: &TraceRecord) {
        if rec.kind != RecordKind::Event || rec.level < self.min_level {
            return;
        }
        let mut line = format!("[tick {:>4}] {}", rec.ts.tick, rec.name);
        for (key, value) in &rec.fields {
            line.push_str(&format!(" {key}={value}"));
        }
        // Best-effort: a broken stderr pipe must not kill the run.
        let _ = writeln!(std::io::stderr(), "{line}");
    }
}

/// Deliver every record to each of several subscribers, in order.
pub struct Fanout {
    sinks: Vec<Rc<dyn Subscriber>>,
}

impl Fanout {
    /// Fan out to `sinks` (first listed receives first).
    pub fn new(sinks: Vec<Rc<dyn Subscriber>>) -> Self {
        Fanout { sinks }
    }
}

impl Subscriber for Fanout {
    fn record(&self, rec: &TraceRecord) {
        for sink in &self.sinks {
            sink.record(rec);
        }
    }
}
