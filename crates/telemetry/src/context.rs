//! Cross-device trace context: the causal thread tying one request's spans
//! together as it crosses process and device boundaries.
//!
//! A [`TraceContext`] is the compact value that rides along with a message
//! or request: a trace id naming the end-to-end operation, a span id naming
//! the current hop, and the parent span id that gives the happened-before
//! edge back to whatever caused this hop. Receivers derive child contexts
//! with [`TraceContext::child`]; the derivation is a pure hash mix, so two
//! executions of the same deterministic scenario mint identical ids — the
//! same contract [`VirtualTs`](crate::VirtualTs) keeps for timestamps.
//!
//! Sampling is decided **once at the root** by a seeded [`TraceSampler`]
//! and then inherited: either every hop of a trace records or none does,
//! and the decision is a pure function of `(seed, trace_id)` — never of
//! wall clock, thread timing, or load.
//!
//! Contexts serialize onto [`TraceRecord`](crate::TraceRecord)s as three
//! `u64` fields ([`FIELD_TRACE`], [`FIELD_SPAN`], [`FIELD_PARENT`]), so the
//! lossless JSONL round trip carries them and `trace-analyze` can rebuild
//! the cross-device span DAG from an export alone.

use crate::record::{FieldValue, Name};

/// Field key carrying the trace id on a record.
pub const FIELD_TRACE: &str = "trace";
/// Field key carrying the span id on a record.
pub const FIELD_SPAN: &str = "span";
/// Field key carrying the parent span id on a record (`0` = root).
pub const FIELD_PARENT: &str = "parent";
/// Field key carrying the emitting device/node id on a record.
pub const FIELD_DEVICE: &str = "dev";

/// SplitMix64 finalizer: a cheap, well-distributed `u64 -> u64` mix used
/// for span-id derivation and sampling decisions.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mint a trace id from a run seed and a per-run request ordinal. Pure
/// function, so replays mint the same ids.
pub fn trace_id(seed: u64, ordinal: u64) -> u64 {
    nonzero(mix64(seed ^ mix64(ordinal)))
}

/// Ids must be non-zero (`0` is the "no parent" sentinel).
#[inline]
fn nonzero(id: u64) -> u64 {
    if id == 0 {
        1
    } else {
        id
    }
}

/// Bytes of one wire-encoded [`TraceContext`]: three little-endian `u64`
/// ids plus one flag byte (see [`TraceContext::to_wire`]).
pub const CONTEXT_WIRE_LEN: usize = 25;

/// The compact causal context propagated across hops. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceContext {
    /// Id of the end-to-end operation every hop shares.
    pub trace_id: u64,
    /// Id of the current span (this hop).
    pub span_id: u64,
    /// Span id of the causing hop; `0` when this is the root.
    pub parent_id: u64,
    /// Whether this trace records. Decided at the root, inherited by every
    /// child — a trace is sampled in full or not at all.
    pub sampled: bool,
}

impl TraceContext {
    /// The root context of a new trace.
    pub fn root(trace_id: u64, sampled: bool) -> TraceContext {
        let trace_id = nonzero(trace_id);
        TraceContext {
            trace_id,
            span_id: nonzero(mix64(trace_id)),
            parent_id: 0,
            sampled,
        }
    }

    /// Derive the child context for one causally dependent hop. `slot`
    /// distinguishes siblings (retry attempts, duplicate deliveries, fan-out
    /// legs); the same `(parent, slot)` always derives the same child, so
    /// deterministic replays mint identical span DAGs.
    pub fn child(&self, slot: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: nonzero(mix64(
                self.span_id ^ mix64(self.trace_id.wrapping_add(slot)),
            )),
            parent_id: self.span_id,
            sampled: self.sampled,
        }
    }

    /// The trace/span/parent triple as record fields, ready to splice into
    /// an [`emit_event`](crate::emit_event) field vector.
    pub fn fields(&self) -> Vec<(Name, FieldValue)> {
        vec![
            (Name::Borrowed(FIELD_TRACE), FieldValue::U64(self.trace_id)),
            (Name::Borrowed(FIELD_SPAN), FieldValue::U64(self.span_id)),
            (
                Name::Borrowed(FIELD_PARENT),
                FieldValue::U64(self.parent_id),
            ),
        ]
    }

    /// Append the trace/span/parent triple plus the emitting device id to
    /// an existing field vector.
    pub fn push_fields(&self, device: u64, fields: &mut Vec<(Name, FieldValue)>) {
        fields.push((Name::Borrowed(FIELD_TRACE), FieldValue::U64(self.trace_id)));
        fields.push((Name::Borrowed(FIELD_SPAN), FieldValue::U64(self.span_id)));
        fields.push((
            Name::Borrowed(FIELD_PARENT),
            FieldValue::U64(self.parent_id),
        ));
        fields.push((Name::Borrowed(FIELD_DEVICE), FieldValue::U64(device)));
    }

    /// Encode the context for a network frame header: `trace_id`,
    /// `span_id` and `parent_id` as little-endian `u64`s followed by one
    /// flag byte whose bit 0 is `sampled` (remaining bits reserved, zero).
    /// The all-zero encoding is reserved for "no context" — a real context
    /// always has a non-zero trace id, so the two cannot collide.
    pub fn to_wire(&self) -> [u8; CONTEXT_WIRE_LEN] {
        let mut bytes = [0u8; CONTEXT_WIRE_LEN];
        bytes[0..8].copy_from_slice(&self.trace_id.to_le_bytes());
        bytes[8..16].copy_from_slice(&self.span_id.to_le_bytes());
        bytes[16..24].copy_from_slice(&self.parent_id.to_le_bytes());
        bytes[24] = u8::from(self.sampled);
        bytes
    }

    /// Decode a frame-header context written by [`to_wire`](Self::to_wire).
    /// Returns `None` for the reserved all-zero "no context" encoding.
    pub fn from_wire(bytes: &[u8; CONTEXT_WIRE_LEN]) -> Option<TraceContext> {
        let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let trace_id = word(0);
        if trace_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id: word(8),
            parent_id: word(16),
            sampled: bytes[24] & 1 == 1,
        })
    }

    /// Reconstruct a context from record fields (the inverse of
    /// [`fields`](Self::fields)); `None` when the trace or span field is
    /// absent. A reconstructed context is always `sampled` — it was only
    /// written because the trace recorded.
    pub fn from_fields(fields: &[(Name, FieldValue)]) -> Option<TraceContext> {
        let get = |key: &str| {
            fields.iter().find_map(|(k, v)| match v {
                FieldValue::U64(n) if k == key => Some(*n),
                _ => None,
            })
        };
        Some(TraceContext {
            trace_id: get(FIELD_TRACE)?,
            span_id: get(FIELD_SPAN)?,
            parent_id: get(FIELD_PARENT).unwrap_or(0),
            sampled: true,
        })
    }
}

/// Seeded head-based sampler: the record-or-drop decision for a whole trace
/// is a pure function of `(seed, trace_id)`. No RNG state, no wall clock —
/// replays and thread-count changes cannot flip a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSampler {
    seed: u64,
    /// Record roughly one trace in `period` (`0` = none, `1` = all).
    period: u64,
}

impl TraceSampler {
    /// Sample roughly one trace in `period` (`1` records everything).
    pub const fn one_in(seed: u64, period: u64) -> TraceSampler {
        TraceSampler { seed, period }
    }

    /// Record every trace.
    pub const fn always() -> TraceSampler {
        TraceSampler { seed: 0, period: 1 }
    }

    /// Record no trace (tracing disabled).
    pub const fn never() -> TraceSampler {
        TraceSampler { seed: 0, period: 0 }
    }

    /// Should the trace with this id record?
    pub fn decide(&self, trace_id: u64) -> bool {
        match self.period {
            0 => false,
            1 => true,
            p => mix64(self.seed ^ trace_id).is_multiple_of(p),
        }
    }

    /// Mint the root context for `trace_id`, deciding sampling.
    pub fn root(&self, trace_id: u64) -> TraceContext {
        TraceContext::root(trace_id, self.decide(trace_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_and_child_ids_are_deterministic() {
        let a = TraceContext::root(trace_id(42, 7), true);
        let b = TraceContext::root(trace_id(42, 7), true);
        assert_eq!(a, b);
        assert_eq!(a.child(3), b.child(3));
        assert_eq!(a.parent_id, 0);
        assert_eq!(a.child(3).parent_id, a.span_id);
        assert_eq!(a.child(3).trace_id, a.trace_id);
    }

    #[test]
    fn sibling_slots_mint_distinct_spans() {
        let root = TraceContext::root(1, true);
        let ids: Vec<u64> = (0..64).map(|slot| root.child(slot).span_id).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "sibling span-id collision");
        assert!(ids.iter().all(|&id| id != 0));
    }

    #[test]
    fn fields_round_trip_through_records() {
        let ctx = TraceContext::root(trace_id(9, 2), true).child(5);
        let fields = ctx.fields();
        let back = TraceContext::from_fields(&fields).unwrap();
        assert_eq!(back.trace_id, ctx.trace_id);
        assert_eq!(back.span_id, ctx.span_id);
        assert_eq!(back.parent_id, ctx.parent_id);
        assert!(TraceContext::from_fields(&[]).is_none());
    }

    #[test]
    fn wire_encoding_round_trips() {
        let ctx = TraceContext::root(trace_id(42, 7), true).child(3);
        let bytes = ctx.to_wire();
        assert_eq!(TraceContext::from_wire(&bytes), Some(ctx));
        let unsampled = TraceContext::root(trace_id(42, 8), false);
        assert_eq!(
            TraceContext::from_wire(&unsampled.to_wire()),
            Some(unsampled)
        );
        // The all-zero encoding is the "no context" sentinel.
        assert_eq!(TraceContext::from_wire(&[0u8; CONTEXT_WIRE_LEN]), None);
    }

    #[test]
    fn sampler_is_seeded_and_roughly_proportional() {
        let s = TraceSampler::one_in(42, 8);
        let hits = (0..8000u64).filter(|&n| s.decide(trace_id(42, n))).count();
        // 1-in-8 over 8000 trials: expect ~1000, allow a wide margin.
        assert!((500..1500).contains(&hits), "hits={hits}");
        // Decisions are pure: same inputs, same answer.
        for n in 0..100 {
            let id = trace_id(42, n);
            assert_eq!(s.decide(id), TraceSampler::one_in(42, 8).decide(id));
        }
        assert!(TraceSampler::always().decide(3));
        assert!(!TraceSampler::never().decide(3));
        assert!(!TraceSampler::never().root(3).sampled);
    }
}
