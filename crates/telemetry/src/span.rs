//! Spans: RAII-guarded regions with a thread-local nesting stack.
//!
//! A [`Span`] emits a `span_start` record when entered and a `span_end`
//! record (carrying the wall-clock duration) when dropped. The thread-local
//! stack tracks nesting depth; because the guard restores the stack in its
//! `Drop` impl, depth stays consistent even when a panic unwinds through an
//! open span — the unwind drops inner guards before outer ones.

use std::cell::RefCell;
use std::time::Instant;

use crate::record::{FieldValue, Level, Name, RecordKind};
use crate::subscriber::{emit, enabled};

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Current span nesting depth on this thread.
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// Name of the innermost open span, if any.
pub fn current_span() -> Option<String> {
    SPAN_STACK.with(|s| s.borrow().last().map(|n| n.to_string()))
}

/// An open span; closing happens on drop. Construct via
/// [`enter_span`] or the [`span!`](crate::span!) macro.
#[must_use = "a span closes when dropped; binding it to _ closes it immediately"]
pub struct Span {
    /// `None` when telemetry was disabled at entry — the drop is then free.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    depth: usize,
    started: Instant,
}

impl Span {
    /// The no-op span handed out while no subscriber is installed.
    pub fn disabled() -> Span {
        Span { live: None }
    }

    /// Is this span actually recording?
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        // Unwind-safe restore: truncate to our depth rather than popping
        // blindly, so a stack desynced by a panicking subscriber still
        // converges.
        SPAN_STACK.with(|s| s.borrow_mut().truncate(live.depth));
        let dur_ns = u64::try_from(live.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        emit(
            RecordKind::SpanEnd,
            live.name,
            Level::Info,
            live.depth as u64,
            Some(dur_ns),
            Vec::new(),
        );
    }
}

/// Open a span. Prefer the [`span!`](crate::span!) macro, which skips field
/// construction entirely when telemetry is disabled.
pub fn enter_span(name: &'static str, fields: Vec<(Name, FieldValue)>) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    let depth = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let depth = stack.len();
        stack.push(name);
        depth
    });
    emit(
        RecordKind::SpanStart,
        name,
        Level::Info,
        depth as u64,
        None,
        fields,
    );
    Span {
        live: Some(LiveSpan {
            name,
            depth,
            started: Instant::now(),
        }),
    }
}

/// Emit a pre-measured span as an adjacent start/end pair at the current
/// depth. Used for *aggregate* regions whose duration was accumulated
/// across interleaved work (the per-tick phase spans), where an RAII guard
/// cannot bracket the region. `dur_ns` is `None` when the region was
/// emitted without wall-clock measurement (e.g. on a tick the phase-timing
/// sampler skipped).
pub fn complete_span(name: &'static str, dur_ns: Option<u64>, fields: Vec<(Name, FieldValue)>) {
    if !enabled() {
        return;
    }
    let depth = span_depth() as u64;
    emit(
        RecordKind::SpanStart,
        name,
        Level::Info,
        depth,
        None,
        fields,
    );
    emit(
        RecordKind::SpanEnd,
        name,
        Level::Info,
        depth,
        dur_ns,
        Vec::new(),
    );
}

/// Emit a point event. Prefer the [`event!`](crate::event!) macro.
pub fn emit_event(name: &'static str, level: Level, fields: Vec<(Name, FieldValue)>) {
    if !enabled() {
        return;
    }
    emit(
        RecordKind::Event,
        name,
        level,
        span_depth() as u64,
        None,
        fields,
    );
}

/// Open a span: `span!("name")` or `span!("name", device = 3, kind = "x")`.
/// Bind the result (`let _span = span!(...)`) — it closes on drop. Free
/// when no subscriber is installed: fields are not even constructed.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::enter_span(
                $name,
                vec![$(($crate::Name::Borrowed(stringify!($key)), $crate::FieldValue::from($value))),*],
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Emit a point event: `event!(Level::Info, "name", key = value, ...)`.
/// Free when no subscriber is installed.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit_event(
                $name,
                $level,
                vec![$(($crate::Name::Borrowed(stringify!($key)), $crate::FieldValue::from($value))),*],
            );
        }
    };
}
