//! Codec edge-case tests: property round-trips over arbitrary frames, and
//! the mangled-input paths (truncation, oversize, corrupt CRC, wrong
//! version) that the fail-closed boundary depends on. None of these may
//! panic — a panicking codec would let a hostile client kill the server
//! thread instead of being audited and dropped.

use std::io::{self, Read};

use apdm_net::frame::{
    crc32, decode, encode, read_frame, Frame, FrameError, FrameType, ReadError, ReadOutcome,
    HEADER_LEN, MAGIC, MAX_PAYLOAD, TRAILER_LEN, VERSION,
};
use apdm_telemetry::{TraceContext, CONTEXT_WIRE_LEN};
use proptest::prelude::*;

/// A reader that hands out one byte per `read` call, exercising every
/// partial-read path in the framed reader.
struct OneByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Read for OneByteReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.bytes.len() || buf.is_empty() {
            return Ok(0);
        }
        buf[0] = self.bytes[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

fn frame_type_from(raw: u8) -> FrameType {
    FrameType::from_u8(raw).expect("strategy stays within known frame types")
}

fn arb_ctx(trace: u64, span: u64, parent: u64, sampled: bool) -> Option<TraceContext> {
    // An all-zero trace id is the wire sentinel for "no context"; skew away
    // from it so the strategy always produces a real context here and the
    // no-context case is covered by `traced == false`.
    Some(TraceContext {
        trace_id: trace | 1,
        span_id: span,
        parent_id: parent,
        sampled,
    })
}

proptest! {
    /// Any well-formed frame survives encode → decode bit-exactly.
    #[test]
    fn arbitrary_frames_round_trip(
        raw_type in 1u8..11,
        payload in collection::vec(any::<u8>(), 0..300),
        traced in any::<bool>(),
        trace in any::<u64>(),
        span in any::<u64>(),
        parent in any::<u64>(),
        sampled in any::<bool>(),
    ) {
        let ctx = if traced { arb_ctx(trace, span, parent, sampled) } else { None };
        let frame = Frame {
            frame_type: frame_type_from(raw_type),
            ctx,
            payload: payload.clone(),
        };
        let bytes = encode(&frame);
        prop_assert_eq!(bytes.len(), HEADER_LEN + payload.len() + TRAILER_LEN);
        let back = decode(&bytes).expect("encoded frame decodes");
        prop_assert_eq!(back, frame);
    }

    /// The framed reader reassembles any frame even when the transport
    /// delivers it one byte at a time.
    #[test]
    fn split_writes_reassemble(
        raw_type in 1u8..11,
        payload in collection::vec(any::<u8>(), 0..120),
        traced in any::<bool>(),
        trace in any::<u64>(),
    ) {
        let ctx = if traced { arb_ctx(trace, trace ^ 7, 0, true) } else { None };
        let frame = Frame { frame_type: frame_type_from(raw_type), ctx, payload };
        let bytes = encode(&frame);
        let mut reader = OneByteReader { bytes: &bytes, pos: 0 };
        match read_frame(&mut reader).expect("split delivery still frames") {
            ReadOutcome::Frame(back) => prop_assert_eq!(back, frame),
            other => panic!("expected a frame, got {other:?}"),
        }
        // And the stream then ends cleanly at a frame boundary.
        match read_frame(&mut reader).expect("eof at boundary is clean") {
            ReadOutcome::Closed => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    /// Every strict prefix of a valid frame is a torn frame, never a panic
    /// and never a spurious success.
    #[test]
    fn truncation_at_any_point_is_detected(
        payload in collection::vec(any::<u8>(), 1..80),
        cut_seed in any::<usize>(),
    ) {
        let frame = Frame::new(FrameType::Request, payload);
        let bytes = encode(&frame);
        let cut = 1 + cut_seed % (bytes.len() - 1);
        let mut reader = io::Cursor::new(bytes[..cut].to_vec());
        match read_frame(&mut reader) {
            Err(ReadError::Truncated) => {}
            Ok(ReadOutcome::Frame(_)) => panic!("truncated frame decoded at cut {cut}"),
            other => panic!("expected Truncated at cut {cut}, got {other:?}"),
        }
    }

    /// Flipping any single bit in an encoded frame is always rejected —
    /// magic, version, type, context, length, payload, and CRC corruption
    /// all surface as errors, never as a silently different frame.
    #[test]
    fn single_bit_corruption_never_passes(
        payload in collection::vec(any::<u8>(), 1..60),
        byte_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let frame = Frame::traced(FrameType::Decision, Some(TraceContext::root(99, true)), payload);
        let mut bytes = encode(&frame);
        let index = byte_seed % bytes.len();
        bytes[index] ^= 1 << bit;
        match decode(&bytes) {
            Err(_) => {}
            Ok(back) => {
                // A flip in a declared-length byte can only succeed if it
                // somehow still framed identically, which it cannot: every
                // byte of header, payload, and trailer is CRC-covered or is
                // the magic itself.
                panic!("corrupt byte {index} bit {bit} decoded as {back:?}");
            }
        }
    }
}

#[test]
fn oversize_length_is_rejected_without_allocation() {
    let frame = Frame::new(FrameType::Ping, Vec::new());
    let mut bytes = encode(&frame);
    // Patch the declared length to just over the cap and fix nothing else:
    // the length check must fire before payload reads or CRC checks.
    let len_at = HEADER_LEN - 4;
    let huge = (MAX_PAYLOAD + 1).to_le_bytes();
    bytes[len_at..len_at + 4].copy_from_slice(&huge);
    match decode(&bytes) {
        Err(FrameError::Oversize(n)) => assert_eq!(n, MAX_PAYLOAD + 1),
        other => panic!("expected Oversize, got {other:?}"),
    }
    let mut reader = io::Cursor::new(bytes);
    match read_frame(&mut reader) {
        Err(ReadError::Malformed(FrameError::Oversize(_))) => {}
        other => panic!("expected Malformed(Oversize), got {other:?}"),
    }
}

#[test]
fn bad_version_is_rejected_with_the_offending_byte() {
    let frame = Frame::new(FrameType::Hello, b"{}".to_vec());
    let mut bytes = encode(&frame);
    bytes[4] = VERSION + 1;
    // Re-seal the CRC so the version check is what fires, not the CRC.
    let crc_at = bytes.len() - TRAILER_LEN;
    let crc = crc32(&bytes[4..crc_at]);
    bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
    match decode(&bytes) {
        Err(FrameError::BadVersion(v)) => assert_eq!(v, VERSION + 1),
        other => panic!("expected BadVersion, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_rejected_before_anything_else() {
    let frame = Frame::new(FrameType::Hello, Vec::new());
    let mut bytes = encode(&frame);
    bytes[0] = b'X';
    match decode(&bytes) {
        Err(FrameError::BadMagic(m)) => assert_ne!(m, MAGIC),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn bad_crc_reports_both_values() {
    let frame = Frame::new(FrameType::Pong, b"x".to_vec());
    let mut bytes = encode(&frame);
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    match decode(&bytes) {
        Err(FrameError::BadCrc { computed, received }) => assert_ne!(computed, received),
        other => panic!("expected BadCrc, got {other:?}"),
    }
}

#[test]
fn unknown_frame_type_is_rejected() {
    let frame = Frame::new(FrameType::Ping, Vec::new());
    let mut bytes = encode(&frame);
    bytes[5] = 0; // type 0 is reserved / invalid
    let crc_at = bytes.len() - TRAILER_LEN;
    let crc = crc32(&bytes[4..crc_at]);
    bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
    match decode(&bytes) {
        Err(FrameError::BadType(0)) => {}
        other => panic!("expected BadType(0), got {other:?}"),
    }
}

#[test]
fn reserved_context_bits_are_rejected() {
    let frame = Frame::traced(
        FrameType::Request,
        Some(TraceContext::root(7, true)),
        Vec::new(),
    );
    let mut bytes = encode(&frame);
    // Flag byte is the last byte of the 25-byte context block.
    let flag_at = 4 + 1 + 1 + CONTEXT_WIRE_LEN - 1;
    bytes[flag_at] |= 0b0100_0000;
    let crc_at = bytes.len() - TRAILER_LEN;
    let crc = crc32(&bytes[4..crc_at]);
    bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
    match decode(&bytes) {
        Err(FrameError::BadContext(flags)) => assert_ne!(flags & 0b0100_0000, 0),
        other => panic!("expected BadContext, got {other:?}"),
    }
}

#[test]
fn pure_garbage_streams_error_rather_than_panic() {
    // Deterministic pseudo-random garbage of assorted lengths, fed both to
    // the pure decoder and the incremental reader.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for len in [0usize, 1, 3, HEADER_LEN - 1, HEADER_LEN, 64, 512] {
        let mut garbage = Vec::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            garbage.push((state >> 33) as u8);
        }
        let _ = decode(&garbage); // must not panic
        let mut reader = io::Cursor::new(garbage);
        match read_frame(&mut reader) {
            Ok(ReadOutcome::Closed) if len == 0 => {}
            Ok(ReadOutcome::Frame(_)) => panic!("garbage of length {len} framed"),
            _ => {} // Malformed / Truncated are both acceptable rejections
        }
    }
}
