//! Client side: the deterministic workload driver and the chaos clients
//! that try (and must fail) to corrupt the boundary.
//!
//! A workload client owns the **whole** seeded [`WorkloadGen`] but sends
//! only its partition (`request id % clients == index`). Because every
//! client runs the same generator, the union of all partitions is exactly
//! the in-process request stream, and the server's per-tick sort by id
//! restores the generator's emission order — no coordination beyond the
//! tick barrier is needed.
//!
//! Chaos clients ([`run_chaos_client`]) each script one failure mode —
//! frame garbage, a stalled half-frame, an abrupt mid-frame disconnect, an
//! oversized length prefix, an unauthorized request — and report how the
//! server answered. E17 asserts the server survives all of them with the
//! decision ledger untouched and every rejection audited.

use std::io;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use apdm_policy::Action;
use apdm_serve::{Decision, DecisionRequest, ReqSnap, TenantId, WorkloadGen, WorkloadSpec};
use apdm_telemetry::{self as telemetry, trace_id, TraceContext, TraceSampler};

use crate::frame::{encode, read_frame, write_frame, Frame, FrameType, ReadOutcome, MAX_PAYLOAD};
use crate::wire::{
    decode_payload, encode_payload, DecisionSnap, ErrorPayload, HelloPayload, Role, TickPayload,
};

/// Slot for the client-side hops of a request's causal chain (mirrors the
/// server's wire slot).
const CLIENT_SLOT: u64 = 2;

/// Connect to `addr`, retrying while the server's listener comes up.
pub fn connect_with_retry(addr: &str, attempts: u32, delay: Duration) -> io::Result<TcpStream> {
    let mut last = io::Error::other("no attempts");
    for _ in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e,
        }
        thread::sleep(delay);
    }
    Err(last)
}

/// What one workload client saw over a full run.
#[derive(Debug)]
pub struct ClientReport {
    /// Requests this client sent (its partition of the workload).
    pub sent: u64,
    /// Every decision the server returned for this client's requests, in
    /// arrival order.
    pub decisions: Vec<Decision>,
}

/// Drive one workload partition through a serving run.
///
/// `spec` must match the server's workload exactly; `index`/`clients`
/// select the partition and must match the server's expected client
/// count. When `sampler` is set, each request gets a root trace context
/// minted from `(spec.seed, request id)` — the same ids the in-process
/// path would mint — and the context rides the frame headers, so the
/// causal chain spans client → wire → service → wire → client.
pub fn run_workload_client(
    addr: &str,
    spec: WorkloadSpec,
    index: u32,
    clients: u32,
    sampler: Option<TraceSampler>,
    deadline: Duration,
) -> io::Result<ClientReport> {
    assert!(clients > 0 && index < clients, "bad partition");
    let mut stream = connect_with_retry(addr, 50, Duration::from_millis(100))?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    stream.set_write_timeout(Some(Duration::from_millis(2_000)))?;
    let started = Instant::now();

    let hello = HelloPayload {
        role: Role::Workload,
        client: index,
        clients,
    };
    write_frame(
        &mut stream,
        &Frame::new(FrameType::Hello, encode_payload(&hello)),
    )?;
    expect_welcome(&mut stream, started, deadline)?;

    let arrival_ticks = spec.arrival_ticks;
    let seed = spec.seed;
    let mut gen = WorkloadGen::new(spec);
    let mut sent = 0u64;
    let mut decisions: Vec<Decision> = Vec::new();

    for tick in 1..=arrival_ticks {
        for req in gen.tick_requests(tick) {
            if req.id % clients as u64 != index as u64 {
                continue;
            }
            let ctx = sampler.map(|s| s.root(trace_id(seed, req.id)));
            if let Some(root) = ctx {
                client_event(root, "client.send", req.device);
            }
            let snap = ReqSnap::from(&req);
            write_frame(
                &mut stream,
                &Frame::traced(FrameType::Request, ctx, encode_payload(&snap)),
            )?;
            sent += 1;
        }
        write_frame(
            &mut stream,
            &Frame::new(FrameType::TickDone, encode_payload(&TickPayload { tick })),
        )?;
        // Collect decisions until the server acknowledges the tick.
        loop {
            match next(&mut stream, started, deadline)? {
                Inbound::Decision(d) => decisions.push(d),
                Inbound::TickAck(t) if t == tick => break,
                Inbound::TickAck(t) => {
                    return Err(io::Error::other(format!(
                        "TickAck({t}) while waiting for tick {tick}"
                    )));
                }
                Inbound::Bye => {
                    return Err(io::Error::other("server closed mid-run"));
                }
            }
        }
    }
    // Drain: every request gets exactly one decision; wait for the rest.
    while (decisions.len() as u64) < sent {
        match next(&mut stream, started, deadline)? {
            Inbound::Decision(d) => decisions.push(d),
            Inbound::TickAck(_) => {}
            Inbound::Bye => {
                return Err(io::Error::other(format!(
                    "server closed with {}/{sent} decisions delivered",
                    decisions.len()
                )));
            }
        }
    }
    let _ = write_frame(&mut stream, &Frame::new(FrameType::Bye, Vec::new()));
    Ok(ClientReport { sent, decisions })
}

/// Server-to-client traffic a workload client distinguishes.
enum Inbound {
    Decision(Decision),
    TickAck(u64),
    Bye,
}

/// Read the next meaningful frame, tolerating idle timeouts up to the
/// deadline and surfacing server `Error` frames as errors.
fn next(stream: &mut TcpStream, started: Instant, deadline: Duration) -> io::Result<Inbound> {
    loop {
        if started.elapsed() > deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "client deadline"));
        }
        match read_frame(stream).map_err(io::Error::other)? {
            ReadOutcome::Idle => continue,
            ReadOutcome::Closed => return Ok(Inbound::Bye),
            ReadOutcome::Frame(frame) => match frame.frame_type {
                FrameType::Decision => {
                    let snap: DecisionSnap = decode_payload(&frame.payload)
                        .ok_or_else(|| io::Error::other("bad decision payload"))?;
                    let ctx = frame.ctx;
                    if let Some(c) = ctx {
                        client_event(c.child(CLIENT_SLOT), "client.recv", snap.device);
                    }
                    return Ok(Inbound::Decision(snap.into_decision(ctx)));
                }
                FrameType::TickAck => {
                    let tick: TickPayload = decode_payload(&frame.payload)
                        .ok_or_else(|| io::Error::other("bad tick payload"))?;
                    return Ok(Inbound::TickAck(tick.tick));
                }
                FrameType::Bye => return Ok(Inbound::Bye),
                FrameType::Pong => continue,
                FrameType::Error => {
                    let err: ErrorPayload =
                        decode_payload(&frame.payload).unwrap_or(ErrorPayload {
                            code: 0,
                            detail: "undecodable error payload".into(),
                        });
                    return Err(io::Error::other(format!(
                        "server error {}: {}",
                        err.code, err.detail
                    )));
                }
                other => {
                    return Err(io::Error::other(format!("unexpected {other:?} frame")));
                }
            },
        }
    }
}

/// Wait for the `Welcome` answering our `Hello`.
fn expect_welcome(stream: &mut TcpStream, started: Instant, deadline: Duration) -> io::Result<()> {
    loop {
        if started.elapsed() > deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "no welcome"));
        }
        match read_frame(stream).map_err(io::Error::other)? {
            ReadOutcome::Idle => continue,
            ReadOutcome::Closed => return Err(io::Error::other("closed before welcome")),
            ReadOutcome::Frame(f) if f.frame_type == FrameType::Welcome => return Ok(()),
            ReadOutcome::Frame(f) if f.frame_type == FrameType::Error => {
                let err: ErrorPayload = decode_payload(&f.payload)
                    .ok_or_else(|| io::Error::other("bad error payload"))?;
                return Err(io::Error::other(format!(
                    "rejected: {} ({})",
                    err.detail, err.code
                )));
            }
            ReadOutcome::Frame(f) => {
                return Err(io::Error::other(format!(
                    "expected Welcome, got {:?}",
                    f.frame_type
                )));
            }
        }
    }
}

/// Emit one client-side trace event when a dispatch is installed.
fn client_event(ctx: TraceContext, name: &'static str, device: u64) {
    if telemetry::enabled() && ctx.sampled {
        let mut fields = Vec::new();
        ctx.push_fields(device, &mut fields);
        telemetry::emit_event(name, telemetry::Level::Debug, fields);
    }
}

/// The failure modes a chaos client can script. Each is one connection
/// doing one bad thing; none may crash the server or leak an unaudited
/// rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Send bytes that are not a frame at all (bad magic).
    Garbage,
    /// Send a valid frame whose CRC trailer was corrupted.
    BadCrc,
    /// Send a header whose length prefix exceeds the protocol maximum.
    Oversize,
    /// Complete the handshake, then stall mid-frame past the read timeout.
    Slow,
    /// Complete the handshake, then disconnect abruptly mid-frame.
    Disconnect,
    /// Join as an observer and submit a (well-formed) request anyway —
    /// must be answered with a fail-closed deny, not evaluated.
    Unauthorized,
}

impl ChaosKind {
    /// Stable tag for CLI flags and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosKind::Garbage => "garbage",
            ChaosKind::BadCrc => "bad-crc",
            ChaosKind::Oversize => "oversize",
            ChaosKind::Slow => "slow",
            ChaosKind::Disconnect => "disconnect",
            ChaosKind::Unauthorized => "unauthorized",
        }
    }

    /// Parse a CLI tag.
    pub fn parse(tag: &str) -> Option<ChaosKind> {
        Some(match tag {
            "garbage" => ChaosKind::Garbage,
            "bad-crc" => ChaosKind::BadCrc,
            "oversize" => ChaosKind::Oversize,
            "slow" => ChaosKind::Slow,
            "disconnect" => ChaosKind::Disconnect,
            "unauthorized" => ChaosKind::Unauthorized,
            _ => return None,
        })
    }

    /// All kinds, in the order E17 exercises them.
    pub fn all() -> [ChaosKind; 6] {
        [
            ChaosKind::Garbage,
            ChaosKind::BadCrc,
            ChaosKind::Oversize,
            ChaosKind::Slow,
            ChaosKind::Disconnect,
            ChaosKind::Unauthorized,
        ]
    }
}

/// What one chaos connection observed.
#[derive(Debug)]
pub struct ChaosReport {
    /// The scripted failure mode.
    pub kind: ChaosKind,
    /// Close code of the server's `Error` frame, if one arrived before the
    /// connection closed.
    pub closed_code: Option<u16>,
    /// Fail-closed denies received (the `Unauthorized` script expects 1).
    pub denies: u64,
}

/// Run one chaos script against a serving run. Always returns a report —
/// the *server* failing is the only wrong answer, and that is observed by
/// the run itself, not by this client.
pub fn run_chaos_client(addr: &str, kind: ChaosKind) -> io::Result<ChaosReport> {
    let mut stream = connect_with_retry(addr, 50, Duration::from_millis(100))?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    stream.set_write_timeout(Some(Duration::from_millis(2_000)))?;
    let mut report = ChaosReport {
        kind,
        closed_code: None,
        denies: 0,
    };
    match kind {
        ChaosKind::Garbage => {
            io::Write::write_all(&mut stream, b"NOT A FRAME AT ALL, JUST NOISE BYTES....")?;
            read_close(&mut stream, &mut report);
        }
        ChaosKind::BadCrc => {
            let mut bytes = encode(&Frame::new(FrameType::Ping, Vec::new()));
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            io::Write::write_all(&mut stream, &bytes)?;
            read_close(&mut stream, &mut report);
        }
        ChaosKind::Oversize => {
            let mut bytes = encode(&Frame::new(FrameType::Request, vec![0u8; 16]));
            let len_at = crate::frame::HEADER_LEN - 4;
            bytes[len_at..len_at + 4].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
            io::Write::write_all(&mut stream, &bytes)?;
            read_close(&mut stream, &mut report);
        }
        ChaosKind::Slow => {
            handshake_observer(&mut stream)?;
            let bytes = encode(&Frame::new(FrameType::Ping, Vec::new()));
            io::Write::write_all(&mut stream, &bytes[..10])?;
            // Stall long enough that the server's mid-frame read times out.
            thread::sleep(Duration::from_millis(300));
            read_close(&mut stream, &mut report);
        }
        ChaosKind::Disconnect => {
            handshake_observer(&mut stream)?;
            let bytes = encode(&Frame::new(FrameType::Ping, Vec::new()));
            io::Write::write_all(&mut stream, &bytes[..7])?;
            drop(stream); // abrupt close mid-frame
        }
        ChaosKind::Unauthorized => {
            handshake_observer(&mut stream)?;
            let req = probe_request();
            write_frame(
                &mut stream,
                &Frame::new(FrameType::Request, encode_payload(&ReqSnap::from(&req))),
            )?;
            // Expect exactly one fail-closed deny back.
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline {
                match read_frame(&mut stream) {
                    Ok(ReadOutcome::Idle) => continue,
                    Ok(ReadOutcome::Closed) => break,
                    Ok(ReadOutcome::Frame(f)) if f.frame_type == FrameType::Decision => {
                        let snap: DecisionSnap = decode_payload(&f.payload)
                            .ok_or_else(|| io::Error::other("bad decision payload"))?;
                        assert!(
                            !snap.verdict.permits_execution(),
                            "unauthorized request was not denied"
                        );
                        report.denies += 1;
                        break;
                    }
                    Ok(ReadOutcome::Frame(_)) => continue,
                    Err(_) => break,
                }
            }
            let _ = write_frame(&mut stream, &Frame::new(FrameType::Bye, Vec::new()));
        }
    }
    Ok(report)
}

/// Hello/Welcome as an observer.
fn handshake_observer(stream: &mut TcpStream) -> io::Result<()> {
    let hello = HelloPayload {
        role: Role::Observer,
        client: 0,
        clients: 0,
    };
    write_frame(
        stream,
        &Frame::new(FrameType::Hello, encode_payload(&hello)),
    )?;
    expect_welcome(stream, Instant::now(), Duration::from_secs(10))
}

/// A syntactically valid request no observer is allowed to submit.
fn probe_request() -> DecisionRequest {
    let schema = apdm_serve::schema();
    DecisionRequest {
        id: u64::MAX / 2, // far outside any workload id range
        tenant: TenantId(0),
        device: 0,
        state: schema.state(&[1.0]).expect("in-schema state"),
        proposed: Action::adjust("probe", Default::default()),
        alternatives: Vec::new(),
        submitted_at: 1,
        deadline: None,
        ctx: None,
    }
}

/// Drain until the server's `Error`/close arrives, recording the code.
fn read_close(stream: &mut TcpStream, report: &mut ChaosReport) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        match read_frame(stream) {
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Frame(f)) if f.frame_type == FrameType::Error => {
                if let Some(err) = decode_payload::<ErrorPayload>(&f.payload) {
                    report.closed_code = Some(err.code);
                }
            }
            Ok(ReadOutcome::Frame(_)) => continue,
            Err(_) => return,
        }
    }
}
