//! JSON payload types carried inside frames, plus the protocol's close
//! codes.
//!
//! Every non-empty frame payload is one of these types serialized as UTF-8
//! JSON. Requests reuse [`ReqSnap`] — the same serializable mirror of
//! [`DecisionRequest`](apdm_serve::DecisionRequest) the checkpoint format
//! uses — so a request survives the wire and a checkpoint identically.
//! Decisions travel as [`DecisionSnap`], a mirror of
//! [`Decision`] minus the trace context (which rides
//! in the frame header instead, see `docs/PROTOCOL.md`).

use apdm_guards::GuardVerdict;
use apdm_serve::{Decision, ShedReason, TenantId};
use apdm_telemetry::TraceContext;
use serde::{Deserialize, Serialize};

pub use apdm_serve::ReqSnap;

/// Encode a payload value as UTF-8 JSON bytes. Infallible for the
/// protocol's own payload types (they contain nothing unserializable).
pub fn encode_payload<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("protocol payloads always encode")
        .into_bytes()
}

/// Decode a UTF-8 JSON payload. `None` on any failure — invalid UTF-8 and
/// schema mismatches alike — so callers stay fail-closed without caring
/// which layer refused.
pub fn decode_payload<T: Deserialize>(bytes: &[u8]) -> Option<T> {
    let text = std::str::from_utf8(bytes).ok()?;
    serde_json::from_str(text).ok()
}

/// Close/error codes carried in [`ErrorPayload::code`] and recorded in the
/// boundary audit ledger. See `docs/PROTOCOL.md` for the full semantics.
pub mod close_code {
    /// Peer spoke an unsupported protocol version.
    pub const BAD_VERSION: u16 = 1;
    /// Frame-level garbage: bad magic, unknown type, reserved context
    /// bits, or CRC mismatch. The stream may be desynchronized, so the
    /// connection is dropped.
    pub const MALFORMED: u16 = 2;
    /// Declared payload length exceeded the protocol maximum.
    pub const OVERSIZE: u16 = 3;
    /// Peer stalled mid-frame past the read timeout, or disconnected
    /// leaving a torn frame.
    pub const STALLED: u16 = 4;
    /// Well-formed frame at the wrong time (e.g. `Request` before `Hello`,
    /// `TickDone` for a tick other than the one being collected).
    pub const PROTOCOL: u16 = 5;
    /// Attributable bad request: the envelope was valid, so the request was
    /// answered with a fail-closed deny and audited; the connection stays
    /// open. This code appears in audit records, never in an `Error` frame.
    pub const REJECTED: u16 = 6;
    /// Server is shutting down (end of run).
    pub const SHUTDOWN: u16 = 7;

    /// Human-readable tag for a close code (audit records, logs).
    pub fn name(code: u16) -> &'static str {
        match code {
            BAD_VERSION => "bad-version",
            MALFORMED => "malformed",
            OVERSIZE => "oversize",
            STALLED => "stalled",
            PROTOCOL => "protocol",
            REJECTED => "rejected",
            SHUTDOWN => "shutdown",
            _ => "unknown",
        }
    }
}

/// What a connecting client is for. Declared in the `Hello` payload and
/// enforced by the server: only `Workload` clients may submit requests and
/// participate in the tick barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Drives a deterministic slice of the workload and joins the
    /// per-tick barrier.
    Workload,
    /// May only `Ping`; any `Request` it sends is rejected fail-closed.
    Observer,
}

/// Payload of a `Hello` frame (client → server, first frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloPayload {
    /// The client's declared role.
    pub role: Role,
    /// This client's index in `0..clients` (workload partition key).
    /// Ignored for observers.
    pub client: u32,
    /// Total number of workload clients the sender believes are driving
    /// the run. Must match the server's configuration.
    pub clients: u32,
}

/// Payload of a `Welcome` frame (server → client, answers `Hello`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WelcomePayload {
    /// Protocol version the server speaks.
    pub version: u8,
    /// Number of workload clients the server expects.
    pub clients: u32,
}

/// Payload of `TickDone` and `TickAck` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickPayload {
    /// The tick this barrier message refers to.
    pub tick: u64,
}

/// Payload of an `Error` frame (server → client, usually the last frame
/// before the server closes the connection).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorPayload {
    /// One of the [`close_code`] constants.
    pub code: u16,
    /// Human-readable detail. Informational only — clients must key off
    /// `code`.
    pub detail: String,
}

/// Serializable mirror of [`Decision`] for the wire. The trace context is
/// **not** part of the payload — it rides in the frame header, so the
/// payload bytes of a decision are identical whether or not the request
/// was traced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionSnap {
    /// The request this answers.
    pub request_id: u64,
    /// Billed tenant.
    pub tenant: u32,
    /// Subject device.
    pub device: u64,
    /// Name of the proposed action the verdict concerns.
    pub action: String,
    /// The guard verdict (always a deny when `shed` is set).
    pub verdict: GuardVerdict,
    /// Set when the service refused to evaluate the request.
    pub shed: Option<ShedReason>,
    /// Tick the request entered the service.
    pub submitted_at: u64,
    /// Tick the decision was rendered.
    pub decided_at: u64,
}

impl From<&Decision> for DecisionSnap {
    fn from(d: &Decision) -> DecisionSnap {
        DecisionSnap {
            request_id: d.request_id,
            tenant: d.tenant.0,
            device: d.device,
            action: d.action.clone(),
            verdict: d.verdict.clone(),
            shed: d.shed,
            submitted_at: d.submitted_at,
            decided_at: d.decided_at,
        }
    }
}

impl DecisionSnap {
    /// Rehydrate a full [`Decision`], reattaching the trace context that
    /// arrived in the frame header.
    pub fn into_decision(self, ctx: Option<TraceContext>) -> Decision {
        Decision {
            request_id: self.request_id,
            tenant: TenantId(self.tenant),
            device: self.device,
            action: self.action,
            verdict: self.verdict,
            shed: self.shed,
            submitted_at: self.submitted_at,
            decided_at: self.decided_at,
            ctx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_round_trip_through_json() {
        let hello = HelloPayload {
            role: Role::Workload,
            client: 1,
            clients: 4,
        };
        let json = serde_json::to_string(&hello).unwrap();
        // The exact bytes matter: docs/PROTOCOL.md's worked example and any
        // non-Rust client implementation depend on this encoding.
        assert_eq!(json, r#"{"role":"Workload","client":1,"clients":4}"#);
        assert_eq!(serde_json::from_str::<HelloPayload>(&json).unwrap(), hello);

        let err = ErrorPayload {
            code: close_code::OVERSIZE,
            detail: "payload length 70000 exceeds 65536".into(),
        };
        let json = serde_json::to_string(&err).unwrap();
        assert_eq!(serde_json::from_str::<ErrorPayload>(&json).unwrap(), err);
    }

    #[test]
    fn decision_snap_round_trips_with_header_ctx() {
        let snap = DecisionSnap {
            request_id: 9,
            tenant: 2,
            device: 11,
            action: "strike".into(),
            verdict: GuardVerdict::Deny {
                reason: "harm".into(),
            },
            shed: None,
            submitted_at: 3,
            decided_at: 4,
        };
        let json = encode_payload(&snap);
        let back: DecisionSnap = decode_payload(&json).unwrap();
        assert_eq!(back, snap);
        let ctx = TraceContext::root(5, true);
        let decision = back.into_decision(Some(ctx));
        assert_eq!(decision.ctx, Some(ctx));
        assert_eq!(DecisionSnap::from(&decision), snap);
        assert_eq!(decision.verdict_name(), "deny");
    }

    #[test]
    fn close_codes_have_stable_names() {
        for (code, name) in [
            (close_code::BAD_VERSION, "bad-version"),
            (close_code::MALFORMED, "malformed"),
            (close_code::OVERSIZE, "oversize"),
            (close_code::STALLED, "stalled"),
            (close_code::PROTOCOL, "protocol"),
            (close_code::REJECTED, "rejected"),
            (close_code::SHUTDOWN, "shutdown"),
        ] {
            assert_eq!(close_code::name(code), name);
        }
        assert_eq!(close_code::name(999), "unknown");
    }
}
