//! The length-prefixed framing codec: how every byte on an APDM/net
//! connection is laid out.
//!
//! One frame is a fixed 35-byte header, a JSON payload, and a 4-byte CRC
//! trailer:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "APDM" (0x41 0x50 0x44 0x4D)
//! 4       1     protocol version (currently 1)
//! 5       1     frame type (FrameType)
//! 6       25    trace context (3 × u64 LE + flag byte; all-zero = none)
//! 31      4     payload length, u32 little-endian (≤ MAX_PAYLOAD)
//! 35      n     payload (UTF-8 JSON; may be empty)
//! 35+n    4     CRC-32 (IEEE), u32 little-endian, over bytes 4..35+n
//! ```
//!
//! The CRC deliberately excludes the magic (a wrong magic is already fatal)
//! and covers everything else including the header, so a flipped version
//! byte or a truncated-then-spliced payload fails the check. Decoding is
//! fail-closed and total: every malformed input maps to a [`FrameError`],
//! never a panic, and the payload length is validated **before** any
//! payload allocation so an adversarial length prefix cannot balloon
//! memory. The full byte-level contract is documented in
//! `docs/PROTOCOL.md`.

use std::io::{self, Read, Write};

use apdm_telemetry::{TraceContext, CONTEXT_WIRE_LEN};

/// The four magic bytes opening every frame: `"APDM"`.
pub const MAGIC: [u8; 4] = *b"APDM";
/// The protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes (magic through payload length).
pub const HEADER_LEN: usize = 4 + 1 + 1 + CONTEXT_WIRE_LEN + 4;
/// CRC trailer length in bytes.
pub const TRAILER_LEN: usize = 4;
/// Largest accepted payload (64 KiB). Larger length prefixes are rejected
/// before any payload is read.
pub const MAX_PAYLOAD: u32 = 64 * 1024;

/// Lookup table for the reflected CRC-32 (IEEE 802.3) polynomial.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 (IEEE) digest, so header and payload can be folded in
/// without concatenating buffers.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Start a fresh digest.
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 >> 8) ^ CRC_TABLE[((self.0 ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finish and return the checksum.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// CRC-32 (IEEE) of one contiguous buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut digest = Crc32::new();
    digest.update(bytes);
    digest.finish()
}

/// Every frame type in protocol version 1. The numeric value is the wire
/// encoding; unknown values are rejected with [`FrameError::BadType`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: first frame on a connection; payload names the
    /// client role (`wire::HelloPayload`).
    Hello = 1,
    /// Server → client: accepts a `Hello`; payload is `wire::WelcomePayload`.
    Welcome = 2,
    /// Client → server: one `DecisionRequest` (payload is a request
    /// snapshot).
    Request = 3,
    /// Server → client: one `Decision` (payload is `wire::DecisionSnap`).
    Decision = 4,
    /// Client → server: "my requests for tick *t* are all sent"
    /// (payload is `wire::TickPayload`).
    TickDone = 5,
    /// Server → client: "tick *t* is fully decided" (payload is
    /// `wire::TickPayload`).
    TickAck = 6,
    /// Either direction: orderly close. Empty payload.
    Bye = 7,
    /// Server → client: protocol error; payload is `wire::ErrorPayload`
    /// carrying a close code.
    Error = 8,
    /// Client → server: liveness probe. Empty payload.
    Ping = 9,
    /// Server → client: answer to a `Ping`. Empty payload.
    Pong = 10,
}

impl FrameType {
    /// Decode a wire byte; `None` for unknown types.
    pub fn from_u8(byte: u8) -> Option<FrameType> {
        Some(match byte {
            1 => FrameType::Hello,
            2 => FrameType::Welcome,
            3 => FrameType::Request,
            4 => FrameType::Decision,
            5 => FrameType::TickDone,
            6 => FrameType::TickAck,
            7 => FrameType::Bye,
            8 => FrameType::Error,
            9 => FrameType::Ping,
            10 => FrameType::Pong,
            _ => return None,
        })
    }
}

/// One decoded frame: type, optional trace context, raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What kind of frame this is.
    pub frame_type: FrameType,
    /// The causal trace context riding in the header, if the sender
    /// attached one.
    pub ctx: Option<TraceContext>,
    /// Raw payload bytes (UTF-8 JSON for non-empty payloads).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with no trace context.
    pub fn new(frame_type: FrameType, payload: Vec<u8>) -> Frame {
        Frame {
            frame_type,
            ctx: None,
            payload,
        }
    }

    /// A frame carrying a trace context in its header.
    pub fn traced(frame_type: FrameType, ctx: Option<TraceContext>, payload: Vec<u8>) -> Frame {
        Frame {
            frame_type,
            ctx,
            payload,
        }
    }
}

/// Every way a byte stream can fail to be a valid frame. Decoding never
/// panics: adversarial input maps here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not `"APDM"`.
    BadMagic([u8; 4]),
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Unknown frame-type byte.
    BadType(u8),
    /// Reserved trace-context flag bits were set.
    BadContext(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// Trailer CRC did not match the computed checksum.
    BadCrc {
        /// Checksum computed over the received bytes.
        computed: u32,
        /// Checksum carried in the frame trailer.
        received: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported version {v}"),
            FrameError::BadType(t) => write!(f, "unknown frame type {t}"),
            FrameError::BadContext(b) => write!(f, "reserved context flag bits set: {b:#04x}"),
            FrameError::Oversize(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            FrameError::BadCrc { computed, received } => {
                write!(
                    f,
                    "crc mismatch: computed {computed:#010x}, received {received:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Outcome of one [`read_frame`] call that did not produce an error.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, checksum-valid frame.
    Frame(Frame),
    /// The read timed out **between** frames (no bytes of the next frame
    /// had arrived). The stream is still well-framed; callers typically
    /// check a shutdown flag and retry.
    Idle,
    /// Clean EOF at a frame boundary: the peer closed without a partial
    /// frame in flight.
    Closed,
}

/// Every way [`read_frame`] can fail.
#[derive(Debug)]
pub enum ReadError {
    /// The bytes arrived but do not form a valid frame.
    Malformed(FrameError),
    /// The read timed out **mid-frame**: the peer stalled after sending a
    /// partial frame. Fail-closed policy is to drop the connection.
    Stalled,
    /// EOF arrived mid-frame: the peer disconnected leaving a torn frame.
    Truncated,
    /// Any other I/O error.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Malformed(e) => write!(f, "malformed frame: {e}"),
            ReadError::Stalled => write!(f, "peer stalled mid-frame"),
            ReadError::Truncated => write!(f, "peer disconnected mid-frame"),
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// How far a `read_full` call got before returning.
enum Fill {
    /// Buffer completely filled.
    Done,
    /// EOF before the first byte (only reported when `filled == 0`).
    Eof,
    /// Timeout before the first byte.
    Timeout,
}

/// Fill `buf` from `r`, looping over short reads (so a peer dribbling one
/// byte at a time still assembles a full frame). Distinguishes "nothing
/// arrived at all" from "stream died mid-buffer".
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<Fill, ReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(Fill::Eof)
                } else {
                    Err(ReadError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return if filled == 0 {
                    Ok(Fill::Timeout)
                } else {
                    Err(ReadError::Stalled)
                };
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(Fill::Done)
}

/// Encode one frame to its wire bytes. Pure; the inverse of [`decode`].
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + frame.payload.len() + TRAILER_LEN);
    bytes.extend_from_slice(&MAGIC);
    bytes.push(VERSION);
    bytes.push(frame.frame_type as u8);
    match &frame.ctx {
        Some(ctx) => bytes.extend_from_slice(&ctx.to_wire()),
        None => bytes.extend_from_slice(&[0u8; CONTEXT_WIRE_LEN]),
    }
    bytes.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&frame.payload);
    let crc = crc32(&bytes[4..]);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Write one frame to `w` and flush.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode(frame))?;
    w.flush()
}

/// Validate a fully-buffered header (the first [`HEADER_LEN`] bytes of a
/// frame) and return `(frame_type, ctx, payload_len)`.
fn decode_header(
    header: &[u8; HEADER_LEN],
) -> Result<(FrameType, Option<TraceContext>, u32), FrameError> {
    let magic: [u8; 4] = header[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let frame_type = FrameType::from_u8(header[5]).ok_or(FrameError::BadType(header[5]))?;
    let ctx_bytes: [u8; CONTEXT_WIRE_LEN] = header[6..6 + CONTEXT_WIRE_LEN]
        .try_into()
        .expect("context bytes");
    if ctx_bytes[CONTEXT_WIRE_LEN - 1] & !1 != 0 {
        return Err(FrameError::BadContext(ctx_bytes[CONTEXT_WIRE_LEN - 1]));
    }
    let ctx = TraceContext::from_wire(&ctx_bytes);
    let len = u32::from_le_bytes(header[HEADER_LEN - 4..].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversize(len));
    }
    Ok((frame_type, ctx, len))
}

/// Decode one frame from a contiguous buffer holding exactly one frame.
/// Pure; the inverse of [`encode`]. Trailing garbage is a CRC error.
pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        // Too short to hold even an empty frame: classify by what's missing.
        let mut magic = [0u8; 4];
        let got = bytes.len().min(4);
        magic[..got].copy_from_slice(&bytes[..got]);
        return Err(FrameError::BadMagic(magic));
    }
    let header: [u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("header bytes");
    let (frame_type, ctx, len) = decode_header(&header)?;
    let body_end = HEADER_LEN + len as usize;
    if bytes.len() != body_end + TRAILER_LEN {
        return Err(FrameError::BadCrc {
            computed: crc32(&bytes[4..bytes.len().saturating_sub(TRAILER_LEN).max(4)]),
            received: 0,
        });
    }
    let computed = crc32(&bytes[4..body_end]);
    let received = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
    if computed != received {
        return Err(FrameError::BadCrc { computed, received });
    }
    Ok(Frame {
        frame_type,
        ctx,
        payload: bytes[HEADER_LEN..body_end].to_vec(),
    })
}

/// Read one frame from `r`, blocking until a frame, timeout, EOF, or error.
///
/// Timeouts (an `Err` of kind `WouldBlock`/`TimedOut` from `r`, e.g. a
/// `TcpStream` with a read timeout) are classified by position: **between**
/// frames they are [`ReadOutcome::Idle`] (benign — retry), **inside** a
/// frame they are [`ReadError::Stalled`] (a slow-loris peer; drop it).
/// Likewise EOF: at a boundary it is [`ReadOutcome::Closed`], mid-frame it
/// is [`ReadError::Truncated`]. Short reads are looped, so a peer writing
/// one byte at a time is fine.
pub fn read_frame(r: &mut impl Read) -> Result<ReadOutcome, ReadError> {
    let mut header = [0u8; HEADER_LEN];
    match read_full(r, &mut header)? {
        Fill::Done => {}
        Fill::Eof => return Ok(ReadOutcome::Closed),
        Fill::Timeout => return Ok(ReadOutcome::Idle),
    }
    let (frame_type, ctx, len) = decode_header(&header).map_err(ReadError::Malformed)?;
    let mut payload = vec![0u8; len as usize];
    match read_full(r, &mut payload)? {
        Fill::Done => {}
        Fill::Eof | Fill::Timeout if len == 0 => {}
        Fill::Eof => return Err(ReadError::Truncated),
        Fill::Timeout => return Err(ReadError::Stalled),
    }
    let mut trailer = [0u8; TRAILER_LEN];
    match read_full(r, &mut trailer)? {
        Fill::Done => {}
        Fill::Eof => return Err(ReadError::Truncated),
        Fill::Timeout => return Err(ReadError::Stalled),
    }
    let mut digest = Crc32::new();
    digest.update(&header[4..]);
    digest.update(&payload);
    let computed = digest.finish();
    let received = u32::from_le_bytes(trailer);
    if computed != received {
        return Err(ReadError::Malformed(FrameError::BadCrc {
            computed,
            received,
        }));
    }
    Ok(ReadOutcome::Frame(Frame {
        frame_type,
        ctx,
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let ctx = TraceContext::root(7, true).child(1);
        for (ty, ctx) in [
            (FrameType::Hello, None),
            (FrameType::Request, Some(ctx)),
            (FrameType::Bye, None),
        ] {
            let frame = Frame::traced(ty, ctx, b"{\"k\":1}".to_vec());
            let bytes = encode(&frame);
            assert_eq!(decode(&bytes).unwrap(), frame);
            match read_frame(&mut Cursor::new(&bytes)).unwrap() {
                ReadOutcome::Frame(f) => assert_eq!(f, frame),
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn eof_at_boundary_is_closed_but_midframe_is_truncated() {
        let bytes = encode(&Frame::new(FrameType::Ping, Vec::new()));
        match read_frame(&mut Cursor::new(&[][..])).unwrap() {
            ReadOutcome::Closed => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        for cut in 1..bytes.len() {
            match read_frame(&mut Cursor::new(&bytes[..cut])) {
                Err(ReadError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversize_length_rejected_before_payload_read() {
        let mut bytes = encode(&Frame::new(FrameType::Request, vec![0u8; 8]));
        bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut Cursor::new(&bytes)) {
            Err(ReadError::Malformed(FrameError::Oversize(n))) => assert_eq!(n, u32::MAX),
            other => panic!("expected Oversize, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_bytes_never_panic() {
        let good = encode(&Frame::traced(
            FrameType::Decision,
            Some(TraceContext::root(3, false)),
            b"{\"v\":true}".to_vec(),
        ));
        for at in 0..good.len() {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            // Every single-byte corruption decodes to an error, not a frame
            // equal to the original, and never panics.
            if let Ok(f) = decode(&bad) {
                assert_ne!(encode(&f), good);
            }
        }
    }
}
