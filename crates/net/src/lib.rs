//! # apdm-net — a framed TCP boundary for the policy decision service
//!
//! The paper's governance model only matters if untrusted device clients
//! reach the guard stack through a real I/O boundary. This crate puts a
//! std-only, blocking TCP transport in front of
//! [`apdm_serve::PolicyDecisionService`] **without letting wall-clock
//! nondeterminism leak into it**:
//!
//! * [`frame`] — the length-prefixed codec (magic, version, type, trace
//!   context, payload length, CRC-32). Decoding is total and fail-closed:
//!   garbage maps to typed errors, never panics, and oversized length
//!   prefixes are rejected before any allocation. The byte-level contract
//!   is specified in `docs/PROTOCOL.md`.
//! * [`wire`] — the JSON payloads and close codes.
//! * [`server`] — a thread-per-connection accept loop funneling decoded
//!   events over an mpsc channel into the single-threaded tick loop. A
//!   per-tick barrier plus a deterministic sort resolve within-tick
//!   arrival order, so the decision stream and sealed segmented-ledger
//!   bytes are identical to the in-process path. Malformed traffic is
//!   answered fail-closed — an audited deny when the request can be
//!   attributed, an audited connection drop otherwise.
//! * [`client`] — the deterministic workload driver (each client sends
//!   the partition `id % clients == index` of one shared seeded workload)
//!   and scripted chaos clients.
//! * [`experiment`] — the E17 harness asserting all of the above, plus a
//!   traced probe showing [`TraceContext`](apdm_telemetry::TraceContext)
//!   riding the frame headers end to end: client → wire → service → wire
//!   → client.
//!
//! ## Example
//!
//! One server, one workload client, over a real loopback socket:
//!
//! ```
//! use std::net::TcpListener;
//! use std::thread;
//! use std::time::Duration;
//!
//! use apdm_net::{run_workload_client, serve, E17Config};
//! use apdm_serve::{standard_stacks, PolicyDecisionService, WorkloadOracle};
//!
//! let cfg = E17Config {
//!     arrival_ticks: 4,
//!     per_tick: 2,
//!     ..E17Config::default()
//! };
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap().to_string();
//!
//! let (serve_cfg, net_cfg) = (cfg.serve_config(), cfg.net_config(1));
//! let (shards, name, spec) = (cfg.shards, cfg.run_name(), cfg.spec());
//! let server = thread::spawn(move || {
//!     let svc = PolicyDecisionService::new(
//!         serve_cfg,
//!         standard_stacks(shards, true),
//!         WorkloadOracle,
//!         &name,
//!     );
//!     serve(listener, svc, net_cfg).unwrap()
//! });
//!
//! let report = run_workload_client(&addr, spec, 0, 1, None, Duration::from_secs(30)).unwrap();
//! let outcome = server.join().unwrap();
//!
//! // Every request came back decided, and the ledger sealed and verifies.
//! assert_eq!(report.decisions.len() as u64, report.sent);
//! assert!(outcome.ledger.verify().is_ok());
//! assert_eq!(outcome.drops, 0);
//! ```
//!
//! Participates in experiment **E17** (`bench_e17_net` →
//! `BENCH_e17_net.json`); the multi-process variant is exercised by the
//! `serve-net` CLI subcommand and the CI smoke.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod experiment;
pub mod frame;
pub mod server;
pub mod wire;

pub use client::{
    connect_with_retry, run_chaos_client, run_workload_client, ChaosKind, ChaosReport, ClientReport,
};
pub use experiment::{golden_segments, run_e17, E17CellReport, E17Config, E17Report};
pub use frame::{
    crc32, decode, encode, read_frame, write_frame, Crc32, Frame, FrameError, FrameType, ReadError,
    ReadOutcome, HEADER_LEN, MAGIC, MAX_PAYLOAD, TRAILER_LEN, VERSION,
};
pub use server::{serve, NetServerConfig, ServeOutcome};
pub use wire::{
    close_code, DecisionSnap, ErrorPayload, HelloPayload, ReqSnap, Role, TickPayload,
    WelcomePayload,
};
