//! The server side: a thread-per-connection accept loop funneling frames
//! over an mpsc channel into the existing single-threaded tick loop.
//!
//! ## Determinism across the I/O boundary
//!
//! The deterministic core — admission lanes, batching, sharding, memo
//! caches, segmented ledger, checkpoints — runs unchanged on the caller's
//! thread. Connection threads only *transport*: they decode frames and
//! forward events; they never touch the service. Wall-clock
//! nondeterminism (thread scheduling, packet arrival order) is contained
//! by a lockstep barrier:
//!
//! 1. Workload clients partition one seeded workload by request id
//!    (`id % clients == index`) and, per tick *t*, send their slice
//!    followed by `TickDone(t)`.
//! 2. The server collects until **every** workload client has declared
//!    tick *t* done, sorts the tick's requests by id (restoring the
//!    generator's emission order), submits them, and runs exactly one
//!    service tick — the same `submit*; tick` cadence as the in-process
//!    driver.
//! 3. Decisions are routed back to the submitting connection and the
//!    server broadcasts `TickAck(t)`.
//!
//! Within-tick arrival order across connections is therefore *resolved*,
//! not trusted: whatever order the OS delivers frames in, the service
//! sees the same request sequence, so the decision stream and sealed
//! segmented-ledger bytes are identical to the in-process path (asserted
//! by experiment E17).
//!
//! ## Fail-closed boundary
//!
//! Malformed traffic can never reach the guard stacks or crash the
//! server. Frame-level garbage (bad magic, CRC, oversize, torn or
//! stalled frames) cannot be attributed to a request, so the connection
//! is dropped and the drop recorded in a **boundary audit ledger** — a
//! separate tamper-evident ledger, so rejected noise never perturbs the
//! decision ledger's bytes. Well-framed but invalid requests *can* be
//! attributed, so they are answered with a fail-closed deny and audited,
//! and the connection stays open. Every rejection path lands in exactly
//! one of those two buckets; there is no silent discard.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use apdm_guards::{GuardVerdict, HarmOracle};
use apdm_ledger::{Ledger, RunEvent, RunRecorder, SegmentedLedger};
use apdm_policy::{AuditEntry, AuditKind};
use apdm_serve::{Decision, DecisionRequest, PolicyDecisionService, ReqSnap, ServeStats};
use apdm_telemetry::{self as telemetry, TraceContext};

use crate::frame::{read_frame, write_frame, Frame, FrameType, ReadError, ReadOutcome, VERSION};
use crate::wire::{
    close_code, decode_payload, encode_payload, DecisionSnap, ErrorPayload, HelloPayload, Role,
    TickPayload, WelcomePayload,
};

/// Slot for deriving the network hops (`net.recv`, `net.send`) of a
/// request's causal chain. The serve pipeline uses slot 1 for its internal
/// stages; the wire hops use their own slot so the chain stays linear.
const NET_SLOT: u64 = 2;

/// Configuration of one serving run over TCP.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Number of workload clients that must join the per-tick barrier.
    pub clients: u32,
    /// Ticks during which workload clients offer requests (the barrier
    /// phase); afterwards the server drains its queue unassisted.
    pub arrival_ticks: u64,
    /// Watchdog: the run fails if the drain runs past this tick.
    pub max_ticks: u64,
    /// Per-connection socket read timeout. Also the cadence at which idle
    /// connection readers re-check the shutdown flag.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout; a peer that stops reading is
    /// dropped rather than allowed to wedge a writer thread.
    pub write_timeout: Duration,
    /// How long the tick barrier may sit with no incoming event at all
    /// before the run is abandoned (e.g. a workload client hangs).
    pub barrier_timeout: Duration,
    /// Seed recorded in the boundary audit ledger's run header.
    pub seed: u64,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            clients: 1,
            arrival_ticks: 32,
            max_ticks: 4_000,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_millis(2_000),
            barrier_timeout: Duration::from_secs(30),
            seed: 42,
        }
    }
}

/// Everything one TCP serving run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The sealed segmented decision ledger — byte-identical to the
    /// in-process path for the same workload and service config.
    pub ledger: SegmentedLedger,
    /// Service counters.
    pub stats: ServeStats,
    /// The sealed boundary audit ledger: one record per join, departure,
    /// rejected request and dropped connection.
    pub audit: Ledger,
    /// Tick at which the ledger was sealed.
    pub final_tick: u64,
    /// Decisions routed back to clients.
    pub decisions_sent: u64,
    /// Decisions whose connection had already gone away.
    pub decisions_dropped: u64,
    /// Attributable bad requests answered with a fail-closed deny.
    pub rejects: u64,
    /// Connections dropped for frame-level garbage, stalls, or protocol
    /// violations.
    pub drops: u64,
    /// Total connections accepted.
    pub connections: u64,
}

/// What a connection's writer thread is told to do next.
enum Outbound {
    /// Write one frame.
    Frame(Frame),
    /// Write an `Error` frame with this close code, then close the socket.
    Close(u16, String),
    /// Write a `Bye`, then close the socket (orderly end of run).
    Finish,
    /// Close the socket without writing (peer already said `Bye`).
    Quiet,
}

/// Events flowing from connection readers into the tick loop.
enum Event {
    /// A connection completed its `Hello`.
    Joined {
        conn: u64,
        role: Role,
        index: u32,
        clients: u32,
        out: Sender<Outbound>,
    },
    /// A workload connection submitted a request (trace context already
    /// reattached from the frame header).
    Request { conn: u64, req: DecisionRequest },
    /// A workload connection declared its slice of a tick complete.
    TickDone { conn: u64, tick: u64 },
    /// The connection was dropped (frame garbage, stall, protocol error,
    /// or I/O failure). The reader has already arranged the close.
    Dropped {
        conn: u64,
        code: u16,
        detail: String,
    },
    /// The peer closed cleanly.
    Left { conn: u64 },
}

/// Per-connection state owned by the tick loop.
struct ConnState {
    out: Sender<Outbound>,
    role: Role,
    index: u32,
}

/// The tick loop's bookkeeping, audit trail, and counters.
struct Loop {
    conns: HashMap<u64, ConnState>,
    /// Workload index → connection id, to reject duplicate joins.
    workload: HashMap<u32, u64>,
    /// Requests collected for the tick currently behind the barrier.
    pending: Vec<(u64, DecisionRequest)>,
    /// Workload connections that declared the current tick done.
    done: HashMap<u64, bool>,
    /// request id → connection owed the decision.
    owed: HashMap<u64, u64>,
    audit: RunRecorder,
    audit_seq: u64,
    rejects: u64,
    drops: u64,
    decisions_sent: u64,
    decisions_dropped: u64,
    expected_clients: u32,
}

impl Loop {
    fn audit(&mut self, tick: u64, kind: AuditKind, subject: String, detail: String) {
        let entry = AuditEntry {
            seq: self.audit_seq,
            tick,
            subject,
            kind,
            detail,
        };
        self.audit_seq += 1;
        self.audit.record(tick, RunEvent::Audit(entry));
    }

    fn count(name: &'static str) {
        if telemetry::enabled() {
            telemetry::with_registry(|reg| reg.counter(name).inc());
        }
    }

    /// Workload clients currently joined and done with the barrier tick.
    fn barrier_met(&self) -> bool {
        self.workload.len() == self.expected_clients as usize
            && self.done.len() == self.expected_clients as usize
    }

    /// Handle one reader event at barrier tick `tick` (the tick being
    /// collected; past the arrival window it is the current drain tick).
    /// Returns an error only for failures that make the deterministic run
    /// impossible (a workload client vanished).
    fn handle(&mut self, ev: Event, tick: u64, collecting: bool) -> io::Result<()> {
        match ev {
            Event::Joined {
                conn,
                role,
                index,
                clients,
                out,
            } => {
                let valid = match role {
                    Role::Workload => {
                        clients == self.expected_clients
                            && index < clients
                            && !self.workload.contains_key(&index)
                    }
                    Role::Observer => true,
                };
                if !valid {
                    let _ = out.send(Outbound::Close(
                        close_code::PROTOCOL,
                        format!("bad hello: role={role:?} index={index} clients={clients}"),
                    ));
                    self.drops += 1;
                    Self::count("net.conn.dropped");
                    self.audit(
                        tick,
                        AuditKind::Note,
                        format!("conn{conn}"),
                        format!("drop code={} bad hello", close_code::PROTOCOL),
                    );
                    return Ok(());
                }
                let _ = out.send(Outbound::Frame(Frame::new(
                    FrameType::Welcome,
                    encode_payload(&WelcomePayload {
                        version: VERSION,
                        clients: self.expected_clients,
                    }),
                )));
                if role == Role::Workload {
                    self.workload.insert(index, conn);
                }
                self.conns.insert(conn, ConnState { out, role, index });
                Self::count("net.conn.joined");
                self.audit(
                    tick,
                    AuditKind::Note,
                    format!("conn{conn}"),
                    format!("joined role={role:?} index={index}"),
                );
                Ok(())
            }
            Event::Request { conn, req } => {
                let Some(state) = self.conns.get(&conn) else {
                    return Ok(()); // dropped concurrently; reader is exiting
                };
                if state.role != Role::Workload || !collecting {
                    // Attributable, but not admissible: observers may not
                    // submit, and nothing may arrive after the arrival
                    // window. Fail-closed deny + audit.
                    let detail = if state.role != Role::Workload {
                        "role"
                    } else {
                        "late"
                    };
                    self.reject(conn, &req, tick, detail);
                    return Ok(());
                }
                self.pending.push((conn, req));
                Ok(())
            }
            Event::TickDone { conn, tick: t } => {
                let Some(state) = self.conns.get(&conn) else {
                    return Ok(());
                };
                if state.role != Role::Workload || !collecting || t != tick {
                    let _ = state.out.send(Outbound::Close(
                        close_code::PROTOCOL,
                        format!("unexpected TickDone({t}) at tick {tick}"),
                    ));
                    return self.depart(conn, tick, collecting, "protocol: bad TickDone");
                }
                self.done.insert(conn, true);
                Ok(())
            }
            Event::Dropped { conn, code, detail } => {
                self.drops += 1;
                Self::count("net.conn.dropped");
                self.audit(
                    tick,
                    AuditKind::Note,
                    format!("conn{conn}"),
                    format!("drop code={code} ({}): {detail}", close_code::name(code)),
                );
                self.depart(conn, tick, collecting, "dropped")
            }
            Event::Left { conn } => {
                self.audit(tick, AuditKind::Note, format!("conn{conn}"), "bye".into());
                self.depart(conn, tick, collecting, "left")
            }
        }
    }

    /// Answer an attributable bad request with a fail-closed deny and
    /// audit it. The request never reaches the service.
    fn reject(&mut self, conn: u64, req: &DecisionRequest, tick: u64, why: &str) {
        if let Some(state) = self.conns.get(&conn) {
            let snap = DecisionSnap {
                request_id: req.id,
                tenant: req.tenant.0,
                device: req.device,
                action: req.proposed.name().to_string(),
                verdict: GuardVerdict::Deny {
                    reason: format!("net:reject:{why}"),
                },
                shed: None,
                submitted_at: req.submitted_at,
                decided_at: tick,
            };
            let _ = state.out.send(Outbound::Frame(Frame::traced(
                FrameType::Decision,
                req.ctx.map(|c| c.child(NET_SLOT)),
                encode_payload(&snap),
            )));
        }
        self.rejects += 1;
        Self::count("net.request.rejected");
        self.audit(
            tick,
            AuditKind::Decision,
            format!("conn{conn}/req{}", req.id),
            format!("fail-closed deny: {why}"),
        );
    }

    /// Remove a connection. A workload client vanishing while the barrier
    /// still depends on it (`critical`, i.e. during the arrival window)
    /// makes the deterministic run impossible and fails the run; after the
    /// window its departure is routine.
    fn depart(&mut self, conn: u64, tick: u64, critical: bool, why: &str) -> io::Result<()> {
        let Some(state) = self.conns.remove(&conn) else {
            return Ok(());
        };
        self.done.remove(&conn);
        if state.role == Role::Workload {
            self.workload.remove(&state.index);
            if critical {
                return Err(io::Error::other(format!(
                    "workload client {} {} at tick {tick}: deterministic run impossible",
                    state.index, why
                )));
            }
        }
        Ok(())
    }

    /// Route one decision back to the connection that submitted its
    /// request, advancing the causal chain with a `net.send` hop.
    fn route(&mut self, decision: &Decision) {
        let ctx = net_hop(decision.ctx, "net.send", decision.device);
        let Some(conn) = self.owed.remove(&decision.request_id) else {
            self.decisions_dropped += 1;
            return;
        };
        let sent = self.conns.get(&conn).is_some_and(|state| {
            state
                .out
                .send(Outbound::Frame(Frame::traced(
                    FrameType::Decision,
                    ctx,
                    encode_payload(&DecisionSnap::from(decision)),
                )))
                .is_ok()
        });
        if sent {
            self.decisions_sent += 1;
            Self::count("net.decision.sent");
        } else {
            self.decisions_dropped += 1;
        }
    }
}

/// Advance a request's causal chain by one wire hop, emitting the event
/// when the trace records. Mirrors the serve pipeline's stage events but
/// uses the wire slot.
fn net_hop(ctx: Option<TraceContext>, name: &'static str, device: u64) -> Option<TraceContext> {
    let next = ctx?.child(NET_SLOT);
    if telemetry::enabled() && next.sampled {
        let mut fields = Vec::new();
        next.push_fields(device, &mut fields);
        telemetry::emit_event(name, telemetry::Level::Debug, fields);
    }
    Some(next)
}

/// Serve one deterministic run over TCP and seal the ledger.
///
/// Accepts connections on `listener` until `cfg.clients` workload clients
/// have driven all `cfg.arrival_ticks` ticks through the lockstep barrier,
/// drains the service queue, seals the segmented decision ledger, and
/// returns it together with the boundary audit ledger. The caller supplies
/// a fresh [`PolicyDecisionService`]; the function never spawns a thread
/// that touches it.
pub fn serve<O: HarmOracle + Copy + Send + Sync>(
    listener: TcpListener,
    mut svc: PolicyDecisionService<O>,
    cfg: NetServerConfig,
) -> io::Result<ServeOutcome> {
    let shutdown = Arc::new(AtomicBool::new(false));
    let (events_tx, events) = mpsc::channel::<Event>();
    let accepted = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let accept_handle = spawn_acceptor(
        listener,
        events_tx,
        shutdown.clone(),
        accepted.clone(),
        &cfg,
    )?;

    let mut state = Loop {
        conns: HashMap::new(),
        workload: HashMap::new(),
        pending: Vec::new(),
        done: HashMap::new(),
        owed: HashMap::new(),
        audit: RunRecorder::new("e17/net-audit", cfg.seed, 0),
        audit_seq: 0,
        rejects: 0,
        drops: 0,
        decisions_sent: 0,
        decisions_dropped: 0,
        expected_clients: cfg.clients,
    };

    let run = drive(&mut svc, &mut state, &events, &cfg);
    // Orderly shutdown regardless of how the run ended: stop accepting,
    // close every connection, and let the threads unwind.
    shutdown.store(true, Ordering::SeqCst);
    for conn in state.conns.values() {
        let _ = conn.out.send(Outbound::Finish);
    }
    let _ = accept_handle.join();
    let final_tick = run?;

    let (ledger, stats) = svc.finish_segmented(final_tick);
    let audit = state.audit.finish(final_tick, 0);
    Ok(ServeOutcome {
        ledger,
        stats,
        audit,
        final_tick,
        decisions_sent: state.decisions_sent,
        decisions_dropped: state.decisions_dropped,
        rejects: state.rejects,
        drops: state.drops,
        connections: accepted.load(Ordering::SeqCst),
    })
}

/// The deterministic tick loop: barrier-collect, sort, submit, tick,
/// route; then drain. Returns the final tick for `finish_segmented`.
fn drive<O: HarmOracle + Copy + Send + Sync>(
    svc: &mut PolicyDecisionService<O>,
    state: &mut Loop,
    events: &Receiver<Event>,
    cfg: &NetServerConfig,
) -> io::Result<u64> {
    let mut now = 0u64;
    // Phase A: the arrival window, one barrier per tick.
    for tick in 1..=cfg.arrival_ticks {
        now = tick;
        while !state.barrier_met() {
            match events.recv_timeout(cfg.barrier_timeout) {
                Ok(ev) => state.handle(ev, tick, true)?,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "tick {tick} barrier stalled: {}/{} clients joined, {} done",
                            state.workload.len(),
                            cfg.clients,
                            state.done.len()
                        ),
                    ));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::other("acceptor vanished"));
                }
            }
        }
        // The OS delivered this tick's requests in arbitrary interleaving;
        // sorting by id restores the workload generator's emission order,
        // which is what the in-process driver submits.
        let mut pending = std::mem::take(&mut state.pending);
        pending.sort_by_key(|(_, req)| req.id);
        for (conn, mut req) in pending {
            if req.submitted_at != tick {
                state.reject(conn, &req, tick, "tick-mismatch");
                continue;
            }
            req.ctx = net_hop(req.ctx, "net.recv", req.device);
            state.owed.insert(req.id, conn);
            if let Some(shed) = svc.submit(req, tick) {
                state.route(&shed);
            }
        }
        for decision in svc.tick(now) {
            state.route(&decision);
        }
        state.done.clear();
        let ack = encode_payload(&TickPayload { tick });
        for &conn in state.workload.values() {
            if let Some(c) = state.conns.get(&conn) {
                let _ = c
                    .out
                    .send(Outbound::Frame(Frame::new(FrameType::TickAck, ack.clone())));
            }
        }
    }
    // Phase B: drain the queue without the barrier (clients only read).
    while svc.queue_depth() > 0 {
        now += 1;
        if now > cfg.max_ticks {
            return Err(io::Error::other(format!(
                "drain watchdog tripped at tick {now}"
            )));
        }
        while let Ok(ev) = events.try_recv() {
            state.handle(ev, now, false)?;
        }
        for decision in svc.tick(now) {
            state.route(&decision);
        }
    }
    Ok(now)
}

/// Spawn the accept loop: non-blocking accept so the shutdown flag is
/// honored promptly, one reader + one writer thread per connection.
fn spawn_acceptor(
    listener: TcpListener,
    events: Sender<Event>,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<std::sync::atomic::AtomicU64>,
    cfg: &NetServerConfig,
) -> io::Result<thread::JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let read_timeout = cfg.read_timeout;
    let write_timeout = cfg.write_timeout;
    Ok(thread::spawn(move || {
        let mut next_conn = 0u64;
        let mut handles = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let conn = next_conn;
                    next_conn += 1;
                    accepted.fetch_add(1, Ordering::SeqCst);
                    let events = events.clone();
                    let shutdown = shutdown.clone();
                    handles.push(thread::spawn(move || {
                        connection(conn, stream, events, shutdown, read_timeout, write_timeout);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        for h in handles {
            let _ = h.join();
        }
    }))
}

/// One connection: spawn the writer, then run the reader in this thread.
fn connection(
    conn: u64,
    stream: TcpStream,
    events: Sender<Event>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (out_tx, out_rx) = mpsc::channel::<Outbound>();
    let writer = thread::spawn(move || writer_loop(write_half, out_rx));
    reader_loop(conn, stream, &events, &out_tx, &shutdown);
    drop(out_tx);
    let _ = writer.join();
}

/// Drain the outbound queue onto the socket; any close instruction (or a
/// write failure) ends the connection.
fn writer_loop(mut stream: TcpStream, out: Receiver<Outbound>) {
    for msg in out {
        match msg {
            Outbound::Frame(frame) => {
                if write_frame(&mut stream, &frame).is_err() {
                    break;
                }
            }
            Outbound::Close(code, detail) => {
                let payload = encode_payload(&ErrorPayload { code, detail });
                let _ = write_frame(&mut stream, &Frame::new(FrameType::Error, payload));
                break;
            }
            Outbound::Finish => {
                let _ = write_frame(&mut stream, &Frame::new(FrameType::Bye, Vec::new()));
                break;
            }
            Outbound::Quiet => break,
        }
    }
    // Unblocks the reader (its next read returns EOF) and flushes RST-free.
    let _ = stream.shutdown(Shutdown::Both);
}

/// Decode and dispatch frames until the peer closes, errs out, or the
/// server shuts down. All fail-closed classification lives here.
fn reader_loop(
    conn: u64,
    mut stream: TcpStream,
    events: &Sender<Event>,
    out: &Sender<Outbound>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut role: Option<Role> = None;
    let mut idle = 0u32;
    // A connection gets ~10s of pre-Hello idling before it is treated as a
    // slow-loris and dropped (each Idle is one read-timeout period).
    let hello_budget = 200u32;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            let _ = out.send(Outbound::Finish);
            return;
        }
        let frame = match read_frame(&mut stream) {
            Ok(ReadOutcome::Frame(f)) => {
                idle = 0;
                f
            }
            Ok(ReadOutcome::Idle) => {
                idle += 1;
                if role.is_none() && idle > hello_budget {
                    drop_conn(conn, events, out, close_code::STALLED, "no hello".into());
                    return;
                }
                continue;
            }
            Ok(ReadOutcome::Closed) => {
                if role.is_some() {
                    let _ = events.send(Event::Left { conn });
                }
                let _ = out.send(Outbound::Quiet);
                return;
            }
            Err(ReadError::Malformed(e)) => {
                let code = match e {
                    crate::frame::FrameError::BadVersion(_) => close_code::BAD_VERSION,
                    crate::frame::FrameError::Oversize(_) => close_code::OVERSIZE,
                    _ => close_code::MALFORMED,
                };
                drop_conn(conn, events, out, code, e.to_string());
                return;
            }
            Err(ReadError::Stalled) | Err(ReadError::Truncated) => {
                drop_conn(conn, events, out, close_code::STALLED, "torn frame".into());
                return;
            }
            Err(ReadError::Io(e)) => {
                drop_conn(conn, events, out, close_code::STALLED, e.to_string());
                return;
            }
        };
        match (frame.frame_type, role) {
            (FrameType::Hello, None) => {
                let Some(hello) = decode_payload::<HelloPayload>(&frame.payload) else {
                    drop_conn(conn, events, out, close_code::MALFORMED, "bad hello".into());
                    return;
                };
                role = Some(hello.role);
                let _ = events.send(Event::Joined {
                    conn,
                    role: hello.role,
                    index: hello.client,
                    clients: hello.clients,
                    out: out.clone(),
                });
            }
            (FrameType::Request, Some(_)) => {
                let Some(snap) = decode_payload::<ReqSnap>(&frame.payload) else {
                    // Valid envelope, undecodable request: no request id to
                    // answer, so this is unattributable — drop.
                    drop_conn(
                        conn,
                        events,
                        out,
                        close_code::MALFORMED,
                        "bad request".into(),
                    );
                    return;
                };
                let mut req = DecisionRequest::from(snap);
                req.ctx = frame.ctx;
                let _ = events.send(Event::Request { conn, req });
            }
            (FrameType::TickDone, Some(Role::Workload)) => {
                let Some(tick) = decode_payload::<TickPayload>(&frame.payload) else {
                    drop_conn(
                        conn,
                        events,
                        out,
                        close_code::MALFORMED,
                        "bad tickdone".into(),
                    );
                    return;
                };
                let _ = events.send(Event::TickDone {
                    conn,
                    tick: tick.tick,
                });
            }
            (FrameType::Ping, Some(_)) => {
                let _ = out.send(Outbound::Frame(Frame::new(FrameType::Pong, Vec::new())));
            }
            (FrameType::Bye, _) => {
                if role.is_some() {
                    let _ = events.send(Event::Left { conn });
                }
                let _ = out.send(Outbound::Quiet);
                return;
            }
            (ty, _) => {
                drop_conn(
                    conn,
                    events,
                    out,
                    close_code::PROTOCOL,
                    format!("unexpected {ty:?} frame"),
                );
                return;
            }
        }
    }
}

/// Tear down a connection fail-closed: best-effort `Error` frame to the
/// peer, `Dropped` event to the tick loop (which audits it).
fn drop_conn(conn: u64, events: &Sender<Event>, out: &Sender<Outbound>, code: u16, detail: String) {
    let _ = out.send(Outbound::Close(code, detail.clone()));
    let _ = events.send(Event::Dropped { conn, code, detail });
}
