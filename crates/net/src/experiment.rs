//! Experiment E17: the TCP path must be invisible in the ledger.
//!
//! For a fixed seeded workload, the decision stream and the sealed
//! segmented-ledger bytes produced by driving the service over TCP — N
//! concurrent workload clients, each submitting its partition, with a
//! pack of chaos clients throwing garbage at the same socket — must be
//! **identical** to the in-process path, modulo within-tick arrival order
//! (which the server's deterministic sort and the admission lanes' drain
//! resolve). Malformed, slow, and disconnecting clients must never crash
//! the server, never reach a guard stack, and never produce an unaudited
//! rejection.
//!
//! Each cell: one golden in-process run ([`run_to_completion`]) and one
//! TCP run over a loopback listener with `clients` workload drivers in
//! their own threads (the CI smoke repeats this with real separate
//! processes via the `serve-net` CLI). With chaos enabled, every
//! [`ChaosKind`] runs one scripted connection concurrently with the
//! workload. A separate single-client probe runs traced and asserts the
//! causal chain spans client → wire → service → wire → client.

use std::io;
use std::net::TcpListener;
use std::rc::Rc;
use std::thread;
use std::time::{Duration, Instant};

use apdm_ledger::RotationPolicy;
use apdm_serve::{
    run_to_completion, standard_stacks, PolicyDecisionService, ServeConfig, WorkloadGen,
    WorkloadOracle, WorkloadSpec,
};
use apdm_telemetry::{self as telemetry, trace_id, RingCollector, TraceContext, TraceSampler};
use serde::{Deserialize, Serialize};

use crate::client::{run_chaos_client, run_workload_client, ChaosKind, ChaosReport, ClientReport};
use crate::server::{serve, NetServerConfig, ServeOutcome};
use crate::wire::DecisionSnap;

/// Sweep configuration for experiment E17.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E17Config {
    /// Master seed shared by the workload and both serving paths.
    pub seed: u64,
    /// Offered load (requests per tick).
    pub per_tick: usize,
    /// Ticks during which the generator offers requests.
    pub arrival_ticks: u64,
    /// Device population.
    pub devices: u64,
    /// Tenants multiplexed onto the service.
    pub tenants: u32,
    /// Shards (= guard stacks) per service instance.
    pub shards: usize,
    /// Zipf exponent of the device draw.
    pub zipf: f64,
    /// Rotation budget (records per segment) of the segmented ledger.
    pub budget: usize,
    /// Sealed segments retained by rotation (0 = keep everything).
    pub keep_sealed: usize,
    /// Client counts to sweep: each cell drives the same workload split
    /// across this many concurrent connections.
    pub clients: Vec<u32>,
    /// Run the chaos pack (one connection per [`ChaosKind`]) alongside
    /// every cell's workload.
    pub chaos: bool,
    /// Watchdog budget in ticks per run.
    pub max_ticks: u64,
}

impl Default for E17Config {
    fn default() -> Self {
        E17Config {
            seed: 42,
            per_tick: 6,
            arrival_ticks: 48,
            devices: 48,
            tenants: 4,
            shards: 4,
            zipf: 0.6,
            budget: 48,
            keep_sealed: 3,
            clients: vec![1, 2, 4],
            chaos: true,
            max_ticks: 4_000,
        }
    }
}

impl E17Config {
    /// A fast configuration for CI smoke runs.
    pub fn smoke() -> Self {
        E17Config {
            arrival_ticks: 16,
            clients: vec![2],
            ..E17Config::default()
        }
    }

    /// The workload both paths replay.
    pub fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            seed: self.seed,
            per_tick: self.per_tick,
            arrival_ticks: self.arrival_ticks,
            devices: self.devices,
            tenants: self.tenants,
            zipf: self.zipf,
            ..WorkloadSpec::default()
        }
    }

    /// The service configuration both paths run.
    pub fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            seed: self.seed,
            threads: 1,
            shards: self.shards,
            cache: true,
            backpressure: true,
            rotation: Some(RotationPolicy {
                max_records: self.budget,
                max_bytes: 0,
                keep_sealed: self.keep_sealed,
            }),
            ..ServeConfig::default()
        }
    }

    /// Ledger run name shared by both paths (byte-identity requires it).
    pub fn run_name(&self) -> String {
        format!("e17/b{}", self.budget)
    }

    /// The network-facing run parameters for one cell.
    pub fn net_config(&self, clients: u32) -> NetServerConfig {
        NetServerConfig {
            clients,
            arrival_ticks: self.arrival_ticks,
            max_ticks: self.max_ticks,
            seed: self.seed,
            barrier_timeout: Duration::from_secs(30),
            ..NetServerConfig::default()
        }
    }
}

/// Measurements of one E17 cell (one client count).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E17CellReport {
    /// Concurrent workload connections driving the cell.
    pub clients: u32,
    /// Whether the chaos pack ran alongside.
    pub chaos: bool,
    /// Requests offered by the generator.
    pub offered: u64,
    /// Requests evaluated by a guard stack.
    pub decided: u64,
    /// Requests refused by admission (all reasons).
    pub shed: u64,
    /// Decisions delivered back across connections (must equal `offered`).
    pub returned: u64,
    /// Sealed segmented-ledger bytes identical to the in-process run.
    pub ledger_identical: bool,
    /// Decision stream (keyed by request id) identical to the in-process
    /// run.
    pub decisions_identical: bool,
    /// Segments in the sealed ledger.
    pub segments: u64,
    /// Head digest of the final segment.
    pub final_head: u64,
    /// Tick at which the ledger sealed.
    pub final_tick: u64,
    /// Attributable bad requests answered with fail-closed denies.
    pub rejects: u64,
    /// Connections dropped for unattributable garbage.
    pub drops: u64,
    /// Records in the boundary audit ledger.
    pub audit_records: u64,
    /// The audit ledger's hash chain and seal verified.
    pub audit_verified: bool,
    /// Rejections (denies + drops) missing an audit record — must be 0.
    pub unaudited: u64,
    /// Decisions that could not be delivered (peer gone) — 0 without
    /// chaos-induced departures of workload clients, i.e. always here.
    pub undelivered: u64,
    /// Wall-clock for the cell. Not part of the determinism contract.
    pub wall_ns: u64,
}

/// The full E17 report (serialized to `BENCH_e17_net.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E17Report {
    /// The sweep configuration.
    pub config: E17Config,
    /// One report per client count, in sweep order.
    pub cells: Vec<E17CellReport>,
    /// The traced probe proved the causal chain spans
    /// client → wire → service → wire → client.
    pub trace_spans_wire: bool,
    /// Wall-clock for the whole sweep. Not deterministic.
    pub wall_ns: u64,
}

impl E17Report {
    /// A copy with every wall-clock field zeroed: two sweeps over the same
    /// config compare equal under this projection.
    pub fn normalized(&self) -> E17Report {
        let mut report = self.clone();
        report.wall_ns = 0;
        for cell in &mut report.cells {
            cell.wall_ns = 0;
        }
        report
    }

    /// Every acceptance gate of the experiment, as one predicate.
    pub fn holds(&self) -> bool {
        self.trace_spans_wire
            && !self.cells.is_empty()
            && self.cells.iter().all(|c| {
                c.ledger_identical
                    && c.decisions_identical
                    && c.returned == c.offered
                    && c.unaudited == 0
                    && c.undelivered == 0
                    && c.audit_verified
            })
    }
}

/// The golden in-process run every cell is compared against.
struct Golden {
    decisions: Vec<DecisionSnap>,
    segments: Vec<(u64, String)>,
    offered: u64,
    decided: u64,
    shed: u64,
}

fn golden_run(cfg: &E17Config) -> Golden {
    let mut svc = PolicyDecisionService::new(
        cfg.serve_config(),
        standard_stacks(cfg.shards, true),
        WorkloadOracle,
        &cfg.run_name(),
    );
    let mut gen = WorkloadGen::new(cfg.spec());
    let (decisions, final_tick) = run_to_completion(
        &mut svc,
        &mut gen,
        1,
        cfg.arrival_ticks,
        cfg.max_ticks,
        |_, _| {},
    );
    let offered = gen.total_offered();
    let (ledger, stats) = svc.finish_segmented(final_tick);
    let mut snaps: Vec<DecisionSnap> = decisions.iter().map(DecisionSnap::from).collect();
    snaps.sort_by_key(|d| d.request_id);
    Golden {
        decisions: snaps,
        segments: ledger.to_jsonl_segments(),
        offered,
        decided: stats.decided,
        shed: stats.shed_total(),
    }
}

/// The sealed segmented-ledger bytes of the in-process golden run — what
/// the `serve-net golden` CLI writes and the CI smoke `cmp`s the TCP
/// server's output against.
pub fn golden_segments(cfg: &E17Config) -> Vec<(u64, String)> {
    golden_run(cfg).segments
}

/// Drive one TCP run: a loopback server plus `clients` workload threads
/// (and the chaos pack when enabled).
fn net_run(
    cfg: &E17Config,
    clients: u32,
    chaos: bool,
) -> io::Result<(ServeOutcome, Vec<ClientReport>, Vec<ChaosReport>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let server_cfg = cfg.clone();
    let net_cfg = cfg.net_config(clients);
    let server = thread::spawn(move || -> io::Result<ServeOutcome> {
        let svc = PolicyDecisionService::new(
            server_cfg.serve_config(),
            standard_stacks(server_cfg.shards, true),
            WorkloadOracle,
            &server_cfg.run_name(),
        );
        serve(listener, svc, net_cfg)
    });

    let mut workers = Vec::new();
    for index in 0..clients {
        let addr = addr.clone();
        let spec = cfg.spec();
        workers.push(thread::spawn(move || {
            run_workload_client(&addr, spec, index, clients, None, Duration::from_secs(120))
        }));
    }
    let mut chaos_threads = Vec::new();
    if chaos {
        for kind in ChaosKind::all() {
            let addr = addr.clone();
            chaos_threads.push(thread::spawn(move || run_chaos_client(&addr, kind)));
        }
    }

    let mut reports = Vec::new();
    for w in workers {
        reports.push(
            w.join()
                .map_err(|_| io::Error::other("client panicked"))??,
        );
    }
    let mut chaos_reports = Vec::new();
    for c in chaos_threads {
        chaos_reports.push(c.join().map_err(|_| io::Error::other("chaos panicked"))??);
    }
    let outcome = server
        .join()
        .map_err(|_| io::Error::other("server panicked"))??;
    Ok((outcome, reports, chaos_reports))
}

/// Run one cell and compare it against the golden run.
fn run_cell(cfg: &E17Config, golden: &Golden, clients: u32) -> io::Result<E17CellReport> {
    let started = Instant::now();
    let (outcome, reports, chaos_reports) = net_run(cfg, clients, cfg.chaos)?;

    let mut snaps: Vec<DecisionSnap> = reports
        .iter()
        .flat_map(|r| r.decisions.iter().map(DecisionSnap::from))
        .collect();
    snaps.sort_by_key(|d| d.request_id);
    let returned: u64 = reports.iter().map(|r| r.sent).sum();

    // Every chaos rejection (deny or drop) must have an audit record; the
    // audit ledger also notes joins/departures, so count the rejection
    // records specifically.
    let audited_rejections = outcome
        .audit
        .records()
        .iter()
        .filter(|r| match &r.event {
            apdm_ledger::RunEvent::Audit(entry) => {
                entry.detail.starts_with("fail-closed deny") || entry.detail.starts_with("drop ")
            }
            _ => false,
        })
        .count() as u64;
    let chaos_denies: u64 = chaos_reports.iter().map(|c| c.denies).sum();
    let _ = chaos_denies; // denies also appear in `outcome.rejects`

    Ok(E17CellReport {
        clients,
        chaos: cfg.chaos,
        offered: golden.offered,
        decided: golden.decided,
        shed: golden.shed,
        returned,
        ledger_identical: outcome.ledger.to_jsonl_segments() == golden.segments,
        decisions_identical: snaps == golden.decisions,
        segments: outcome.ledger.segments().len() as u64,
        final_head: outcome.ledger.head_digest(),
        final_tick: outcome.final_tick,
        rejects: outcome.rejects,
        drops: outcome.drops,
        audit_records: outcome.audit.len() as u64,
        audit_verified: outcome.audit.verify().is_ok(),
        unaudited: (outcome.rejects + outcome.drops).saturating_sub(audited_rejections),
        undelivered: outcome.decisions_dropped,
        wall_ns: started.elapsed().as_nanos() as u64,
    })
}

/// Run the traced probe: one client, sampling everything, collecting the
/// client-side trace. Proves the context survives both wire crossings:
/// the decision's context has the request's trace id but a span deeper
/// than (and causally downstream of) the client's root.
fn traced_probe(cfg: &E17Config) -> io::Result<bool> {
    let probe = E17Config {
        arrival_ticks: 4,
        chaos: false,
        clients: vec![1],
        ..cfg.clone()
    };
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let server_cfg = probe.clone();
    let net_cfg = probe.net_config(1);
    let server = thread::spawn(move || -> io::Result<ServeOutcome> {
        let svc = PolicyDecisionService::new(
            server_cfg.serve_config(),
            standard_stacks(server_cfg.shards, true),
            WorkloadOracle,
            &server_cfg.run_name(),
        );
        serve(listener, svc, net_cfg)
    });

    let spec = probe.spec();
    let seed = spec.seed;
    let collector = Rc::new(RingCollector::new(4096));
    let guard = telemetry::install(collector.clone());
    let report = run_workload_client(
        &addr,
        spec,
        0,
        1,
        Some(TraceSampler::always()),
        Duration::from_secs(60),
    )?;
    drop(guard);
    server
        .join()
        .map_err(|_| io::Error::other("server panicked"))??;

    // The decision context must belong to the trace minted for its
    // request and sit strictly below the client's root span.
    let chain_ok = !report.decisions.is_empty()
        && report.decisions.iter().all(|d| {
            let root = TraceContext::root(trace_id(seed, d.request_id), true);
            d.ctx.is_some_and(|ctx| {
                ctx.trace_id == root.trace_id && ctx.span_id != root.span_id && ctx.parent_id != 0
            })
        });
    // And the client-side export must hold both wire endpoints of a chain:
    // a `client.send` root and a `client.recv` in the same trace.
    let records = collector.records();
    let sends = records
        .iter()
        .filter(|r| r.name.as_ref() == "client.send")
        .count();
    let recvs = records
        .iter()
        .filter(|r| r.name.as_ref() == "client.recv")
        .count();
    Ok(chain_ok && sends as u64 == report.sent && recvs as u64 == report.sent)
}

/// Run the full E17 sweep.
pub fn run_e17(cfg: &E17Config) -> io::Result<E17Report> {
    let started = Instant::now();
    let golden = golden_run(cfg);
    let mut cells = Vec::new();
    for &clients in &cfg.clients {
        cells.push(run_cell(cfg, &golden, clients)?);
    }
    let trace_spans_wire = traced_probe(cfg)?;
    Ok(E17Report {
        config: cfg.clone(),
        cells,
        trace_spans_wire,
        wall_ns: started.elapsed().as_nanos() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cell_is_byte_identical_and_survives_chaos() {
        let cfg = E17Config::smoke();
        let report = run_e17(&cfg).expect("e17 runs");
        assert!(report.holds(), "acceptance failed: {report:?}");
        let cell = &report.cells[0];
        assert!(cell.ledger_identical, "ledger diverged");
        assert!(cell.decisions_identical, "decision stream diverged");
        assert_eq!(cell.returned, cell.offered);
        assert_eq!(cell.unaudited, 0, "unaudited rejection");
        // The chaos pack really did get rejected (and audited).
        assert!(cell.rejects >= 1, "unauthorized probe was not denied");
        assert!(cell.drops >= 4, "garbage connections were not dropped");
        assert!(report.trace_spans_wire, "trace chain broken across wire");
    }
}
