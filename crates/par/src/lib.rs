//! Deterministic parallel execution primitives for the apdm workspace.
//!
//! Everything here is plain `std`: scoped threads, a mutex-guarded work
//! queue, and an mpsc channel. The two entry points encode the two shapes
//! of parallelism the simulator needs:
//!
//! - [`run_sharded`] — split a mutable slice into contiguous shards and run
//!   one worker per shard (`Fleet::step`'s read-only decide phase; devices
//!   are already in stable `DeviceId` order, so contiguous shards preserve
//!   that order and shard results come back shard-ordered).
//! - [`par_map`] — map a function over owned items with dynamic scheduling
//!   but **order-preserving collection** (experiment fan-out: cells finish
//!   in any order, results are reassembled in input order).
//!
//! Determinism contract: neither function lets scheduling order leak into
//! results. Output position is fixed by input position, so callers that
//! reduce results sequentially observe the same stream regardless of thread
//! count. Workers must not touch shared mutable state beyond their own item
//! — the type signatures (`Send` items, `Sync` closures) enforce the easy
//! half; keeping closures pure of interior-mutable globals is the caller's
//! half of the contract.
//!
//! A worker panic is propagated to the caller (the scope re-raises it), so
//! a buggy closure fails loudly instead of producing a short result vector.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of hardware threads, falling back to 1 when unknown.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve a requested thread count: `0` means "auto".
///
/// Auto consults the `APDM_THREADS` environment variable first (so CI and
/// scripts can force a level without plumbing flags), then falls back to
/// [`hardware_threads`]. Any explicit non-zero request is honoured as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    match std::env::var("APDM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => hardware_threads(),
    }
}

/// Split `len` items into at most `shards` contiguous ranges of near-equal
/// size. Returns `(start, end)` pairs covering `0..len` exactly once, in
/// order. Empty when `len == 0`.
pub fn shard_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Run `f` over contiguous shards of `items` on up to `threads` scoped
/// threads. Returns one result per shard, in shard (= input) order.
///
/// With `threads <= 1` (or a single shard) the function runs inline on the
/// caller's thread — no pool, no channel — which is the "legacy sequential
/// path": bit-identical behaviour is guaranteed by construction because the
/// parallel path runs the same closure over the same shard ranges.
///
/// `f` receives `(shard_index, shard)` so callers can maintain per-shard
/// scratch state keyed by index.
pub fn run_sharded<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let bounds = shard_bounds(items.len(), threads.max(1));
    if bounds.len() <= 1 {
        return match items.is_empty() {
            true => Vec::new(),
            false => vec![f(0, items)],
        };
    }
    let mut shards: Vec<(usize, &mut [T])> = Vec::with_capacity(bounds.len());
    let mut rest = items;
    let mut consumed = 0;
    for (i, &(start, end)) in bounds.iter().enumerate() {
        let (head, tail) = rest.split_at_mut(end - start);
        debug_assert_eq!(consumed, start);
        consumed = end;
        shards.push((i, head));
        rest = tail;
    }
    let f = &f;
    let mut results: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|(i, shard)| scope.spawn(move || (i, f(i, shard))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Map `f` over `items` on up to `threads` scoped threads with dynamic
/// (work-stealing) scheduling, returning results **in input order**.
///
/// Items are handed out through a shared atomic cursor, so a slow item does
/// not hold up workers — only its own result slot. With `threads <= 1` the
/// map runs inline in input order.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let n = items.len();
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|x| std::sync::Mutex::new(Some(x)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let f = &f;
    let slots = &slots;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work item taken twice");
                // A send can only fail if the receiver is gone, which means
                // the caller's scope already unwound; propagate by panicking.
                tx.send((i, f(i, item))).expect("result receiver dropped");
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            debug_assert!(out[i].is_none(), "duplicate result for slot {i}");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("missing result slot"))
            .collect()
    })
}

/// A tick budget for one unit of fanned-out work (an experiment cell).
///
/// Retry/backoff loops over a lossy network can livelock — a cell waiting
/// for a quorum that can never assemble would otherwise spin its drain loop
/// forever and hang the whole sweep. The worker charges the watchdog for
/// every simulated tick; when the budget runs out, [`Watchdog::charge`]
/// returns a [`WatchdogTrip`] and the cell fails loudly with a diagnostic
/// instead of stalling its `par_map` slot.
///
/// The budget is counted in simulated ticks, not wall-clock time, so trips
/// are bit-deterministic: the same seed trips at the same tick on every
/// thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    budget: u64,
    spent: u64,
}

/// Error returned when a [`Watchdog`]'s tick budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogTrip {
    /// The budget that was exhausted.
    pub budget: u64,
}

impl std::fmt::Display for WatchdogTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "watchdog tripped: tick budget of {} exhausted (livelocked cell?)",
            self.budget
        )
    }
}

impl std::error::Error for WatchdogTrip {}

impl Watchdog {
    /// A watchdog allowing `budget` ticks before tripping.
    pub fn new(budget: u64) -> Self {
        Watchdog { budget, spent: 0 }
    }

    /// Charge `ticks` against the budget. Returns `Err(WatchdogTrip)` once
    /// the cumulative charge exceeds the budget; further charges keep
    /// failing (the dog does not re-arm).
    pub fn charge(&mut self, ticks: u64) -> Result<(), WatchdogTrip> {
        self.spent = self.spent.saturating_add(ticks);
        if self.spent > self.budget {
            return Err(WatchdogTrip {
                budget: self.budget,
            });
        }
        Ok(())
    }

    /// Ticks charged so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Ticks left before the next charge trips.
    pub fn remaining(&self) -> u64 {
        self.budget.saturating_sub(self.spent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_cover_range_exactly() {
        for len in 0..40 {
            for shards in 1..10 {
                let b = shard_bounds(len, shards);
                let mut expect = 0;
                for &(s, e) in &b {
                    assert_eq!(s, expect);
                    assert!(e > s, "empty shard");
                    expect = e;
                }
                assert_eq!(expect, len);
                if len > 0 {
                    assert!(b.len() <= shards.max(1));
                    let sizes: Vec<_> = b.iter().map(|&(s, e)| e - s).collect();
                    let min = sizes.iter().min().unwrap();
                    let max = sizes.iter().max().unwrap();
                    assert!(max - min <= 1, "unbalanced shards {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn run_sharded_matches_inline_for_all_thread_counts() {
        let baseline: Vec<u64> = {
            let mut items: Vec<u64> = (0..97).collect();
            run_sharded(1, &mut items, |_, shard| {
                shard.iter_mut().for_each(|x| *x *= 3);
                shard.iter().sum::<u64>()
            })
        };
        for threads in 2..=8 {
            let mut items: Vec<u64> = (0..97).collect();
            let got = run_sharded(threads, &mut items, |_, shard| {
                shard.iter_mut().for_each(|x| *x *= 3);
                shard.iter().sum::<u64>()
            });
            // Shard partitioning differs, but totals and mutations must not.
            assert_eq!(
                got.iter().sum::<u64>(),
                baseline.iter().sum::<u64>(),
                "threads={threads}"
            );
            assert_eq!(items, (0..97).map(|x| x * 3).collect::<Vec<u64>>());
            assert_eq!(got.len(), shard_bounds(97, threads).len());
        }
    }

    #[test]
    fn run_sharded_handles_empty_and_tiny_inputs() {
        let mut empty: Vec<u32> = Vec::new();
        let r = run_sharded(4, &mut empty, |_, s| s.len());
        assert!(r.is_empty());
        let mut one = vec![7u32];
        let r = run_sharded(4, &mut one, |i, s| (i, s[0]));
        assert_eq!(r, vec![(0, 7)]);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let seq = par_map(1, items.clone(), |i, x| (i, x * x));
        for threads in [2, 3, 4, 8] {
            let par = par_map(threads, items.clone(), |i, x| (i, x * x));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = par_map(4, (0..33).collect::<Vec<u64>>(), |_, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 33);
        assert_eq!(out, (1..=33).collect::<Vec<u64>>());
    }

    #[test]
    fn resolve_threads_honours_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn watchdog_trips_exactly_past_budget_and_stays_tripped() {
        let mut dog = Watchdog::new(10);
        assert!(dog.charge(4).is_ok());
        assert!(dog.charge(6).is_ok());
        assert_eq!(dog.spent(), 10);
        assert_eq!(dog.remaining(), 0);
        let trip = dog.charge(1).unwrap_err();
        assert_eq!(trip.budget, 10);
        assert!(trip.to_string().contains("tick budget of 10"));
        assert!(dog.charge(0).is_err(), "a tripped dog does not re-arm");
    }
}
