//! Deterministic parallel execution primitives for the apdm workspace.
//!
//! Everything here is plain `std`: scoped threads, a mutex-guarded work
//! queue, and an mpsc channel. The two entry points encode the two shapes
//! of parallelism the simulator needs:
//!
//! - [`run_sharded`] — split a mutable slice into contiguous shards and run
//!   one worker per shard (`Fleet::step`'s read-only decide phase; devices
//!   are already in stable `DeviceId` order, so contiguous shards preserve
//!   that order and shard results come back shard-ordered).
//! - [`par_map`] — map a function over owned items with dynamic scheduling
//!   but **order-preserving collection** (experiment fan-out: cells finish
//!   in any order, results are reassembled in input order).
//! - [`run_sharded_balanced`] — skew-aware variant of [`run_sharded`]:
//!   items are split into cost-weighted chunks and claimed in a
//!   deterministic steal order that is a pure function of
//!   `(seed, tick, chunk id)` (see [`StealPlan`]). Results come back in
//!   chunk (= input) order no matter which worker ran which chunk, and a
//!   deterministic *virtual* schedule ([`VirtualSchedule`]) reports
//!   makespan/steal counts in cost units so callers can reason about
//!   balance without ever reading the wall clock.
//!
//! Determinism contract: neither function lets scheduling order leak into
//! results. Output position is fixed by input position, so callers that
//! reduce results sequentially observe the same stream regardless of thread
//! count. Workers must not touch shared mutable state beyond their own item
//! — the type signatures (`Send` items, `Sync` closures) enforce the easy
//! half; keeping closures pure of interior-mutable globals is the caller's
//! half of the contract.
//!
//! A worker panic is propagated to the caller (the scope re-raises it), so
//! a buggy closure fails loudly instead of producing a short result vector.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of hardware threads, falling back to 1 when unknown.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve a requested thread count: `0` means "auto".
///
/// Auto consults the `APDM_THREADS` environment variable first (so CI and
/// scripts can force a level without plumbing flags), then falls back to
/// [`hardware_threads`]. Any explicit non-zero request is honoured as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    match std::env::var("APDM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => hardware_threads(),
    }
}

/// Split `len` items into at most `shards` contiguous ranges of near-equal
/// size. Returns `(start, end)` pairs covering `0..len` exactly once, in
/// order. Empty when `len == 0`.
pub fn shard_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Run `f` over contiguous shards of `items` on up to `threads` scoped
/// threads. Returns one result per shard, in shard (= input) order.
///
/// With `threads <= 1` (or a single shard) the function runs inline on the
/// caller's thread — no pool, no channel — which is the "legacy sequential
/// path": bit-identical behaviour is guaranteed by construction because the
/// parallel path runs the same closure over the same shard ranges.
///
/// `f` receives `(shard_index, shard)` so callers can maintain per-shard
/// scratch state keyed by index.
pub fn run_sharded<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let bounds = shard_bounds(items.len(), threads.max(1));
    if bounds.len() <= 1 {
        return match items.is_empty() {
            true => Vec::new(),
            false => vec![f(0, items)],
        };
    }
    let mut shards: Vec<(usize, &mut [T])> = Vec::with_capacity(bounds.len());
    let mut rest = items;
    let mut consumed = 0;
    for (i, &(start, end)) in bounds.iter().enumerate() {
        let (head, tail) = rest.split_at_mut(end - start);
        debug_assert_eq!(consumed, start);
        consumed = end;
        shards.push((i, head));
        rest = tail;
    }
    let f = &f;
    let mut results: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|(i, shard)| scope.spawn(move || (i, f(i, shard))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Map `f` over `items` on up to `threads` scoped threads with dynamic
/// (work-stealing) scheduling, returning results **in input order**.
///
/// Items are handed out through a shared atomic cursor, so a slow item does
/// not hold up workers — only its own result slot. With `threads <= 1` the
/// map runs inline in input order.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let n = items.len();
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|x| std::sync::Mutex::new(Some(x)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let f = &f;
    let slots = &slots;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work item taken twice");
                // A send can only fail if the receiver is gone, which means
                // the caller's scope already unwound; propagate by panicking.
                tx.send((i, f(i, item))).expect("result receiver dropped");
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            debug_assert!(out[i].is_none(), "duplicate result for slot {i}");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("missing result slot"))
            .collect()
    })
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit bijective mixer.
///
/// Used to derive steal-order tie-breaks from `(seed, tick, chunk id)` so
/// the order is well-scrambled yet a pure function of its inputs.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Parameters that pin down a deterministic steal order.
///
/// The order in which chunks are claimed is a pure function of
/// `(seed, tick, chunk id, chunk cost)` — never of thread timing — so two
/// runs with the same plan over the same items claim chunks in the same
/// order regardless of thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealPlan {
    /// Run-level seed; mixed into every tie-break.
    pub seed: u64,
    /// Tick (or batch) counter; varies the order between ticks so no chunk
    /// is systematically favoured across a run.
    pub tick: u64,
    /// Target chunks per worker thread. More chunks = finer balancing at
    /// slightly more claim overhead. Clamped to at least 1.
    pub chunks_per_thread: usize,
}

impl StealPlan {
    /// A plan with the default granularity of 4 chunks per thread.
    pub fn new(seed: u64, tick: u64) -> Self {
        StealPlan {
            seed,
            tick,
            chunks_per_thread: 4,
        }
    }

    /// Deterministic tie-break key for `chunk`.
    fn key(&self, chunk: usize) -> u64 {
        mix64(
            self.seed
                ^ self.tick.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (chunk as u64).wrapping_mul(0xd134_2543_de82_ef95),
        )
    }
}

/// Split `costs.len()` items into at most `target` contiguous chunks of
/// near-equal **total cost** (not count). Boundaries fall where cumulative
/// cost crosses proportional thresholds, so one very hot item gets a chunk
/// to itself while cold items coalesce. Covers `0..len` exactly; every
/// chunk is non-empty. Zero total cost degrades to [`shard_bounds`].
pub fn weighted_chunks(costs: &[u64], target: usize) -> Vec<(usize, usize)> {
    let len = costs.len();
    if len == 0 {
        return Vec::new();
    }
    let target = target.clamp(1, len);
    let total: u64 = costs.iter().sum();
    if total == 0 {
        return shard_bounds(len, target);
    }
    // Greedy fill to a per-chunk budget of ceil(total/target): a chunk is
    // closed *before* an item that would overshoot, so a single hot item
    // lands in a chunk of its own instead of dragging its cold prefix
    // along. The last chunk absorbs any remainder, keeping the count
    // within `target`.
    let per = total.div_ceil(target as u64);
    let mut out = Vec::with_capacity(target);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        if i > start && out.len() + 1 < target && acc.saturating_add(c) > per {
            out.push((start, i));
            start = i;
            acc = 0;
        }
        acc = acc.saturating_add(c);
    }
    out.push((start, len));
    out
}

/// The deterministic order in which chunks are claimed: heaviest first
/// (longest-processing-time list scheduling), ties broken by a seeded hash
/// of the chunk id, then by the id itself. A pure function of the plan and
/// the chunk costs.
pub fn steal_order(plan: &StealPlan, chunk_costs: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..chunk_costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(chunk_costs[i]), plan.key(i), i));
    order
}

/// One chunk's slot in a [`VirtualSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSchedule {
    /// Item range `[start, end)` this chunk covers.
    pub range: (usize, usize),
    /// Total estimated cost of the chunk, in caller-defined cost units.
    pub cost: u64,
    /// Virtual worker the list schedule assigns the chunk to.
    pub worker: usize,
    /// Virtual start time (cost units since the tick began).
    pub start: u64,
    /// Virtual finish time (`start + cost`).
    pub finish: u64,
    /// Whether the assigned worker differs from the chunk's *home* worker
    /// under a static contiguous partition — i.e. the chunk was stolen.
    pub stolen: bool,
}

/// A deterministic simulated execution of a set of chunks.
///
/// This is a *virtual* schedule: it models `threads` workers, each picking
/// up the next chunk in claim order the moment it goes idle (ties broken by
/// lowest worker index). It depends only on `(threads, order, costs)` — not
/// on actual thread timing — so makespan, per-chunk start times, and steal
/// counts are bit-reproducible and safe to put in reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualSchedule {
    /// Per-chunk assignments, indexed by chunk id (input order).
    pub chunks: Vec<ChunkSchedule>,
    /// Virtual completion time of the slowest worker, in cost units.
    pub makespan: u64,
    /// Number of chunks whose assigned worker differs from their home
    /// worker under a static contiguous partition.
    pub steals: u64,
}

fn home_workers(chunks: usize, threads: usize) -> Vec<usize> {
    let mut home = vec![0usize; chunks];
    for (w, &(s, e)) in shard_bounds(chunks, threads).iter().enumerate() {
        for h in home.iter_mut().take(e).skip(s) {
            *h = w;
        }
    }
    home
}

/// Simulate claiming `ranges`/`costs` in `order` on `threads` virtual
/// workers. See [`VirtualSchedule`] for the determinism contract.
pub fn simulate_schedule(
    threads: usize,
    order: &[usize],
    ranges: &[(usize, usize)],
    costs: &[u64],
) -> VirtualSchedule {
    let n = costs.len();
    let threads = threads.clamp(1, n.max(1));
    let home = home_workers(n, threads);
    let mut free = vec![0u64; threads];
    let mut chunks: Vec<ChunkSchedule> = ranges
        .iter()
        .zip(costs)
        .map(|(&range, &cost)| ChunkSchedule {
            range,
            cost,
            worker: 0,
            start: 0,
            finish: 0,
            stolen: false,
        })
        .collect();
    let mut steals = 0u64;
    for &id in order {
        let w = (0..threads).min_by_key(|&w| (free[w], w)).unwrap_or(0);
        let slot = &mut chunks[id];
        slot.worker = w;
        slot.start = free[w];
        slot.finish = free[w].saturating_add(slot.cost);
        slot.stolen = w != home[id];
        steals += u64::from(slot.stolen);
        free[w] = slot.finish;
    }
    VirtualSchedule {
        makespan: free.into_iter().max().unwrap_or(0),
        chunks,
        steals,
    }
}

/// The virtual schedule of the *static* strategy: each worker owns a
/// contiguous block of chunks and runs them in index order, no stealing.
/// This is what [`run_sharded`] does, expressed in the same cost units so
/// static and balanced makespans are directly comparable.
pub fn static_schedule(
    threads: usize,
    ranges: &[(usize, usize)],
    costs: &[u64],
) -> VirtualSchedule {
    let n = costs.len();
    let threads = threads.clamp(1, n.max(1));
    let home = home_workers(n, threads);
    let mut free = vec![0u64; threads];
    let chunks: Vec<ChunkSchedule> = ranges
        .iter()
        .zip(costs)
        .enumerate()
        .map(|(id, (&range, &cost))| {
            let w = home[id];
            let start = free[w];
            free[w] = start.saturating_add(cost);
            ChunkSchedule {
                range,
                cost,
                worker: w,
                start,
                finish: free[w],
                stolen: false,
            }
        })
        .collect();
    VirtualSchedule {
        makespan: free.into_iter().max().unwrap_or(0),
        chunks,
        steals: 0,
    }
}

/// Result of a [`run_sharded_balanced`] call.
pub struct BalancedRun<R> {
    /// One result per chunk, in chunk (= input) order.
    pub results: Vec<R>,
    /// The chunk ranges that were executed (from [`weighted_chunks`]).
    pub chunks: Vec<(usize, usize)>,
    /// Deterministic virtual schedule of this tick (makespan, per-chunk
    /// start times, virtual steal count). Safe to report.
    pub schedule: VirtualSchedule,
    /// Chunks that actually ran on a thread other than the virtual
    /// schedule predicted. Depends on real thread timing — telemetry only,
    /// never put this in deterministic output.
    pub actual_steals: u64,
}

/// Skew-aware [`run_sharded`]: split `items` into cost-weighted chunks
/// (per-item cost from `cost`), claim them across `threads` workers in the
/// deterministic steal order of `plan`, and return per-chunk results in
/// chunk order.
///
/// Determinism contract: the chunk partition, the claim order, the virtual
/// schedule, and the position of every result are pure functions of
/// `(plan, items, cost, threads)`. Which *OS thread* runs a chunk is not —
/// only [`BalancedRun::actual_steals`] observes that, and it must stay out
/// of deterministic output. With `threads <= 1` chunks run inline on the
/// caller's thread, still in steal order, so sequential and parallel runs
/// execute identical call sequences per chunk.
pub fn run_sharded_balanced<T, R, C, F>(
    threads: usize,
    plan: StealPlan,
    items: &mut [T],
    cost: C,
    f: F,
) -> BalancedRun<R>
where
    T: Send,
    R: Send,
    C: Fn(&T) -> u64,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let item_costs: Vec<u64> = items.iter().map(&cost).collect();
    let target = threads.max(1).saturating_mul(plan.chunks_per_thread.max(1));
    let chunks = weighted_chunks(&item_costs, target);
    let chunk_costs: Vec<u64> = chunks
        .iter()
        .map(|&(s, e)| item_costs[s..e].iter().sum())
        .collect();
    let order = steal_order(&plan, &chunk_costs);
    let threads = threads.max(1).min(chunks.len().max(1));
    let schedule = simulate_schedule(threads, &order, &chunks, &chunk_costs);
    if chunks.is_empty() {
        return BalancedRun {
            results: Vec::new(),
            chunks,
            schedule,
            actual_steals: 0,
        };
    }
    if threads <= 1 {
        let mut slots: Vec<Option<&mut [T]>> = Vec::with_capacity(chunks.len());
        let mut rest = items;
        for &(s, e) in &chunks {
            let (head, tail) = rest.split_at_mut(e - s);
            slots.push(Some(head));
            rest = tail;
        }
        let mut results: Vec<Option<R>> = (0..chunks.len()).map(|_| None).collect();
        for &id in &order {
            let chunk = slots[id].take().expect("chunk executed twice");
            results[id] = Some(f(id, chunk));
        }
        return BalancedRun {
            results: results
                .into_iter()
                .map(|r| r.expect("missing chunk result"))
                .collect(),
            chunks,
            schedule,
            actual_steals: 0,
        };
    }
    let n = chunks.len();
    let mut slot_vec: Vec<std::sync::Mutex<Option<&mut [T]>>> = Vec::with_capacity(n);
    let mut rest = items;
    for &(s, e) in &chunks {
        let (head, tail) = rest.split_at_mut(e - s);
        slot_vec.push(std::sync::Mutex::new(Some(head)));
        rest = tail;
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, usize, R)>();
    let f = &f;
    let order = &order;
    let slots = &slot_vec;
    let cursor = &cursor;
    let (results, actual_steals) = std::thread::scope(|scope| {
        for worker in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let pos = cursor.fetch_add(1, Ordering::Relaxed);
                if pos >= n {
                    break;
                }
                let id = order[pos];
                let chunk = slots[id]
                    .lock()
                    .expect("chunk slot poisoned")
                    .take()
                    .expect("chunk executed twice");
                tx.send((id, worker, f(id, chunk)))
                    .expect("result receiver dropped");
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut actual_steals = 0u64;
        for (id, worker, r) in rx {
            debug_assert!(out[id].is_none(), "duplicate result for chunk {id}");
            actual_steals += u64::from(worker != schedule.chunks[id].worker);
            out[id] = Some(r);
        }
        let results: Vec<R> = out
            .into_iter()
            .map(|r| r.expect("missing chunk result"))
            .collect();
        (results, actual_steals)
    });
    BalancedRun {
        results,
        chunks,
        schedule,
        actual_steals,
    }
}

/// A tick budget for one unit of fanned-out work (an experiment cell).
///
/// Retry/backoff loops over a lossy network can livelock — a cell waiting
/// for a quorum that can never assemble would otherwise spin its drain loop
/// forever and hang the whole sweep. The worker charges the watchdog for
/// every simulated tick; when the budget runs out, [`Watchdog::charge`]
/// returns a [`WatchdogTrip`] and the cell fails loudly with a diagnostic
/// instead of stalling its `par_map` slot.
///
/// The budget is counted in simulated ticks, not wall-clock time, so trips
/// are bit-deterministic: the same seed trips at the same tick on every
/// thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    budget: u64,
    spent: u64,
}

/// Error returned when a [`Watchdog`]'s tick budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogTrip {
    /// The budget that was exhausted.
    pub budget: u64,
}

impl std::fmt::Display for WatchdogTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "watchdog tripped: tick budget of {} exhausted (livelocked cell?)",
            self.budget
        )
    }
}

impl std::error::Error for WatchdogTrip {}

impl Watchdog {
    /// A watchdog allowing `budget` ticks before tripping.
    pub fn new(budget: u64) -> Self {
        Watchdog { budget, spent: 0 }
    }

    /// Charge `ticks` against the budget. Returns `Err(WatchdogTrip)` once
    /// the cumulative charge exceeds the budget; further charges keep
    /// failing (the dog does not re-arm).
    pub fn charge(&mut self, ticks: u64) -> Result<(), WatchdogTrip> {
        self.spent = self.spent.saturating_add(ticks);
        if self.spent > self.budget {
            return Err(WatchdogTrip {
                budget: self.budget,
            });
        }
        Ok(())
    }

    /// Ticks charged so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Ticks left before the next charge trips.
    pub fn remaining(&self) -> u64 {
        self.budget.saturating_sub(self.spent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_cover_range_exactly() {
        for len in 0..40 {
            for shards in 1..10 {
                let b = shard_bounds(len, shards);
                let mut expect = 0;
                for &(s, e) in &b {
                    assert_eq!(s, expect);
                    assert!(e > s, "empty shard");
                    expect = e;
                }
                assert_eq!(expect, len);
                if len > 0 {
                    assert!(b.len() <= shards.max(1));
                    let sizes: Vec<_> = b.iter().map(|&(s, e)| e - s).collect();
                    let min = sizes.iter().min().unwrap();
                    let max = sizes.iter().max().unwrap();
                    assert!(max - min <= 1, "unbalanced shards {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn run_sharded_matches_inline_for_all_thread_counts() {
        let baseline: Vec<u64> = {
            let mut items: Vec<u64> = (0..97).collect();
            run_sharded(1, &mut items, |_, shard| {
                shard.iter_mut().for_each(|x| *x *= 3);
                shard.iter().sum::<u64>()
            })
        };
        for threads in 2..=8 {
            let mut items: Vec<u64> = (0..97).collect();
            let got = run_sharded(threads, &mut items, |_, shard| {
                shard.iter_mut().for_each(|x| *x *= 3);
                shard.iter().sum::<u64>()
            });
            // Shard partitioning differs, but totals and mutations must not.
            assert_eq!(
                got.iter().sum::<u64>(),
                baseline.iter().sum::<u64>(),
                "threads={threads}"
            );
            assert_eq!(items, (0..97).map(|x| x * 3).collect::<Vec<u64>>());
            assert_eq!(got.len(), shard_bounds(97, threads).len());
        }
    }

    #[test]
    fn run_sharded_handles_empty_and_tiny_inputs() {
        let mut empty: Vec<u32> = Vec::new();
        let r = run_sharded(4, &mut empty, |_, s| s.len());
        assert!(r.is_empty());
        let mut one = vec![7u32];
        let r = run_sharded(4, &mut one, |i, s| (i, s[0]));
        assert_eq!(r, vec![(0, 7)]);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let seq = par_map(1, items.clone(), |i, x| (i, x * x));
        for threads in [2, 3, 4, 8] {
            let par = par_map(threads, items.clone(), |i, x| (i, x * x));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = par_map(4, (0..33).collect::<Vec<u64>>(), |_, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 33);
        assert_eq!(out, (1..=33).collect::<Vec<u64>>());
    }

    #[test]
    fn resolve_threads_honours_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn weighted_chunks_cover_range_and_isolate_hot_items() {
        for len in 0..40usize {
            for target in 1..10usize {
                let costs: Vec<u64> = (0..len).map(|i| (i as u64 * 7 + 3) % 13).collect();
                let b = weighted_chunks(&costs, target);
                let mut expect = 0;
                for &(s, e) in &b {
                    assert_eq!(s, expect);
                    assert!(e > s, "empty chunk");
                    expect = e;
                }
                assert_eq!(expect, len);
                if len > 0 {
                    assert!(b.len() <= target.max(1));
                }
            }
        }
        // One dominant item gets a chunk to itself.
        let mut costs = vec![1u64; 16];
        costs[5] = 1000;
        let b = weighted_chunks(&costs, 4);
        assert!(
            b.contains(&(5, 6)),
            "hot item not isolated into its own chunk: {b:?}"
        );
    }

    #[test]
    fn steal_order_is_a_deterministic_lpt_permutation() {
        let plan = StealPlan::new(42, 7);
        let costs = [3u64, 9, 1, 9, 4, 0];
        let order = steal_order(&plan, &costs);
        let again = steal_order(&plan, &costs);
        assert_eq!(order, again, "steal order must be deterministic");
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..costs.len()).collect::<Vec<_>>());
        // Costs along the order are non-increasing (LPT).
        for pair in order.windows(2) {
            assert!(costs[pair[0]] >= costs[pair[1]], "not LPT: {order:?}");
        }
        // A different tick permutes ties differently at least sometimes.
        let flat = [5u64; 32];
        let t0 = steal_order(&StealPlan::new(42, 0), &flat);
        let t1 = steal_order(&StealPlan::new(42, 1), &flat);
        assert_ne!(t0, t1, "seeded tie-break should vary with tick");
    }

    #[test]
    fn simulated_balanced_schedule_beats_static_under_skew() {
        // One hot chunk at the end of the range: static puts it on the last
        // worker after that worker's other chunks; balanced starts it first.
        let ranges: Vec<(usize, usize)> = (0..8).map(|i| (i, i + 1)).collect();
        let mut costs = vec![10u64; 8];
        costs[6] = 200;
        let plan = StealPlan::new(1, 1);
        let order = steal_order(&plan, &costs);
        for threads in [2, 3, 4] {
            let bal = simulate_schedule(threads, &order, &ranges, &costs);
            let stat = static_schedule(threads, &ranges, &costs);
            assert!(
                bal.makespan <= stat.makespan,
                "threads={threads}: balanced {} > static {}",
                bal.makespan,
                stat.makespan
            );
            assert_eq!(bal.chunks[6].start, 0, "hot chunk must start first");
            assert_eq!(stat.steals, 0);
            // Every chunk is scheduled exactly once and finishes at
            // start + cost.
            for (id, c) in bal.chunks.iter().enumerate() {
                assert_eq!(c.finish, c.start + c.cost, "chunk {id}");
                assert!(c.worker < threads);
            }
        }
    }

    #[test]
    fn run_sharded_balanced_is_thread_invariant() {
        let plan = StealPlan::new(99, 3);
        let baseline: (Vec<u64>, Vec<u64>) = {
            let mut items: Vec<u64> = (0..97).collect();
            let run = run_sharded_balanced(
                1,
                plan,
                &mut items,
                |&x| x % 11 + 1,
                |_, chunk| {
                    chunk.iter_mut().for_each(|x| *x = x.wrapping_mul(3) + 1);
                    chunk.iter().sum::<u64>()
                },
            );
            assert_eq!(run.actual_steals, 0);
            (items, run.results)
        };
        for threads in [2, 3, 8] {
            let mut items: Vec<u64> = (0..97).collect();
            let run = run_sharded_balanced(
                threads,
                plan,
                &mut items,
                |&x| x % 11 + 1,
                |_, chunk| {
                    chunk.iter_mut().for_each(|x| *x = x.wrapping_mul(3) + 1);
                    chunk.iter().sum::<u64>()
                },
            );
            assert_eq!(items, baseline.0, "threads={threads}: mutations diverge");
            // Chunk partitions depend on the thread count, but the merged
            // per-item effect and the total must not.
            assert_eq!(
                run.results.iter().sum::<u64>(),
                baseline.1.iter().sum::<u64>(),
                "threads={threads}"
            );
            assert_eq!(run.results.len(), run.chunks.len());
            assert_eq!(run.schedule.chunks.len(), run.chunks.len());
        }
    }

    #[test]
    fn run_sharded_balanced_handles_empty_input() {
        let mut empty: Vec<u32> = Vec::new();
        let run = run_sharded_balanced(4, StealPlan::new(0, 0), &mut empty, |_| 1, |_, s| s.len());
        assert!(run.results.is_empty());
        assert!(run.chunks.is_empty());
        assert_eq!(run.schedule.makespan, 0);
    }

    #[test]
    fn watchdog_trips_exactly_past_budget_and_stays_tripped() {
        let mut dog = Watchdog::new(10);
        assert!(dog.charge(4).is_ok());
        assert!(dog.charge(6).is_ok());
        assert_eq!(dog.spent(), 10);
        assert_eq!(dog.remaining(), 0);
        let trip = dog.charge(1).unwrap_err();
        assert_eq!(trip.budget, 10);
        assert!(trip.to_string().contains("tick budget of 10"));
        assert!(dog.charge(0).is_err(), "a tripped dog does not re-arm");
    }
}
