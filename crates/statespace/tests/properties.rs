//! Property-based tests for the state-space substrate.

use proptest::prelude::*;

use apdm_statespace::grid::Grid2;
use apdm_statespace::reach::{guarded_reachable, safe_kernel, VonNeumannMoves};
use apdm_statespace::{
    Classifier, ExposureMonitor, Label, PreferenceOntology, Region, RegionClassifier,
    SafenessMetric, State, StateDelta, StateSchema, VarId,
};

fn schema() -> StateSchema {
    StateSchema::builder()
        .var("x", 0.0, 10.0)
        .var("y", 0.0, 10.0)
        .build()
}

fn arb_state() -> impl Strategy<Value = State> {
    (0.0..=10.0f64, 0.0..=10.0f64).prop_map(|(x, y)| schema().state(&[x, y]).unwrap())
}

fn arb_box() -> impl Strategy<Value = Region> {
    (0.0..=10.0f64, 0.0..=10.0f64, 0.0..=10.0f64, 0.0..=10.0f64)
        .prop_map(|(a, b, c, d)| Region::rect(&[(a.min(b), a.max(b)), (c.min(d), c.max(d))]))
}

proptest! {
    /// Region complement is an involution on membership.
    #[test]
    fn complement_involution(s in arb_state(), r in arb_box()) {
        let double = r.clone().complement().complement();
        prop_assert_eq!(r.contains(&s), double.contains(&s));
    }

    /// Intersection membership implies membership in both operands; union
    /// membership implies membership in at least one.
    #[test]
    fn intersection_union_soundness(s in arb_state(), a in arb_box(), b in arb_box()) {
        let both = a.clone().and(b.clone());
        let either = a.clone().or(b.clone());
        if both.contains(&s) {
            prop_assert!(a.contains(&s) && b.contains(&s));
        }
        prop_assert_eq!(either.contains(&s), a.contains(&s) || b.contains(&s));
    }

    /// Violation is zero exactly on members (for boxes).
    #[test]
    fn violation_zero_iff_member(s in arb_state(), r in arb_box()) {
        prop_assert_eq!(r.violation(&s) == 0.0, r.contains(&s));
    }

    /// The region classifier is total: every state gets exactly one label,
    /// and safeness is finite.
    #[test]
    fn classifier_totality(s in arb_state(), r in arb_box()) {
        let c = RegionClassifier::new(r);
        let label = c.classify(&s);
        prop_assert!(matches!(label, Label::Good | Label::Neutral | Label::Bad));
        prop_assert!(c.safeness(&s).is_finite());
    }

    /// Scaled deltas scale magnitude linearly.
    #[test]
    fn delta_scaling(dx in -5.0..5.0f64, dy in -5.0..5.0f64, k in 0.0..4.0f64) {
        let d = StateDelta::single(VarId(0), dx).and(VarId(1), dy);
        let scaled = d.scaled(k);
        prop_assert!((scaled.magnitude() - k * d.magnitude()).abs() < 1e-9);
    }

    /// Normalized distance is symmetric and zero on identity.
    #[test]
    fn normalized_distance_metricish(a in arb_state(), b in arb_state()) {
        prop_assert!((a.normalized_distance(&b) - b.normalized_distance(&a)).abs() < 1e-12);
        prop_assert_eq!(a.normalized_distance(&a), 0.0);
    }

    /// Ontology preference stays a strict partial order no matter how edges
    /// are inserted: cycles are rejected, irreflexivity holds.
    #[test]
    fn ontology_stays_acyclic(edges in proptest::collection::vec((0usize..6, 0usize..6), 0..20)) {
        let mut ont = PreferenceOntology::new();
        let ids: Vec<_> = (0..6)
            .map(|i| ont.add_class(format!("c{i}"), Region::All))
            .collect();
        for (a, b) in edges {
            let _ = ont.prefer(ids[a], ids[b]); // cycles rejected internally
        }
        for &x in &ids {
            prop_assert!(!ont.prefers(x, x), "irreflexivity violated");
            for &y in &ids {
                if ont.prefers(x, y) {
                    prop_assert!(!ont.prefers(y, x), "antisymmetry violated");
                }
            }
        }
    }

    /// Grid cell_of is the inverse of center for every grid size.
    #[test]
    fn grid_center_roundtrip(n in 2usize..20) {
        let grid = Grid2::new(schema(), n, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let s = grid.center(i, j).unwrap();
                prop_assert_eq!(grid.cell_of(&s), (i, j));
            }
        }
    }

    /// Guarded reachability never exceeds the non-bad set, and the safe
    /// kernel is a subset of the non-bad set, for arbitrary good boxes.
    #[test]
    fn reachability_containment(r in arb_box()) {
        let grid = Grid2::new(schema(), 12, 12).unwrap();
        let labels = grid.classify(&RegionClassifier::new(r));
        let reach = guarded_reachable(&grid, &labels, &VonNeumannMoves, (6, 6));
        let nonbad = 144 - labels.count(Label::Bad);
        prop_assert!(reach.count() <= nonbad);
        let kernel = safe_kernel(&grid, &labels, &VonNeumannMoves);
        let kernel_count: usize = kernel.iter().flatten().filter(|&&k| k).count();
        prop_assert!(kernel_count <= nonbad);
    }

    /// Exposure monitors never report Good once over budget, and never
    /// report Bad while within the warn band, regardless of input sequence.
    #[test]
    fn exposure_label_consistency(doses in proptest::collection::vec(0.0..=10.0f64, 1..40)) {
        let mut m = ExposureMonitor::new(VarId(0), 12.0, 7.0, 0.9);
        let sch = StateSchema::builder().var("d", 0.0, 10.0).build();
        for dose in doses {
            let label = m.observe(&sch.state(&[dose]).unwrap());
            let acc = m.accumulated();
            match label {
                Label::Good => prop_assert!(acc < 7.0),
                Label::Neutral => prop_assert!((7.0..=12.0).contains(&acc)),
                Label::Bad => prop_assert!(acc > 12.0),
            }
        }
    }
}
