//! State-preference ontologies: choosing the "less bad" state.
//!
//! Section VI.B of the paper: "A state preference ontology organizes the
//! possible states of a device into an ontology based on a preference
//! relationship. Organizing the set of bad states into such an ontology
//! allows a device, which has to decide between two bad states, to select the
//! 'less bad' state" — e.g. starting a fire is preferable to loss of human
//! life.
//!
//! The ontology is a DAG of named **severity classes** with `prefer` edges
//! (`a` preferred over `b` means `a` is less bad). States map to classes via
//! membership [`Region`]s; preference between states is resolved by the
//! transitive closure of the edge relation, falling back to a risk score for
//! incomparable or same-class states.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use crate::{Region, State, StateSpaceError};

/// Identifier of a severity class inside a [`PreferenceOntology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(usize);

#[derive(Debug, Clone)]
struct ClassNode {
    name: String,
    membership: Region,
    /// Classes this one is preferred over (edges point toward *worse*).
    worse: Vec<ClassId>,
}

/// A DAG of severity classes ordering bad states by preference.
///
/// # Example
///
/// ```
/// use apdm_statespace::{PreferenceOntology, Region, StateSchema};
///
/// let schema = StateSchema::builder()
///     .var("fire_risk", 0.0, 1.0)
///     .var("life_risk", 0.0, 1.0)
///     .build();
/// let mut ont = PreferenceOntology::new();
/// let fire = ont.add_class("fire", Region::half_space(0.into(), 0.5, true));
/// let life = ont.add_class("loss_of_life", Region::half_space(1.into(), 0.5, true));
/// // Starting a fire is less bad than losing a life.
/// ont.prefer(fire, life).unwrap();
///
/// let start_fire = schema.state(&[0.9, 0.0]).unwrap();
/// let lose_life = schema.state(&[0.0, 0.9]).unwrap();
/// assert_eq!(ont.choose_less_bad(&[lose_life, start_fire.clone()]), Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PreferenceOntology {
    classes: Vec<ClassNode>,
}

impl PreferenceOntology {
    /// An empty ontology.
    pub fn new() -> Self {
        PreferenceOntology::default()
    }

    /// Add a severity class with a membership region. Classes added earlier
    /// take precedence when a state is a member of several.
    pub fn add_class(&mut self, name: impl Into<String>, membership: Region) -> ClassId {
        let id = ClassId(self.classes.len());
        self.classes.push(ClassNode {
            name: name.into(),
            membership,
            worse: Vec::new(),
        });
        id
    }

    /// Record that `less_bad` is preferred over `worse`.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::PreferenceCycle`] if the edge would make
    /// the preference relation cyclic (preference must be a strict partial
    /// order).
    pub fn prefer(&mut self, less_bad: ClassId, worse: ClassId) -> Result<(), StateSpaceError> {
        if less_bad == worse || self.prefers(worse, less_bad) {
            return Err(StateSpaceError::PreferenceCycle {
                from: self.classes[less_bad.0].name.clone(),
                to: self.classes[worse.0].name.clone(),
            });
        }
        if !self.classes[less_bad.0].worse.contains(&worse) {
            self.classes[less_bad.0].worse.push(worse);
        }
        Ok(())
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no classes exist.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Name of a class.
    pub fn name(&self, id: ClassId) -> &str {
        &self.classes[id.0].name
    }

    /// The first class whose membership region contains `state`.
    pub fn class_of(&self, state: &State) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.membership.contains(state))
            .map(ClassId)
    }

    /// Is `a` (transitively) preferred over `b`?
    pub fn prefers(&self, a: ClassId, b: ClassId) -> bool {
        if a == b {
            return false;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([a]);
        while let Some(c) = queue.pop_front() {
            for &w in &self.classes[c.0].worse {
                if w == b {
                    return true;
                }
                if seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
        false
    }

    /// Depth of each class from the preference roots: less-bad classes have
    /// smaller depth. Used as a severity rank for scoring.
    fn depths(&self) -> HashMap<ClassId, usize> {
        // Longest-path depth in the DAG (roots = classes nothing prefers over).
        let mut indegree = vec![0usize; self.classes.len()];
        for c in &self.classes {
            for w in &c.worse {
                indegree[w.0] += 1;
            }
        }
        let mut depth: HashMap<ClassId, usize> = HashMap::new();
        let mut queue: VecDeque<ClassId> = indegree
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == 0)
            .map(|(i, _)| ClassId(i))
            .collect();
        for &c in &queue {
            depth.insert(c, 0);
        }
        while let Some(c) = queue.pop_front() {
            let d = depth[&c];
            for &w in &self.classes[c.0].worse.clone() {
                let e = depth.entry(w).or_insert(0);
                if *e < d + 1 {
                    *e = d + 1;
                }
                indegree[w.0] -= 1;
                if indegree[w.0] == 0 {
                    queue.push_back(w);
                }
            }
        }
        depth
    }

    /// Severity rank of a state: its class depth, or `usize::MAX` when the
    /// state matches no class (unclassified bad states are treated as worst —
    /// the conservative choice for an ontology of *bad* states).
    pub fn severity_rank(&self, state: &State) -> usize {
        match self.class_of(state) {
            Some(c) => *self.depths().get(&c).unwrap_or(&0),
            None => usize::MAX,
        }
    }

    /// From a set of candidate (bad) states, pick the index of the least-bad
    /// one: the candidate whose class is preferred over the most others,
    /// breaking ties toward the earliest candidate. Returns `None` on an
    /// empty slice **or when no candidate is classified at all** — an
    /// ontology that recognizes nothing cannot rank anything, and callers
    /// should fall back to other mechanisms (risk alone, break-glass).
    pub fn choose_less_bad(&self, candidates: &[State]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let ranks: Vec<usize> = candidates.iter().map(|s| self.severity_rank(s)).collect();
        let best = ranks.iter().copied().min()?;
        if best == usize::MAX {
            return None;
        }
        ranks.iter().position(|&r| r == best)
    }

    /// Like [`choose_less_bad`](Self::choose_less_bad) but breaks class ties
    /// with an externally supplied risk score (lower risk wins), realizing
    /// the paper's "use of a state preference ontology ... combined with risk
    /// estimation techniques".
    pub fn choose_less_bad_with_risk(
        &self,
        candidates: &[State],
        risk: impl Fn(&State) -> f64,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let ranks: Vec<usize> = candidates.iter().map(|s| self.severity_rank(s)).collect();
        let best = ranks.iter().copied().min()?;
        if best == usize::MAX {
            return None;
        }
        candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| ranks[*i] == best)
            .min_by(|(_, a), (_, b)| {
                risk(a)
                    .partial_cmp(&risk(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }
}

impl fmt::Display for PreferenceOntology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "preference ontology ({} classes)", self.classes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("fire", 0.0, 1.0)
            .var("life", 0.0, 1.0)
            .var("prop", 0.0, 1.0)
            .build()
    }

    fn ontology() -> (PreferenceOntology, ClassId, ClassId, ClassId) {
        let mut ont = PreferenceOntology::new();
        // Membership checked in insertion order, so put the *worst* hazards
        // first: a state risking life is "loss_of_life" even if it also
        // risks property.
        let life = ont.add_class("loss_of_life", Region::half_space(VarId(1), 0.5, true));
        let fire = ont.add_class("fire", Region::half_space(VarId(0), 0.5, true));
        let prop = ont.add_class("property_damage", Region::half_space(VarId(2), 0.5, true));
        // property damage < fire < loss of life.
        ont.prefer(prop, fire).unwrap();
        ont.prefer(fire, life).unwrap();
        (ont, fire, life, prop)
    }

    #[test]
    fn prefers_is_transitive() {
        let (ont, fire, life, prop) = ontology();
        assert!(ont.prefers(prop, fire));
        assert!(ont.prefers(prop, life));
        assert!(ont.prefers(fire, life));
        assert!(!ont.prefers(life, prop));
        assert!(!ont.prefers(fire, fire));
    }

    #[test]
    fn cycle_rejected() {
        let (mut ont, fire, life, _) = ontology();
        assert!(matches!(
            ont.prefer(life, fire),
            Err(StateSpaceError::PreferenceCycle { .. })
        ));
        assert!(ont.prefer(fire, fire).is_err());
    }

    #[test]
    fn class_of_uses_insertion_order() {
        let (ont, _, life, _) = ontology();
        let s = schema().state(&[0.9, 0.9, 0.0]).unwrap(); // fire AND life
        assert_eq!(ont.class_of(&s), Some(life));
        assert_eq!(ont.name(life), "loss_of_life");
    }

    #[test]
    fn choose_less_bad_prefers_fire_over_life() {
        let (ont, ..) = ontology();
        let lose_life = schema().state(&[0.0, 0.9, 0.0]).unwrap();
        let start_fire = schema().state(&[0.9, 0.0, 0.0]).unwrap();
        assert_eq!(
            ont.choose_less_bad(&[lose_life.clone(), start_fire.clone()]),
            Some(1)
        );
        assert_eq!(ont.choose_less_bad(&[start_fire, lose_life]), Some(0));
    }

    #[test]
    fn choose_less_bad_prefers_property_over_all() {
        let (ont, ..) = ontology();
        let cands = vec![
            schema().state(&[0.9, 0.0, 0.0]).unwrap(), // fire
            schema().state(&[0.0, 0.0, 0.9]).unwrap(), // property
            schema().state(&[0.0, 0.9, 0.0]).unwrap(), // life
        ];
        assert_eq!(ont.choose_less_bad(&cands), Some(1));
    }

    #[test]
    fn unclassified_state_is_worst() {
        let (ont, ..) = ontology();
        let benign = schema().state(&[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(ont.class_of(&benign), None);
        assert_eq!(ont.severity_rank(&benign), usize::MAX);
        let fire = schema().state(&[0.9, 0.0, 0.0]).unwrap();
        // A classified bad state beats an unclassifiable one.
        assert_eq!(ont.choose_less_bad(&[benign, fire]), Some(1));
    }

    #[test]
    fn all_unclassified_candidates_give_none() {
        let (ont, ..) = ontology();
        let benign_a = schema().state(&[0.0, 0.0, 0.0]).unwrap();
        let benign_b = schema().state(&[0.1, 0.1, 0.1]).unwrap();
        assert_eq!(
            ont.choose_less_bad(&[benign_a.clone(), benign_b.clone()]),
            None
        );
        assert_eq!(
            ont.choose_less_bad_with_risk(&[benign_a, benign_b], |_| 0.0),
            None
        );
    }

    #[test]
    fn empty_candidates_give_none() {
        let (ont, ..) = ontology();
        assert_eq!(ont.choose_less_bad(&[]), None);
        assert_eq!(ont.choose_less_bad_with_risk(&[], |_| 0.0), None);
    }

    #[test]
    fn risk_breaks_ties_within_class() {
        let (ont, ..) = ontology();
        let mild_fire = schema().state(&[0.6, 0.0, 0.0]).unwrap();
        let big_fire = schema().state(&[1.0, 0.0, 0.0]).unwrap();
        let idx = ont
            .choose_less_bad_with_risk(&[big_fire, mild_fire], |s| s.values()[0])
            .unwrap();
        assert_eq!(idx, 1, "lower-risk fire should win the tie");
    }

    #[test]
    fn severity_rank_increases_along_preference_chain() {
        let (ont, ..) = ontology();
        let prop = schema().state(&[0.0, 0.0, 0.9]).unwrap();
        let fire = schema().state(&[0.9, 0.0, 0.0]).unwrap();
        let life = schema().state(&[0.0, 0.9, 0.0]).unwrap();
        assert!(ont.severity_rank(&prop) < ont.severity_rank(&fire));
        assert!(ont.severity_rank(&fire) < ont.severity_rank(&life));
    }
}
