use serde::{Deserialize, Serialize};
use std::fmt;

use crate::StateSpaceError;

/// Index of a state variable within its [`StateSchema`](crate::StateSchema).
///
/// Variable identities are positional: the i-th declared variable has id `i`.
/// Newtyped so that variable indices cannot be confused with other `usize`
/// quantities (grid cells, device ids, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub usize);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<usize> for VarId {
    fn from(value: usize) -> Self {
        VarId(value)
    }
}

/// Declaration of a single state variable: name and value bounds.
///
/// The paper models a device's state as "the values of a set of variables,
/// where each variable represents an attribute of the configuration of the
/// sensors, actuators or other aspects of the device" (Section V). Bounds are
/// inclusive and must be finite with `lo <= hi`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarSpec {
    name: String,
    lo: f64,
    hi: f64,
}

impl VarSpec {
    /// Create a variable spec.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidBounds`] if the bounds are not
    /// finite or `lo > hi`.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64) -> Result<Self, StateSpaceError> {
        let name = name.into();
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(StateSpaceError::InvalidBounds { var: name, lo, hi });
        }
        Ok(VarSpec { name, lo, hi })
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inclusive lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Inclusive upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of the variable's range (`hi - lo`).
    pub fn span(&self) -> f64 {
        self.hi - self.lo
    }

    /// Does `value` fall within the declared bounds?
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Clamp `value` into the declared bounds.
    pub fn clamp(&self, value: f64) -> f64 {
        value.clamp(self.lo, self.hi)
    }

    /// Normalize `value` to `[0, 1]` within the bounds (0 when span is zero).
    pub fn normalize(&self, value: f64) -> f64 {
        if self.span() == 0.0 {
            0.0
        } else {
            ((value - self.lo) / self.span()).clamp(0.0, 1.0)
        }
    }
}

impl fmt::Display for VarSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in [{}, {}]", self.name, self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_inverted_bounds() {
        assert!(matches!(
            VarSpec::new("x", 2.0, 1.0),
            Err(StateSpaceError::InvalidBounds { .. })
        ));
    }

    #[test]
    fn new_rejects_non_finite_bounds() {
        assert!(VarSpec::new("x", f64::NEG_INFINITY, 1.0).is_err());
        assert!(VarSpec::new("x", 0.0, f64::NAN).is_err());
    }

    #[test]
    fn contains_and_clamp() {
        let v = VarSpec::new("speed", 0.0, 10.0).unwrap();
        assert!(v.contains(0.0));
        assert!(v.contains(10.0));
        assert!(!v.contains(-0.1));
        assert_eq!(v.clamp(12.0), 10.0);
        assert_eq!(v.clamp(-3.0), 0.0);
    }

    #[test]
    fn normalize_maps_bounds_to_unit_interval() {
        let v = VarSpec::new("t", 10.0, 20.0).unwrap();
        assert_eq!(v.normalize(10.0), 0.0);
        assert_eq!(v.normalize(20.0), 1.0);
        assert_eq!(v.normalize(15.0), 0.5);
    }

    #[test]
    fn normalize_degenerate_span_is_zero() {
        let v = VarSpec::new("c", 5.0, 5.0).unwrap();
        assert_eq!(v.normalize(5.0), 0.0);
    }

    #[test]
    fn var_id_display() {
        assert_eq!(VarId(3).to_string(), "x3");
    }
}
