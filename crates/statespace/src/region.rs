use serde::{Deserialize, Serialize};

use crate::{State, VarId};

/// A region of a state space: a (possibly non-convex) set of states.
///
/// Regions are composed from axis-aligned boxes and half-spaces with boolean
/// connectives, which is expressive enough for the good/bad partitions of the
/// paper's Figure 3 while staying decidable and cheap to test.
///
/// # Example
///
/// ```
/// use apdm_statespace::{Region, StateSchema};
///
/// let schema = StateSchema::builder().var("x", 0.0, 10.0).var("y", 0.0, 10.0).build();
/// // Good region is the middle box minus a hazardous corner strip.
/// let region = Region::rect(&[(2.0, 8.0), (2.0, 8.0)])
///     .minus(Region::half_space(0.into(), 7.0, true));
/// assert!(region.contains(&schema.state(&[5.0, 5.0]).unwrap()));
/// assert!(!region.contains(&schema.state(&[7.5, 5.0]).unwrap()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Region {
    /// The whole state space.
    All,
    /// The empty set.
    Empty,
    /// Axis-aligned box: per-variable inclusive `(lo, hi)` intervals.
    /// Variables beyond the listed intervals are unconstrained.
    Box {
        /// Per-variable inclusive intervals, in variable order.
        bounds: Vec<(f64, f64)>,
    },
    /// The set `{ s | s[var] >= threshold }` when `upper` is true, else
    /// `{ s | s[var] <= threshold }`.
    HalfSpace {
        /// Variable the half-space constrains.
        var: VarId,
        /// Threshold value.
        threshold: f64,
        /// Direction: `true` keeps values at or above the threshold.
        upper: bool,
    },
    /// Union of sub-regions.
    Union(Vec<Region>),
    /// Intersection of sub-regions.
    Intersection(Vec<Region>),
    /// Complement of a sub-region.
    Complement(Box<Region>),
}

impl Region {
    /// Axis-aligned box from `(lo, hi)` pairs, one per leading variable.
    pub fn rect(bounds: &[(f64, f64)]) -> Region {
        Region::Box {
            bounds: bounds.to_vec(),
        }
    }

    /// Half-space `s[var] >= threshold` (when `upper`) or `<= threshold`.
    pub fn half_space(var: VarId, threshold: f64, upper: bool) -> Region {
        Region::HalfSpace {
            var,
            threshold,
            upper,
        }
    }

    /// Union with another region.
    pub fn or(self, other: Region) -> Region {
        match self {
            Region::Union(mut rs) => {
                rs.push(other);
                Region::Union(rs)
            }
            r => Region::Union(vec![r, other]),
        }
    }

    /// Intersection with another region.
    pub fn and(self, other: Region) -> Region {
        match self {
            Region::Intersection(mut rs) => {
                rs.push(other);
                Region::Intersection(rs)
            }
            r => Region::Intersection(vec![r, other]),
        }
    }

    /// Set difference `self \ other`.
    pub fn minus(self, other: Region) -> Region {
        self.and(Region::Complement(Box::new(other)))
    }

    /// The complement of this region.
    pub fn complement(self) -> Region {
        Region::Complement(Box::new(self))
    }

    /// Is `state` a member of the region?
    pub fn contains(&self, state: &State) -> bool {
        match self {
            Region::All => true,
            Region::Empty => false,
            Region::Box { bounds } => bounds.iter().enumerate().all(|(i, &(lo, hi))| {
                state
                    .get(VarId(i))
                    .map(|v| v >= lo && v <= hi)
                    // A box constraining a variable the state lacks matches
                    // nothing: the constraint cannot be checked.
                    .unwrap_or(false)
            }),
            Region::HalfSpace {
                var,
                threshold,
                upper,
            } => state
                .get(*var)
                .map(|v| {
                    if *upper {
                        v >= *threshold
                    } else {
                        v <= *threshold
                    }
                })
                .unwrap_or(false),
            Region::Union(rs) => rs.iter().any(|r| r.contains(state)),
            Region::Intersection(rs) => rs.iter().all(|r| r.contains(state)),
            Region::Complement(r) => !r.contains(state),
        }
    }

    /// A conservative "distance to the region" used for risk shaping: 0 when
    /// inside; otherwise the max per-axis violation for primitive regions and
    /// a min/max composition for connectives. Not a metric, but monotone:
    /// moving strictly toward a box decreases it.
    pub fn violation(&self, state: &State) -> f64 {
        match self {
            Region::All => 0.0,
            Region::Empty => f64::INFINITY,
            Region::Box { bounds } => bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| match state.get(VarId(i)) {
                    Some(v) if v < lo => lo - v,
                    Some(v) if v > hi => v - hi,
                    Some(_) => 0.0,
                    None => f64::INFINITY,
                })
                .fold(0.0, f64::max),
            Region::HalfSpace {
                var,
                threshold,
                upper,
            } => match state.get(*var) {
                Some(v) => {
                    if *upper {
                        (threshold - v).max(0.0)
                    } else {
                        (v - threshold).max(0.0)
                    }
                }
                None => f64::INFINITY,
            },
            Region::Union(rs) => rs
                .iter()
                .map(|r| r.violation(state))
                .fold(f64::INFINITY, f64::min),
            Region::Intersection(rs) => rs.iter().map(|r| r.violation(state)).fold(0.0, f64::max),
            // No useful distance for complements; only membership.
            Region::Complement(r) => {
                if r.contains(state) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateSchema;

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("x", 0.0, 10.0)
            .var("y", 0.0, 10.0)
            .build()
    }

    fn st(x: f64, y: f64) -> State {
        schema().state(&[x, y]).unwrap()
    }

    #[test]
    fn all_and_empty() {
        assert!(Region::All.contains(&st(0.0, 0.0)));
        assert!(!Region::Empty.contains(&st(0.0, 0.0)));
    }

    #[test]
    fn box_membership_is_inclusive() {
        let r = Region::rect(&[(2.0, 8.0), (3.0, 7.0)]);
        assert!(r.contains(&st(2.0, 3.0)));
        assert!(r.contains(&st(8.0, 7.0)));
        assert!(!r.contains(&st(1.9, 5.0)));
        assert!(!r.contains(&st(5.0, 7.1)));
    }

    #[test]
    fn box_with_fewer_bounds_leaves_trailing_vars_free() {
        let r = Region::rect(&[(2.0, 8.0)]);
        assert!(r.contains(&st(5.0, 9.9)));
        assert!(!r.contains(&st(9.0, 0.0)));
    }

    #[test]
    fn half_space_directions() {
        let upper = Region::half_space(VarId(0), 5.0, true);
        let lower = Region::half_space(VarId(0), 5.0, false);
        assert!(upper.contains(&st(5.0, 0.0)));
        assert!(upper.contains(&st(7.0, 0.0)));
        assert!(!upper.contains(&st(4.9, 0.0)));
        assert!(lower.contains(&st(5.0, 0.0)));
        assert!(!lower.contains(&st(5.1, 0.0)));
    }

    #[test]
    fn boolean_connectives() {
        let a = Region::rect(&[(0.0, 5.0), (0.0, 10.0)]);
        let b = Region::rect(&[(3.0, 10.0), (0.0, 10.0)]);
        let both = a.clone().and(b.clone());
        let either = a.clone().or(b.clone());
        let only_a = a.minus(b);
        assert!(both.contains(&st(4.0, 5.0)));
        assert!(!both.contains(&st(1.0, 5.0)));
        assert!(either.contains(&st(1.0, 5.0)));
        assert!(either.contains(&st(9.0, 5.0)));
        assert!(only_a.contains(&st(1.0, 5.0)));
        assert!(!only_a.contains(&st(4.0, 5.0)));
    }

    #[test]
    fn complement_inverts_membership() {
        let r = Region::rect(&[(0.0, 5.0)]).complement();
        assert!(!r.contains(&st(3.0, 0.0)));
        assert!(r.contains(&st(6.0, 0.0)));
    }

    #[test]
    fn violation_zero_inside_positive_outside() {
        let r = Region::rect(&[(2.0, 8.0), (2.0, 8.0)]);
        assert_eq!(r.violation(&st(5.0, 5.0)), 0.0);
        assert!((r.violation(&st(9.0, 5.0)) - 1.0).abs() < 1e-12);
        // Max across axes.
        assert!((r.violation(&st(9.0, 0.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn violation_union_takes_nearest() {
        let r = Region::rect(&[(0.0, 1.0)]).or(Region::rect(&[(9.0, 10.0)]));
        assert!((r.violation(&st(2.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!((r.violation(&st(8.5, 0.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn figure3_layout_one_good_box_bad_elsewhere() {
        // Figure 3: a central good box surrounded by bad states.
        let good = Region::rect(&[(3.0, 7.0), (3.0, 7.0)]);
        let bad = good.clone().complement();
        assert!(good.contains(&st(5.0, 5.0)));
        assert!(bad.contains(&st(0.5, 0.5)));
        assert!(bad.contains(&st(9.5, 5.0)));
        assert!(!bad.contains(&st(5.0, 5.0)));
    }
}
