use std::fmt;

/// Errors produced when constructing or manipulating state spaces.
#[derive(Debug, Clone, PartialEq)]
pub enum StateSpaceError {
    /// A state vector had the wrong number of components for its schema.
    DimensionMismatch {
        /// Number of variables declared by the schema.
        expected: usize,
        /// Number of components supplied.
        actual: usize,
    },
    /// A variable value fell outside the bounds declared in the schema.
    OutOfBounds {
        /// Name of the offending variable.
        var: String,
        /// Supplied value.
        value: f64,
        /// Declared lower bound.
        lo: f64,
        /// Declared upper bound.
        hi: f64,
    },
    /// A variable name was not declared in the schema.
    UnknownVar(String),
    /// A variable was declared twice in one schema.
    DuplicateVar(String),
    /// A variable's bounds were inverted or non-finite.
    InvalidBounds {
        /// Name of the offending variable.
        var: String,
        /// Declared lower bound.
        lo: f64,
        /// Declared upper bound.
        hi: f64,
    },
    /// A preference edge would create a cycle in the preference ontology.
    PreferenceCycle {
        /// Source label of the rejected edge.
        from: String,
        /// Destination label of the rejected edge.
        to: String,
    },
}

impl fmt::Display for StateSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateSpaceError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "state has {actual} components but schema declares {expected}"
                )
            }
            StateSpaceError::OutOfBounds { var, value, lo, hi } => {
                write!(
                    f,
                    "value {value} for variable `{var}` is outside [{lo}, {hi}]"
                )
            }
            StateSpaceError::UnknownVar(name) => {
                write!(f, "variable `{name}` is not declared in the schema")
            }
            StateSpaceError::DuplicateVar(name) => {
                write!(f, "variable `{name}` is declared more than once")
            }
            StateSpaceError::InvalidBounds { var, lo, hi } => {
                write!(f, "variable `{var}` has invalid bounds [{lo}, {hi}]")
            }
            StateSpaceError::PreferenceCycle { from, to } => {
                write!(f, "preference edge {from} -> {to} would create a cycle")
            }
        }
    }
}

impl std::error::Error for StateSpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = StateSpaceError::OutOfBounds {
            var: "temp".into(),
            value: 120.0,
            lo: 0.0,
            hi: 100.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("temp"));
        assert!(msg.contains("120"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StateSpaceError>();
    }
}
