//! Discretized two-variable state spaces: the paper's Figure 3 made
//! executable.
//!
//! [`Grid2`] discretizes a two-variable [`StateSchema`] into cells, labels
//! each cell with a [`Classifier`], renders the partition as ASCII art (the
//! reproduction of Figure 3), and exposes the cell graph for reachability
//! analysis (see [`crate::reach`]).

use crate::{Classifier, Label, State, StateSchema};

/// A discretization of a 2-variable state space into `nx * ny` cells.
///
/// # Example
///
/// ```
/// use apdm_statespace::{Grid2, Label, Region, RegionClassifier, StateSchema};
///
/// let schema = StateSchema::builder().var("x", 0.0, 10.0).var("y", 0.0, 10.0).build();
/// let classifier = RegionClassifier::new(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
/// let grid = Grid2::new(schema, 10, 10).unwrap();
/// let labels = grid.classify(&classifier);
/// assert_eq!(labels.label(5, 5), Label::Good);
/// assert_eq!(labels.label(0, 0), Label::Bad);
/// ```
#[derive(Debug, Clone)]
pub struct Grid2 {
    schema: StateSchema,
    nx: usize,
    ny: usize,
}

impl Grid2 {
    /// Discretize the first two variables of `schema` into `nx * ny` cells.
    ///
    /// # Errors
    ///
    /// Returns an error string when the schema has fewer than two variables
    /// or a dimension is zero.
    pub fn new(schema: StateSchema, nx: usize, ny: usize) -> Result<Self, String> {
        if schema.len() < 2 {
            return Err(format!(
                "Grid2 needs a 2-variable schema, got {}",
                schema.len()
            ));
        }
        if nx == 0 || ny == 0 {
            return Err("grid dimensions must be positive".to_string());
        }
        Ok(Grid2 { schema, nx, ny })
    }

    /// The underlying schema.
    pub fn schema(&self) -> &StateSchema {
        &self.schema
    }

    /// Cells along the first variable.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along the second variable.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Center state of cell `(i, j)`; `None` when out of range.
    pub fn center(&self, i: usize, j: usize) -> Option<State> {
        if i >= self.nx || j >= self.ny {
            return None;
        }
        let vx = self.schema.var(0.into())?;
        let vy = self.schema.var(1.into())?;
        let x = vx.lo() + (i as f64 + 0.5) / self.nx as f64 * vx.span();
        let y = vy.lo() + (j as f64 + 0.5) / self.ny as f64 * vy.span();
        let mut values: Vec<f64> = self.schema.vars().iter().map(|v| v.lo()).collect();
        values[0] = x;
        values[1] = y;
        Some(self.schema.state_clamped(&values))
    }

    /// The cell containing `state` (clamped to the grid edge).
    pub fn cell_of(&self, state: &State) -> (usize, usize) {
        let vx = self.schema.var(0.into()).expect("2-var schema");
        let vy = self.schema.var(1.into()).expect("2-var schema");
        let fx = vx.normalize(state.get(0.into()).unwrap_or(vx.lo()));
        let fy = vy.normalize(state.get(1.into()).unwrap_or(vy.lo()));
        let i = ((fx * self.nx as f64) as usize).min(self.nx - 1);
        let j = ((fy * self.ny as f64) as usize).min(self.ny - 1);
        (i, j)
    }

    /// Label every cell with `classifier` (by cell-center state).
    pub fn classify<C: Classifier>(&self, classifier: &C) -> GridLabels {
        let mut labels = Vec::with_capacity(self.cell_count());
        for j in 0..self.ny {
            for i in 0..self.nx {
                let state = self.center(i, j).expect("in-range cell");
                labels.push(classifier.classify(&state));
            }
        }
        GridLabels {
            nx: self.nx,
            ny: self.ny,
            labels,
        }
    }
}

/// Per-cell labels of a [`Grid2`], with Figure-3 rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct GridLabels {
    nx: usize,
    ny: usize,
    labels: Vec<Label>,
}

impl GridLabels {
    /// Label of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn label(&self, i: usize, j: usize) -> Label {
        assert!(i < self.nx && j < self.ny, "cell ({i}, {j}) out of range");
        self.labels[j * self.nx + i]
    }

    /// Fractions `(good, neutral, bad)` of cells.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let n = self.labels.len() as f64;
        let count = |l: Label| self.labels.iter().filter(|&&x| x == l).count() as f64 / n;
        (count(Label::Good), count(Label::Neutral), count(Label::Bad))
    }

    /// Number of cells with the given label.
    pub fn count(&self, label: Label) -> usize {
        self.labels.iter().filter(|&&x| x == label).count()
    }

    /// Is the good set a single 4-connected component? (Figure 3 depicts one
    /// contiguous good region surrounded by bad states.)
    pub fn good_is_connected(&self) -> bool {
        let total_good = self.count(Label::Good);
        if total_good == 0 {
            return false;
        }
        let start = self
            .labels
            .iter()
            .position(|&l| l == Label::Good)
            .expect("at least one good cell");
        let mut seen = vec![false; self.labels.len()];
        let mut stack = vec![start];
        seen[start] = true;
        let mut reached = 0usize;
        while let Some(idx) = stack.pop() {
            reached += 1;
            let (i, j) = (idx % self.nx, idx / self.nx);
            let mut push = |ni: usize, nj: usize| {
                let n = nj * self.nx + ni;
                if !seen[n] && self.labels[n] == Label::Good {
                    seen[n] = true;
                    stack.push(n);
                }
            };
            if i > 0 {
                push(i - 1, j);
            }
            if i + 1 < self.nx {
                push(i + 1, j);
            }
            if j > 0 {
                push(i, j - 1);
            }
            if j + 1 < self.ny {
                push(i, j + 1);
            }
        }
        reached == total_good
    }

    /// Render the partition as ASCII art: `.` good, `~` neutral, `#` bad.
    /// Row 0 (lowest second-variable value) prints last, so the plot reads
    /// like the paper's Figure 3 with the origin at bottom-left.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.nx + 1) * self.ny);
        for j in (0..self.ny).rev() {
            for i in 0..self.nx {
                out.push(match self.label(i, j) {
                    Label::Good => '.',
                    Label::Neutral => '~',
                    Label::Bad => '#',
                });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Region, RegionClassifier};

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("x", 0.0, 10.0)
            .var("y", 0.0, 10.0)
            .build()
    }

    fn fig3_grid() -> (Grid2, GridLabels) {
        let grid = Grid2::new(schema(), 10, 10).unwrap();
        let c = RegionClassifier::new(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
        let labels = grid.classify(&c);
        (grid, labels)
    }

    #[test]
    fn new_rejects_bad_dimensions() {
        assert!(Grid2::new(schema(), 0, 10).is_err());
        let one_var = StateSchema::builder().var("x", 0.0, 1.0).build();
        assert!(Grid2::new(one_var, 4, 4).is_err());
    }

    #[test]
    fn centers_are_inside_cells() {
        let grid = Grid2::new(schema(), 10, 10).unwrap();
        let c = grid.center(0, 0).unwrap();
        assert!((c.values()[0] - 0.5).abs() < 1e-12);
        assert!((c.values()[1] - 0.5).abs() < 1e-12);
        assert!(grid.center(10, 0).is_none());
    }

    #[test]
    fn cell_of_inverts_center() {
        let grid = Grid2::new(schema(), 8, 8).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                let s = grid.center(i, j).unwrap();
                assert_eq!(grid.cell_of(&s), (i, j));
            }
        }
    }

    #[test]
    fn cell_of_clamps_edges() {
        let grid = Grid2::new(schema(), 10, 10).unwrap();
        let top = schema().state(&[10.0, 10.0]).unwrap();
        assert_eq!(grid.cell_of(&top), (9, 9));
    }

    #[test]
    fn figure3_partition_shape() {
        let (_, labels) = fig3_grid();
        assert_eq!(labels.label(5, 5), Label::Good);
        assert_eq!(labels.label(0, 0), Label::Bad);
        assert_eq!(labels.label(9, 5), Label::Bad);
        let (good, neutral, bad) = labels.fractions();
        assert!(good > 0.1 && good < 0.3);
        assert_eq!(neutral, 0.0);
        assert!((good + bad - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure3_good_region_is_connected() {
        let (_, labels) = fig3_grid();
        assert!(labels.good_is_connected());
    }

    #[test]
    fn split_good_region_is_not_connected() {
        let grid = Grid2::new(schema(), 10, 10).unwrap();
        let c = RegionClassifier::new(
            Region::rect(&[(0.0, 2.0), (0.0, 2.0)]).or(Region::rect(&[(8.0, 10.0), (8.0, 10.0)])),
        );
        let labels = grid.classify(&c);
        assert!(!labels.good_is_connected());
    }

    #[test]
    fn render_shape_and_charset() {
        let (_, labels) = fig3_grid();
        let art = labels.render();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.len() == 10));
        assert!(art.contains('.') && art.contains('#'));
        // First rendered row is the TOP of the space (high y) — all bad.
        assert!(lines[0].chars().all(|c| c == '#'));
        // Middle row crosses the good box.
        assert!(lines[4].contains('.'));
    }

    #[test]
    fn count_matches_fractions() {
        let (_, labels) = fig3_grid();
        assert_eq!(labels.count(Label::Good) + labels.count(Label::Bad), 100);
    }
}
