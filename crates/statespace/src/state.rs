use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::{StateSpaceError, VarId, VarSpec};

/// Declaration of a device's state space: an ordered list of variables.
///
/// Schemas are cheap to clone (the variable list is shared) and are attached
/// to every [`State`] so that states from different spaces cannot be mixed up
/// accidentally.
///
/// # Example
///
/// ```
/// use apdm_statespace::StateSchema;
///
/// let schema = StateSchema::builder()
///     .var("altitude", 0.0, 500.0)
///     .var("battery", 0.0, 1.0)
///     .build();
/// assert_eq!(schema.len(), 2);
/// assert_eq!(schema.index_of("battery"), Some(1.into()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSchema {
    vars: Arc<Vec<VarSpec>>,
}

impl StateSchema {
    /// Start building a schema.
    pub fn builder() -> StateSchemaBuilder {
        StateSchemaBuilder { vars: Vec::new() }
    }

    /// Construct a schema directly from variable specs.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DuplicateVar`] if two variables share a
    /// name.
    pub fn from_vars(vars: Vec<VarSpec>) -> Result<Self, StateSpaceError> {
        for (i, v) in vars.iter().enumerate() {
            if vars[..i].iter().any(|w| w.name() == v.name()) {
                return Err(StateSpaceError::DuplicateVar(v.name().to_string()));
            }
        }
        Ok(StateSchema {
            vars: Arc::new(vars),
        })
    }

    /// Number of state variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when the schema declares no variables.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The variable specs, in declaration order.
    pub fn vars(&self) -> &[VarSpec] {
        &self.vars
    }

    /// Look up a variable spec by id.
    pub fn var(&self, id: VarId) -> Option<&VarSpec> {
        self.vars.get(id.0)
    }

    /// Find a variable's id by name.
    pub fn index_of(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name() == name).map(VarId)
    }

    /// Construct a [`State`] in this schema, validating bounds.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::DimensionMismatch`] when `values` has the
    /// wrong arity and [`StateSpaceError::OutOfBounds`] when any component is
    /// outside its variable's bounds or non-finite.
    pub fn state(&self, values: &[f64]) -> Result<State, StateSpaceError> {
        if values.len() != self.len() {
            return Err(StateSpaceError::DimensionMismatch {
                expected: self.len(),
                actual: values.len(),
            });
        }
        for (spec, &value) in self.vars.iter().zip(values) {
            if !value.is_finite() || !spec.contains(value) {
                return Err(StateSpaceError::OutOfBounds {
                    var: spec.name().to_string(),
                    value,
                    lo: spec.lo(),
                    hi: spec.hi(),
                });
            }
        }
        Ok(State {
            schema: self.clone(),
            values: values.to_vec(),
        })
    }

    /// Construct a [`State`], clamping each component into bounds instead of
    /// failing. Non-finite components clamp to the lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong arity; clamping cannot repair arity.
    pub fn state_clamped(&self, values: &[f64]) -> State {
        assert_eq!(
            values.len(),
            self.len(),
            "state has {} components but schema declares {}",
            values.len(),
            self.len()
        );
        let values = self
            .vars
            .iter()
            .zip(values)
            .map(|(spec, &v)| {
                if v.is_finite() {
                    spec.clamp(v)
                } else {
                    spec.lo()
                }
            })
            .collect();
        State {
            schema: self.clone(),
            values,
        }
    }

    /// The state at every variable's lower bound (a canonical origin).
    pub fn origin(&self) -> State {
        let values = self.vars.iter().map(|v| v.lo()).collect();
        State {
            schema: self.clone(),
            values,
        }
    }

    /// The state at the midpoint of every variable's range.
    pub fn midpoint(&self) -> State {
        let values = self.vars.iter().map(|v| (v.lo() + v.hi()) / 2.0).collect();
        State {
            schema: self.clone(),
            values,
        }
    }
}

/// Builder for [`StateSchema`].
#[derive(Debug, Default)]
pub struct StateSchemaBuilder {
    vars: Vec<VarSpec>,
}

impl StateSchemaBuilder {
    /// Add a variable with inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are invalid or the name duplicates an earlier
    /// variable; schema construction errors are programming errors.
    pub fn var(mut self, name: impl Into<String>, lo: f64, hi: f64) -> Self {
        let spec = VarSpec::new(name, lo, hi).expect("invalid variable bounds");
        assert!(
            !self.vars.iter().any(|v| v.name() == spec.name()),
            "duplicate variable `{}`",
            spec.name()
        );
        self.vars.push(spec);
        self
    }

    /// Finish building.
    pub fn build(self) -> StateSchema {
        StateSchema {
            vars: Arc::new(self.vars),
        }
    }
}

/// A point in a device's state space.
///
/// Carries its [`StateSchema`] so operations can validate dimensionality and
/// bounds. Component access is by [`VarId`] or name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct State {
    schema: StateSchema,
    values: Vec<f64>,
}

impl State {
    /// The schema this state belongs to.
    pub fn schema(&self) -> &StateSchema {
        &self.schema
    }

    /// Raw component values in declaration order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Component by variable id.
    pub fn get(&self, id: VarId) -> Option<f64> {
        self.values.get(id.0).copied()
    }

    /// Component by variable name.
    pub fn get_by_name(&self, name: &str) -> Option<f64> {
        self.schema.index_of(name).and_then(|id| self.get(id))
    }

    /// Return a new state with one component replaced (clamped into bounds).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::UnknownVar`] when `id` is out of range.
    pub fn with(&self, id: VarId, value: f64) -> Result<State, StateSpaceError> {
        let spec = self
            .schema
            .var(id)
            .ok_or_else(|| StateSpaceError::UnknownVar(id.to_string()))?;
        let mut values = self.values.clone();
        values[id.0] = if value.is_finite() {
            spec.clamp(value)
        } else {
            spec.lo()
        };
        Ok(State {
            schema: self.schema.clone(),
            values,
        })
    }

    /// Apply a delta, clamping each component into bounds.
    pub fn apply(&self, delta: &StateDelta) -> State {
        let mut values = self.values.clone();
        for &(id, dv) in &delta.changes {
            if let Some(spec) = self.schema.var(id) {
                let v = values[id.0] + dv;
                values[id.0] = if v.is_finite() {
                    spec.clamp(v)
                } else {
                    spec.lo()
                };
            }
        }
        State {
            schema: self.schema.clone(),
            values,
        }
    }

    /// Euclidean distance to another state in the same schema.
    ///
    /// # Panics
    ///
    /// Panics if the states belong to different schemas.
    pub fn distance(&self, other: &State) -> f64 {
        assert_eq!(
            self.schema, other.schema,
            "states belong to different schemas"
        );
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Distance normalized per-variable by the variable's span, so that
    /// heterogeneous units compare fairly. Result is in `[0, sqrt(N)]`.
    pub fn normalized_distance(&self, other: &State) -> f64 {
        assert_eq!(
            self.schema, other.schema,
            "states belong to different schemas"
        );
        self.schema
            .vars()
            .iter()
            .zip(self.values.iter().zip(&other.values))
            .map(|(spec, (a, b))| {
                let span = spec.span();
                if span == 0.0 {
                    0.0
                } else {
                    let d = (a - b) / span;
                    d * d
                }
            })
            .sum::<f64>()
            .sqrt()
    }

    /// The delta that transforms `self` into `other`.
    ///
    /// # Panics
    ///
    /// Panics if the states belong to different schemas.
    pub fn delta_to(&self, other: &State) -> StateDelta {
        assert_eq!(
            self.schema, other.schema,
            "states belong to different schemas"
        );
        let changes = self
            .values
            .iter()
            .zip(&other.values)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| (VarId(i), b - a))
            .collect();
        StateDelta { changes }
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (spec, v)) in self.schema.vars().iter().zip(&self.values).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={v:.3}", spec.name())?;
        }
        write!(f, ")")
    }
}

/// A sparse change to a subset of state variables.
///
/// Deltas are how actuator invocations are modelled: an action's effect on a
/// device is the delta it applies to the device state (Section V: "the result
/// of the action ... effectively moves the device to another state").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StateDelta {
    changes: Vec<(VarId, f64)>,
}

impl StateDelta {
    /// An empty delta (the identity transition).
    pub fn empty() -> Self {
        StateDelta::default()
    }

    /// A delta changing a single variable.
    pub fn single(id: VarId, dv: f64) -> Self {
        StateDelta {
            changes: vec![(id, dv)],
        }
    }

    /// Add a change to this delta (builder style).
    pub fn and(mut self, id: VarId, dv: f64) -> Self {
        self.changes.push((id, dv));
        self
    }

    /// The list of `(variable, change)` pairs.
    pub fn changes(&self) -> &[(VarId, f64)] {
        &self.changes
    }

    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.changes.iter().all(|(_, dv)| *dv == 0.0)
    }

    /// L1 magnitude of the delta.
    pub fn magnitude(&self) -> f64 {
        self.changes.iter().map(|(_, dv)| dv.abs()).sum()
    }

    /// Scale every change by `factor`.
    pub fn scaled(&self, factor: f64) -> StateDelta {
        StateDelta {
            changes: self
                .changes
                .iter()
                .map(|&(id, dv)| (id, dv * factor))
                .collect(),
        }
    }
}

impl FromIterator<(VarId, f64)> for StateDelta {
    fn from_iter<T: IntoIterator<Item = (VarId, f64)>>(iter: T) -> Self {
        StateDelta {
            changes: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2() -> StateSchema {
        StateSchema::builder()
            .var("a", 0.0, 10.0)
            .var("b", -5.0, 5.0)
            .build()
    }

    #[test]
    fn state_construction_validates_arity() {
        let s = schema2();
        assert!(matches!(
            s.state(&[1.0]),
            Err(StateSpaceError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn state_construction_validates_bounds() {
        let s = schema2();
        assert!(matches!(
            s.state(&[11.0, 0.0]),
            Err(StateSpaceError::OutOfBounds { .. })
        ));
        assert!(matches!(
            s.state(&[f64::NAN, 0.0]),
            Err(StateSpaceError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn state_clamped_repairs_out_of_bounds() {
        let s = schema2();
        let st = s.state_clamped(&[12.0, -9.0]);
        assert_eq!(st.values(), &[10.0, -5.0]);
    }

    #[test]
    fn from_vars_rejects_duplicates() {
        let vars = vec![
            VarSpec::new("x", 0.0, 1.0).unwrap(),
            VarSpec::new("x", 0.0, 2.0).unwrap(),
        ];
        assert!(matches!(
            StateSchema::from_vars(vars),
            Err(StateSpaceError::DuplicateVar(_))
        ));
    }

    #[test]
    fn apply_delta_clamps() {
        let s = schema2();
        let st = s.state(&[9.0, 0.0]).unwrap();
        let moved = st.apply(&StateDelta::single(VarId(0), 5.0));
        assert_eq!(moved.get(VarId(0)), Some(10.0));
    }

    #[test]
    fn delta_roundtrip() {
        let s = schema2();
        let a = s.state(&[1.0, 1.0]).unwrap();
        let b = s.state(&[4.0, -2.0]).unwrap();
        let d = a.delta_to(&b);
        assert_eq!(a.apply(&d), b);
    }

    #[test]
    fn distance_is_euclidean() {
        let s = schema2();
        let a = s.state(&[0.0, 0.0]).unwrap();
        let b = s.state(&[3.0, 4.0]).unwrap();
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_distance_respects_spans() {
        let s = schema2();
        let a = s.state(&[0.0, -5.0]).unwrap();
        let b = s.state(&[10.0, 5.0]).unwrap();
        // Both vars move their full span -> sqrt(2).
        assert!((a.normalized_distance(&b) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn get_by_name() {
        let s = schema2();
        let st = s.state(&[2.0, 3.0]).unwrap();
        assert_eq!(st.get_by_name("b"), Some(3.0));
        assert_eq!(st.get_by_name("zz"), None);
    }

    #[test]
    fn with_replaces_and_clamps() {
        let s = schema2();
        let st = s.state(&[2.0, 3.0]).unwrap();
        let st2 = st.with(VarId(1), 99.0).unwrap();
        assert_eq!(st2.get(VarId(1)), Some(5.0));
        assert!(st.with(VarId(7), 0.0).is_err());
    }

    #[test]
    fn delta_magnitude_and_scaling() {
        let d = StateDelta::single(VarId(0), 2.0).and(VarId(1), -3.0);
        assert_eq!(d.magnitude(), 5.0);
        assert_eq!(d.scaled(0.5).magnitude(), 2.5);
        assert!(!d.is_empty());
        assert!(StateDelta::empty().is_empty());
    }

    #[test]
    fn display_formats_named_components() {
        let s = schema2();
        let st = s.state(&[1.0, 2.0]).unwrap();
        assert_eq!(st.to_string(), "(a=1.000, b=2.000)");
    }

    #[test]
    fn origin_and_midpoint() {
        let s = schema2();
        assert_eq!(s.origin().values(), &[0.0, -5.0]);
        assert_eq!(s.midpoint().values(), &[5.0, 0.0]);
    }
}
