//! Cumulative-effect monitoring over state trajectories.
//!
//! Section V: "some states may be explicitly 'bad', but others may be
//! dangerous in that they lead to **sequences of states with some cumulative
//! effects that are undesirable**." A state-by-state classifier cannot see
//! such hazards: each visited state is individually fine, but the *exposure*
//! accumulated along the trajectory (radiation dose, thermal stress, fatigue,
//! surveillance time over a crowd) crosses a budget.
//!
//! [`ExposureMonitor`] tracks a leaky-integral of one state variable along
//! the trajectory and labels the *trajectory* good/neutral/bad against a
//! budget; [`TrajectoryClassifier`] adapts any per-state [`Classifier`] into
//! a trajectory-aware one by OR-ing the per-state label with the monitors'
//! verdicts.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Classifier, Label, State, VarId};

/// A leaky cumulative-exposure integrator over one state variable.
///
/// Each observed state adds `value * dt` to the accumulator, which decays by
/// `decay` per tick (1.0 = no decay, pure integral). The trajectory is
/// *neutral* above `warn_at` and *bad* above `budget`.
///
/// # Example
///
/// ```
/// use apdm_statespace::{ExposureMonitor, Label, StateSchema};
///
/// let schema = StateSchema::builder().var("radiation", 0.0, 10.0).build();
/// // Budget of 10.0 dose-ticks; warn at 6.0; no decay.
/// let mut monitor = ExposureMonitor::new(0.into(), 10.0, 6.0, 1.0);
/// let hot = schema.state(&[3.0]).unwrap();
/// assert_eq!(monitor.observe(&hot), Label::Good);     // dose 3
/// assert_eq!(monitor.observe(&hot), Label::Neutral);  // dose 6
/// assert_eq!(monitor.observe(&hot), Label::Neutral);  // dose 9
/// assert_eq!(monitor.observe(&hot), Label::Bad);      // dose 12 > 10
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExposureMonitor {
    var: VarId,
    budget: f64,
    warn_at: f64,
    decay: f64,
    accumulated: f64,
    observations: u64,
}

impl ExposureMonitor {
    /// A monitor over `var` with a hard `budget`, a `warn_at` band and a
    /// per-tick retention factor `decay` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `budget <= 0`, `warn_at > budget`, or `decay` is outside
    /// `[0, 1]`.
    pub fn new(var: VarId, budget: f64, warn_at: f64, decay: f64) -> Self {
        assert!(
            budget > 0.0 && budget.is_finite(),
            "budget must be finite and positive"
        );
        assert!(warn_at <= budget, "warn_at must not exceed the budget");
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0, 1]");
        ExposureMonitor {
            var,
            budget,
            warn_at,
            decay,
            accumulated: 0.0,
            observations: 0,
        }
    }

    /// The monitored variable.
    pub fn var(&self) -> VarId {
        self.var
    }

    /// Current accumulated exposure.
    pub fn accumulated(&self) -> f64 {
        self.accumulated
    }

    /// Remaining budget (0 when exhausted).
    pub fn remaining(&self) -> f64 {
        (self.budget - self.accumulated).max(0.0)
    }

    /// Number of states observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Current trajectory label without observing anything new.
    pub fn label(&self) -> Label {
        if self.accumulated > self.budget {
            Label::Bad
        } else if self.accumulated >= self.warn_at {
            Label::Neutral
        } else {
            Label::Good
        }
    }

    /// Absorb one tick spent in `state` (decay first, then add) and return
    /// the updated trajectory label. States lacking the variable contribute
    /// nothing but still decay.
    pub fn observe(&mut self, state: &State) -> Label {
        self.accumulated *= self.decay;
        if let Some(v) = state.get(self.var) {
            self.accumulated += v.max(0.0);
        }
        self.observations += 1;
        self.label()
    }

    /// What the label *would be* after spending one tick in `state` — the
    /// lookahead guards need to refuse exposure-exhausting actions before
    /// taking them.
    pub fn peek(&self, state: &State) -> Label {
        let mut copy = self.clone();
        copy.observe(state)
    }

    /// Reset accumulated exposure (maintenance/decontamination event).
    pub fn reset(&mut self) {
        self.accumulated = 0.0;
    }
}

impl fmt::Display for ExposureMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exposure[{}] {:.2}/{:.2} ({})",
            self.var,
            self.accumulated,
            self.budget,
            self.label()
        )
    }
}

/// Adapts a per-state classifier into a trajectory-aware one: the combined
/// label is the *worse* of the per-state label and every monitor's label.
///
/// # Example
///
/// ```
/// use apdm_statespace::{
///     Classifier, ExposureMonitor, Label, Region, RegionClassifier, StateSchema,
///     TrajectoryClassifier,
/// };
///
/// let schema = StateSchema::builder().var("radiation", 0.0, 10.0).build();
/// // Per-state: anything below 8.0 is good. Trajectory: budget 10 dose-ticks.
/// let per_state = RegionClassifier::new(Region::rect(&[(0.0, 8.0)]));
/// let mut traj = TrajectoryClassifier::new(per_state);
/// traj.add_monitor(ExposureMonitor::new(0.into(), 10.0, 6.0, 1.0));
///
/// let mild = schema.state(&[4.0]).unwrap();
/// assert_eq!(traj.observe(&mild), Label::Good);     // dose 4, state good
/// assert_eq!(traj.observe(&mild), Label::Neutral);  // dose 8: warned
/// assert_eq!(traj.observe(&mild), Label::Bad);      // dose 12: budget blown
/// ```
#[derive(Debug, Clone)]
pub struct TrajectoryClassifier<C> {
    per_state: C,
    monitors: Vec<ExposureMonitor>,
}

impl<C: Classifier> TrajectoryClassifier<C> {
    /// Wrap a per-state classifier.
    pub fn new(per_state: C) -> Self {
        TrajectoryClassifier {
            per_state,
            monitors: Vec::new(),
        }
    }

    /// Attach an exposure monitor.
    pub fn add_monitor(&mut self, monitor: ExposureMonitor) {
        self.monitors.push(monitor);
    }

    /// The attached monitors.
    pub fn monitors(&self) -> &[ExposureMonitor] {
        &self.monitors
    }

    /// The per-state classifier.
    pub fn per_state(&self) -> &C {
        &self.per_state
    }

    /// Observe one tick in `state`: updates every monitor and returns the
    /// combined (worst) label.
    pub fn observe(&mut self, state: &State) -> Label {
        let mut worst = self.per_state.classify(state);
        for m in &mut self.monitors {
            let l = m.observe(state);
            if l.severity() > worst.severity() {
                worst = l;
            }
        }
        worst
    }

    /// The combined label `state` *would* produce, without committing the
    /// observation.
    pub fn peek(&self, state: &State) -> Label {
        let mut worst = self.per_state.classify(state);
        for m in &self.monitors {
            let l = m.peek(state);
            if l.severity() > worst.severity() {
                worst = l;
            }
        }
        worst
    }

    /// Reset all monitors.
    pub fn reset(&mut self) {
        for m in &mut self.monitors {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Region, RegionClassifier, StateSchema};

    fn schema() -> StateSchema {
        StateSchema::builder().var("dose", 0.0, 10.0).build()
    }

    #[test]
    fn pure_integral_crosses_budget() {
        let mut m = ExposureMonitor::new(VarId(0), 10.0, 6.0, 1.0);
        let s = schema().state(&[4.0]).unwrap();
        assert_eq!(m.observe(&s), Label::Good); // 4
        assert_eq!(m.observe(&s), Label::Neutral); // 8
        assert_eq!(m.observe(&s), Label::Bad); // 12
        assert_eq!(m.observations(), 3);
        assert_eq!(m.remaining(), 0.0);
    }

    #[test]
    fn decay_forgives_old_exposure() {
        // decay 0.5: steady-state accumulation for input v is 2v.
        let mut m = ExposureMonitor::new(VarId(0), 10.0, 8.0, 0.5);
        let s = schema().state(&[4.0]).unwrap();
        for _ in 0..100 {
            m.observe(&s);
        }
        assert!((m.accumulated() - 8.0).abs() < 1e-6);
        assert_eq!(
            m.label(),
            Label::Neutral,
            "steady state sits at the warn band"
        );
    }

    #[test]
    fn zero_decay_only_sees_the_present() {
        let mut m = ExposureMonitor::new(VarId(0), 5.0, 3.0, 0.0);
        let hot = schema().state(&[4.0]).unwrap();
        let cold = schema().state(&[1.0]).unwrap();
        assert_eq!(m.observe(&hot), Label::Neutral);
        assert_eq!(m.observe(&cold), Label::Good, "history fully forgotten");
    }

    #[test]
    fn peek_does_not_commit() {
        let m = ExposureMonitor::new(VarId(0), 5.0, 3.0, 1.0);
        let s = schema().state(&[4.0]).unwrap();
        assert_eq!(m.peek(&s), Label::Neutral);
        assert_eq!(m.accumulated(), 0.0);
        assert_eq!(m.observations(), 0);
    }

    #[test]
    fn reset_restores_budget() {
        let mut m = ExposureMonitor::new(VarId(0), 5.0, 3.0, 1.0);
        let s = schema().state(&[10.0]).unwrap();
        assert_eq!(m.observe(&s), Label::Bad);
        m.reset();
        assert_eq!(m.label(), Label::Good);
        assert_eq!(m.remaining(), 5.0);
    }

    #[test]
    fn missing_variable_contributes_nothing() {
        let mut m = ExposureMonitor::new(VarId(7), 5.0, 3.0, 1.0);
        let s = schema().state(&[10.0]).unwrap();
        assert_eq!(m.observe(&s), Label::Good);
        assert_eq!(m.accumulated(), 0.0);
    }

    #[test]
    fn trajectory_classifier_takes_the_worst_label() {
        let per_state = RegionClassifier::new(Region::rect(&[(0.0, 8.0)]));
        let mut t = TrajectoryClassifier::new(per_state);
        t.add_monitor(ExposureMonitor::new(VarId(0), 10.0, 6.0, 1.0));
        let mild = schema().state(&[4.0]).unwrap();
        let per_state_bad = schema().state(&[9.0]).unwrap();
        // Per-state bad dominates even with fresh budget.
        assert_eq!(t.peek(&per_state_bad), Label::Bad);
        // Cumulative bad dominates even with a per-state-good state.
        assert_eq!(t.observe(&mild), Label::Good);
        assert_eq!(t.observe(&mild), Label::Neutral);
        assert_eq!(t.observe(&mild), Label::Bad);
        t.reset();
        assert_eq!(t.peek(&mild), Label::Good);
    }

    #[test]
    fn individually_good_sequence_is_collectively_bad() {
        // The paper's exact point: every visited state is good per-state,
        // yet the trajectory is bad.
        let per_state = RegionClassifier::new(Region::rect(&[(0.0, 8.0)]));
        let mut t = TrajectoryClassifier::new(per_state);
        t.add_monitor(ExposureMonitor::new(VarId(0), 10.0, 9.0, 1.0));
        let s = schema().state(&[3.0]).unwrap();
        let labels: Vec<Label> = (0..4).map(|_| t.observe(&s)).collect();
        assert_eq!(labels.last(), Some(&Label::Bad));
        assert!(t.per_state().classify(&s).eq(&Label::Good));
    }

    #[test]
    #[should_panic(expected = "warn_at")]
    fn inverted_band_rejected() {
        let _ = ExposureMonitor::new(VarId(0), 5.0, 9.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn invalid_decay_rejected() {
        let _ = ExposureMonitor::new(VarId(0), 5.0, 3.0, 1.5);
    }

    #[test]
    fn display_reports_accumulation() {
        let mut m = ExposureMonitor::new(VarId(0), 5.0, 3.0, 1.0);
        m.observe(&schema().state(&[2.0]).unwrap());
        assert_eq!(m.to_string(), "exposure[x0] 2.00/5.00 (good)");
    }
}
