//! Reachability analysis over discretized state spaces.
//!
//! Supports experiment **F3**: given a transition relation (what the device's
//! logic *can* do) and a good/bad partition, compute which cells can reach a
//! bad cell, whether a guarded logic (one that refuses bad-entering
//! transitions) can still accomplish movement, and the *safe kernel* — the
//! set of states from which the device can operate forever without being
//! forced into a bad state. This makes Section VI.B's claim ("a check which
//! prevents it from ever entering a bad state") analyzable rather than
//! merely asserted.

use std::collections::VecDeque;

use crate::grid::{Grid2, GridLabels};
use crate::Label;

/// A transition relation over grid cells: which neighbouring cells the
/// device's logic can move to in one step.
pub trait TransitionRelation {
    /// Successor cells of `(i, j)`. Must stay within the grid.
    fn successors(&self, grid: &Grid2, i: usize, j: usize) -> Vec<(usize, usize)>;
}

/// 4-connected moves (von Neumann neighbourhood) plus staying put — the
/// canonical "adjust one state variable a notch" logic of Section V.
#[derive(Debug, Clone, Copy, Default)]
pub struct VonNeumannMoves;

impl TransitionRelation for VonNeumannMoves {
    fn successors(&self, grid: &Grid2, i: usize, j: usize) -> Vec<(usize, usize)> {
        let mut out = vec![(i, j)];
        if i > 0 {
            out.push((i - 1, j));
        }
        if i + 1 < grid.nx() {
            out.push((i + 1, j));
        }
        if j > 0 {
            out.push((i, j - 1));
        }
        if j + 1 < grid.ny() {
            out.push((i, j + 1));
        }
        out
    }
}

/// Result of a reachability analysis.
#[derive(Debug, Clone)]
pub struct Reachability {
    nx: usize,
    reachable: Vec<bool>,
}

impl Reachability {
    /// Is cell `(i, j)` reachable from the start set?
    pub fn is_reachable(&self, i: usize, j: usize) -> bool {
        self.reachable[j * self.nx + i]
    }

    /// Number of reachable cells.
    pub fn count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }
}

/// Breadth-first reachability from `start`, moving only through cells allowed
/// by `admit`.
pub fn reachable_from<R: TransitionRelation>(
    grid: &Grid2,
    relation: &R,
    start: (usize, usize),
    admit: impl Fn(usize, usize) -> bool,
) -> Reachability {
    let (nx, ny) = (grid.nx(), grid.ny());
    let mut reachable = vec![false; nx * ny];
    if start.0 < nx && start.1 < ny && admit(start.0, start.1) {
        let mut queue = VecDeque::from([start]);
        reachable[start.1 * nx + start.0] = true;
        while let Some((i, j)) = queue.pop_front() {
            for (si, sj) in relation.successors(grid, i, j) {
                let idx = sj * nx + si;
                if !reachable[idx] && admit(si, sj) {
                    reachable[idx] = true;
                    queue.push_back((si, sj));
                }
            }
        }
    }
    Reachability { nx, reachable }
}

/// Can the unguarded logic reach any bad cell from `start`?
pub fn can_reach_bad<R: TransitionRelation>(
    grid: &Grid2,
    labels: &GridLabels,
    relation: &R,
    start: (usize, usize),
) -> bool {
    let reach = reachable_from(grid, relation, start, |_, _| true);
    for i in 0..grid.nx() {
        for j in 0..grid.ny() {
            if labels.label(i, j) == Label::Bad && reach.is_reachable(i, j) {
                return true;
            }
        }
    }
    false
}

/// Reachable set of the *guarded* logic: transitions into bad cells are
/// refused (Section VI.B's state-space check), so movement is confined to
/// non-bad cells.
pub fn guarded_reachable<R: TransitionRelation>(
    grid: &Grid2,
    labels: &GridLabels,
    relation: &R,
    start: (usize, usize),
) -> Reachability {
    reachable_from(grid, relation, start, |i, j| {
        labels.label(i, j) != Label::Bad
    })
}

/// The safe kernel: cells from which the device always has at least one
/// non-bad successor (possibly staying put) no matter how long it operates.
///
/// Computed as the greatest fixpoint of "non-bad and has a successor inside
/// the kernel". With a stay-put transition this equals the non-bad set, but
/// for relations with forced movement (drift) cells can fall out of the
/// kernel — the paper's "situations ... in which the only possibility ... is
/// an action that would place the device into another bad state".
pub fn safe_kernel<R: TransitionRelation>(
    grid: &Grid2,
    labels: &GridLabels,
    relation: &R,
) -> Vec<Vec<bool>> {
    let (nx, ny) = (grid.nx(), grid.ny());
    let mut kernel: Vec<Vec<bool>> = (0..nx)
        .map(|i| (0..ny).map(|j| labels.label(i, j) != Label::Bad).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..nx {
            for j in 0..ny {
                if !kernel[i][j] {
                    continue;
                }
                let has_safe_successor = relation
                    .successors(grid, i, j)
                    .into_iter()
                    .any(|(si, sj)| kernel[si][sj]);
                if !has_safe_successor {
                    kernel[i][j] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            return kernel;
        }
    }
}

/// A transition relation with forced drift: every step moves at least one
/// cell in the `+x` direction (e.g. fuel depletion, heat accumulation) while
/// optionally also moving in `y`. Used to construct forced-dilemma episodes
/// for experiment **E2**.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriftMoves;

impl TransitionRelation for DriftMoves {
    fn successors(&self, grid: &Grid2, i: usize, j: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        if i + 1 < grid.nx() {
            out.push((i + 1, j));
            if j > 0 {
                out.push((i + 1, j - 1));
            }
            if j + 1 < grid.ny() {
                out.push((i + 1, j + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Region, RegionClassifier, StateSchema};

    fn setup(good: Region) -> (Grid2, GridLabels) {
        let schema = StateSchema::builder()
            .var("x", 0.0, 10.0)
            .var("y", 0.0, 10.0)
            .build();
        let grid = Grid2::new(schema, 10, 10).unwrap();
        let labels = grid.classify(&RegionClassifier::new(good));
        (grid, labels)
    }

    #[test]
    fn unguarded_logic_reaches_bad() {
        let (grid, labels) = setup(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
        assert!(can_reach_bad(&grid, &labels, &VonNeumannMoves, (5, 5)));
    }

    #[test]
    fn guarded_logic_never_reaches_bad() {
        let (grid, labels) = setup(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
        let reach = guarded_reachable(&grid, &labels, &VonNeumannMoves, (5, 5));
        for i in 0..10 {
            for j in 0..10 {
                if reach.is_reachable(i, j) {
                    assert_ne!(
                        labels.label(i, j),
                        Label::Bad,
                        "guard leaked into ({i},{j})"
                    );
                }
            }
        }
        // The guard still leaves the whole good region usable.
        assert_eq!(reach.count(), labels.count(Label::Good));
    }

    #[test]
    fn guarded_start_in_bad_reaches_nothing() {
        let (grid, labels) = setup(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
        let reach = guarded_reachable(&grid, &labels, &VonNeumannMoves, (0, 0));
        assert_eq!(reach.count(), 0);
    }

    #[test]
    fn safe_kernel_with_stay_put_is_nonbad_set() {
        let (grid, labels) = setup(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
        let kernel = safe_kernel(&grid, &labels, &VonNeumannMoves);
        for (i, column) in kernel.iter().enumerate() {
            for (j, &in_kernel) in column.iter().enumerate() {
                assert_eq!(in_kernel, labels.label(i, j) != Label::Bad);
            }
        }
    }

    #[test]
    fn safe_kernel_shrinks_under_forced_drift() {
        // Good region is a column band; drift forces +x each step, so every
        // non-bad cell eventually gets pushed into the bad right side: only
        // cells that can keep moving right inside the band stay safe, and at
        // the band's right edge the kernel is empty.
        let (grid, labels) = setup(Region::rect(&[(2.0, 8.0), (0.0, 10.0)]));
        let kernel = safe_kernel(&grid, &labels, &DriftMoves);
        let kernel_count: usize = kernel.iter().flatten().filter(|&&k| k).count();
        assert_eq!(
            kernel_count, 0,
            "forced drift must eventually push every cell out of the band"
        );
    }

    #[test]
    fn drift_moves_always_advance() {
        let schema = StateSchema::builder()
            .var("x", 0.0, 10.0)
            .var("y", 0.0, 10.0)
            .build();
        let grid = Grid2::new(schema, 10, 10).unwrap();
        for (si, _) in DriftMoves.successors(&grid, 4, 4) {
            assert_eq!(si, 5);
        }
        assert!(DriftMoves.successors(&grid, 9, 4).is_empty());
    }

    #[test]
    fn reachable_from_disallowed_start_is_empty() {
        let (grid, _) = setup(Region::All);
        let reach = reachable_from(&grid, &VonNeumannMoves, (5, 5), |_, _| false);
        assert_eq!(reach.count(), 0);
    }
}
