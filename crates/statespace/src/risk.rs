//! Risk estimation over states and transitions.
//!
//! Section VI.B: "The use of a state preference ontology would work
//! particularly well when combined with risk estimation techniques ... Risk
//! assessment would be particularly useful, for example, when all possible
//! next states may involve losses of human life. Deploying such an approach
//! requires the device to have reliable and up-to-date information about the
//! context, and also to incorporate application-dependent risk factors."

use std::fmt;
use std::sync::Arc;

use crate::{Region, State, VarId};

/// Estimates the risk (expected harm) of occupying a state. Higher is worse.
///
/// Risk is distinct from the good/bad classification: classification is a
/// hard safety boundary, risk is a graded quantity used to rank states within
/// a class or to modulate utility.
pub trait RiskEstimator {
    /// Risk of occupying `state`, in `[0, +inf)`.
    fn risk(&self, state: &State) -> f64;

    /// Risk of the transition `from -> to`. Defaults to destination risk plus
    /// a small churn term proportional to the distance travelled — sudden
    /// large state changes are themselves risky.
    fn transition_risk(&self, from: &State, to: &State) -> f64 {
        self.risk(to) + 0.01 * from.normalized_distance(to)
    }
}

impl<R: RiskEstimator + ?Sized> RiskEstimator for &R {
    fn risk(&self, state: &State) -> f64 {
        (**self).risk(state)
    }
}

impl<R: RiskEstimator + ?Sized> RiskEstimator for Arc<R> {
    fn risk(&self, state: &State) -> f64 {
        (**self).risk(state)
    }
}

/// Linear risk: a weighted sum of normalized variable values plus a bias.
///
/// The i-th weight multiplies the i-th variable normalized into `[0, 1]`, so
/// weights are comparable across variables of different spans. Negative
/// weights model variables whose *high* values are protective.
///
/// # Example
///
/// ```
/// use apdm_statespace::{LinearRisk, RiskEstimator, StateSchema};
///
/// let schema = StateSchema::builder().var("speed", 0.0, 10.0).build();
/// let risk = LinearRisk::new(vec![1.0], 0.0);
/// let slow = schema.state(&[1.0]).unwrap();
/// let fast = schema.state(&[9.0]).unwrap();
/// assert!(risk.risk(&fast) > risk.risk(&slow));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRisk {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearRisk {
    /// Build from per-variable weights and a bias.
    pub fn new(weights: Vec<f64>, bias: f64) -> Self {
        LinearRisk { weights, bias }
    }

    /// Uniform risk: every variable contributes equally.
    pub fn uniform(n_vars: usize) -> Self {
        LinearRisk {
            weights: vec![1.0 / n_vars.max(1) as f64; n_vars],
            bias: 0.0,
        }
    }

    /// The per-variable weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl RiskEstimator for LinearRisk {
    fn risk(&self, state: &State) -> f64 {
        let mut r = self.bias;
        for (i, w) in self.weights.iter().enumerate() {
            if let (Some(v), Some(spec)) = (state.get(VarId(i)), state.schema().var(VarId(i))) {
                r += w * spec.normalize(v);
            }
        }
        r.max(0.0)
    }
}

/// Risk that spikes inside designated hazard regions.
///
/// Models "application-dependent risk factors which may be very specialized
/// ... for specific situations and contexts": each hazard region carries its
/// own severity.
#[derive(Debug, Clone)]
pub struct HazardRisk {
    hazards: Vec<(Region, f64)>,
    baseline: f64,
}

impl HazardRisk {
    /// Build from `(region, severity)` pairs and a baseline risk.
    pub fn new(hazards: Vec<(Region, f64)>, baseline: f64) -> Self {
        HazardRisk { hazards, baseline }
    }
}

impl RiskEstimator for HazardRisk {
    fn risk(&self, state: &State) -> f64 {
        let hazard: f64 = self
            .hazards
            .iter()
            .filter(|(r, _)| r.contains(state))
            .map(|(_, sev)| *sev)
            .sum();
        (self.baseline + hazard).max(0.0)
    }
}

/// Combines several estimators with weights; also supports a context scale
/// factor for situation-dependent amplification (e.g. "humans nearby").
pub struct CompositeRisk {
    parts: Vec<(Arc<dyn RiskEstimator + Send + Sync>, f64)>,
    context_scale: f64,
}

impl CompositeRisk {
    /// An empty composite with neutral context.
    pub fn new() -> Self {
        CompositeRisk {
            parts: Vec::new(),
            context_scale: 1.0,
        }
    }

    /// Add a weighted component.
    pub fn with(
        mut self,
        estimator: impl RiskEstimator + Send + Sync + 'static,
        weight: f64,
    ) -> Self {
        self.parts.push((Arc::new(estimator), weight));
        self
    }

    /// Set the context scale (>= 0); risk is multiplied by it.
    pub fn with_context_scale(mut self, scale: f64) -> Self {
        self.context_scale = scale.max(0.0);
        self
    }

    /// Current context scale.
    pub fn context_scale(&self) -> f64 {
        self.context_scale
    }

    /// Update the context scale in place (e.g. as humans approach).
    pub fn set_context_scale(&mut self, scale: f64) {
        self.context_scale = scale.max(0.0);
    }
}

impl Default for CompositeRisk {
    fn default() -> Self {
        CompositeRisk::new()
    }
}

impl fmt::Debug for CompositeRisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompositeRisk")
            .field("parts", &self.parts.len())
            .field("context_scale", &self.context_scale)
            .finish()
    }
}

impl RiskEstimator for CompositeRisk {
    fn risk(&self, state: &State) -> f64 {
        let base: f64 = self.parts.iter().map(|(e, w)| w * e.risk(state)).sum();
        (base * self.context_scale).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateSchema;

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("x", 0.0, 10.0)
            .var("y", 0.0, 10.0)
            .build()
    }

    #[test]
    fn linear_risk_increases_with_weighted_vars() {
        let r = LinearRisk::new(vec![1.0, 0.0], 0.0);
        let lo = schema().state(&[1.0, 9.0]).unwrap();
        let hi = schema().state(&[9.0, 1.0]).unwrap();
        assert!(r.risk(&hi) > r.risk(&lo));
    }

    #[test]
    fn linear_risk_is_clamped_nonnegative() {
        let r = LinearRisk::new(vec![-5.0, 0.0], 0.0);
        let s = schema().state(&[10.0, 0.0]).unwrap();
        assert_eq!(r.risk(&s), 0.0);
    }

    #[test]
    fn uniform_weights_sum_to_one() {
        let r = LinearRisk::uniform(4);
        assert!((r.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hazard_risk_spikes_inside_regions() {
        let r = HazardRisk::new(
            vec![
                (Region::rect(&[(8.0, 10.0)]), 5.0),
                (Region::rect(&[(0.0, 10.0), (8.0, 10.0)]), 2.0),
            ],
            0.1,
        );
        let safe = schema().state(&[5.0, 5.0]).unwrap();
        let one = schema().state(&[9.0, 5.0]).unwrap();
        let both = schema().state(&[9.0, 9.0]).unwrap();
        assert!((r.risk(&safe) - 0.1).abs() < 1e-12);
        assert!((r.risk(&one) - 5.1).abs() < 1e-12);
        assert!((r.risk(&both) - 7.1).abs() < 1e-12);
    }

    #[test]
    fn composite_weighs_and_scales() {
        let comp = CompositeRisk::new()
            .with(LinearRisk::new(vec![1.0, 0.0], 0.0), 2.0)
            .with(
                HazardRisk::new(vec![(Region::rect(&[(8.0, 10.0)]), 1.0)], 0.0),
                1.0,
            )
            .with_context_scale(3.0);
        let s = schema().state(&[10.0, 0.0]).unwrap();
        // linear = 1.0 * 2.0, hazard = 1.0, scaled by 3.
        assert!((comp.risk(&s) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn context_scale_amplifies_risk() {
        let mut comp = CompositeRisk::new().with(LinearRisk::new(vec![1.0, 0.0], 0.0), 1.0);
        let s = schema().state(&[5.0, 0.0]).unwrap();
        let base = comp.risk(&s);
        comp.set_context_scale(10.0);
        assert!((comp.risk(&s) - 10.0 * base).abs() < 1e-12);
        comp.set_context_scale(-1.0);
        assert_eq!(comp.risk(&s), 0.0);
    }

    #[test]
    fn transition_risk_penalizes_churn() {
        let r = LinearRisk::new(vec![0.0, 0.0], 0.5);
        let a = schema().state(&[0.0, 0.0]).unwrap();
        let near = schema().state(&[1.0, 0.0]).unwrap();
        let far = schema().state(&[10.0, 10.0]).unwrap();
        assert!(r.transition_risk(&a, &far) > r.transition_risk(&a, &near));
    }
}
