//! State spaces, safeness metrics, preference ontologies, risk estimation and
//! utility (pain/pleasure) functions for policy-based autonomic device
//! management.
//!
//! This crate implements Sections V ("Device Model and Definition of Skynet")
//! and VII ("Ill Defined State Spaces") of *How to Prevent Skynet From
//! Forming* (Calo et al., ICDCS 2018):
//!
//! * A device is characterized by its **state**: the values of a set of
//!   variables describing its sensors, actuators and configuration
//!   ([`StateSchema`], [`State`]).
//! * States are partitioned into **good**, **bad** and **neutral** regions
//!   ([`Label`], [`Region`], [`Classifier`]), with a **safeness metric**
//!   inducing a partial order over states ([`safety`]).
//! * When every candidate next state is bad, a **state-preference ontology**
//!   selects the *less bad* one ([`ontology`]), optionally weighted by a
//!   **risk estimator** ([`risk`]).
//! * When the good/bad function is too complex to specify, the signs of its
//!   **partial derivatives** define a utility ("pain/pleasure") function that
//!   devices climb instead ([`utility`]).
//! * A discretized grid realizes the paper's Figure 3 and supports
//!   reachability analysis over guarded transition relations ([`grid`],
//!   [`reach`]).
//!
//! Participates in experiments **F3**, **E2**, **E6** (see DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use apdm_statespace::{StateSchema, Region, Label, RegionClassifier, Classifier};
//!
//! // Two-variable state space, as in the paper's Figure 3.
//! let schema = StateSchema::builder()
//!     .var("temperature", 0.0, 100.0)
//!     .var("speed", 0.0, 10.0)
//!     .build();
//! let good = Region::rect(&[(20.0, 80.0), (0.0, 5.0)]);
//! let classifier = RegionClassifier::new(good);
//! let state = schema.state(&[50.0, 2.0]).unwrap();
//! assert_eq!(classifier.classify(&state), Label::Good);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod region;
mod state;
mod var;

pub mod grid;
pub mod ontology;
pub mod reach;
pub mod risk;
pub mod safety;
pub mod trajectory;
pub mod utility;

pub use error::StateSpaceError;
pub use region::Region;
pub use state::{State, StateDelta, StateSchema, StateSchemaBuilder};
pub use var::{VarId, VarSpec};

pub use grid::Grid2;
pub use ontology::PreferenceOntology;
pub use risk::{CompositeRisk, LinearRisk, RiskEstimator};
pub use safety::{Label, OracleClassifier, RegionClassifier, SafenessMetric, ThresholdClassifier};
pub use trajectory::{ExposureMonitor, TrajectoryClassifier};
pub use utility::{DerivativeSign, GradientSpec, GradientUtility, UtilityFn};

/// Trait for anything that can label a [`State`] good, bad or neutral.
///
/// The paper (Section V) defines a device's good states as those in which it
/// cannot harm a human and bad states as those in which it can; many states
/// are neutral. Implementations range from explicit [`Region`]s
/// ([`RegionClassifier`]) to safeness thresholds ([`ThresholdClassifier`]) to
/// opaque oracles used in experiments ([`OracleClassifier`]).
///
/// # Example
///
/// ```
/// use apdm_statespace::{Classifier, Label, State, StateSchema};
///
/// struct AlwaysGood;
/// impl Classifier for AlwaysGood {
///     fn classify(&self, _state: &State) -> Label { Label::Good }
/// }
/// let schema = StateSchema::builder().var("x", 0.0, 1.0).build();
/// let s = schema.state(&[0.5]).unwrap();
/// assert!(AlwaysGood.is_good(&s));
/// ```
pub trait Classifier {
    /// Classify a state as good, bad or neutral.
    fn classify(&self, state: &State) -> Label;

    /// Convenience: is the state bad?
    fn is_bad(&self, state: &State) -> bool {
        self.classify(state) == Label::Bad
    }

    /// Convenience: is the state good?
    fn is_good(&self, state: &State) -> bool {
        self.classify(state) == Label::Good
    }
}

impl<C: Classifier + ?Sized> Classifier for &C {
    fn classify(&self, state: &State) -> Label {
        (**self).classify(state)
    }
}

impl<C: Classifier + ?Sized> Classifier for Box<C> {
    fn classify(&self, state: &State) -> Label {
        (**self).classify(state)
    }
}

impl<C: Classifier + ?Sized> Classifier for std::sync::Arc<C> {
    fn classify(&self, state: &State) -> Label {
        (**self).classify(state)
    }
}
