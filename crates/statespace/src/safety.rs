//! Good/bad/neutral labelling and safeness metrics over states.
//!
//! Section V of the paper: "one could consider a 'safeness' (or risk) metric
//! associated with each state. The safeness metric would induce a partial
//! ordering on the set of states. We would like the system to move to states
//! with the highest safeness metric. ... the truly 'bad' states where the
//! safeness is below an acceptable level must be avoided."

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::{Classifier, Region, State};

/// Classification of a state: does the device endanger humans here?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// The device cannot harm a human in this state (normal operation).
    Good,
    /// Neither clearly good nor clearly bad (Section V: "many states may
    /// actually be neither 'good' nor 'bad'").
    Neutral,
    /// The device can harm a human in this state; must never be entered.
    Bad,
}

impl Label {
    /// Severity ordering: `Good < Neutral < Bad`.
    pub fn severity(self) -> u8 {
        match self {
            Label::Good => 0,
            Label::Neutral => 1,
            Label::Bad => 2,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Label::Good => "good",
            Label::Neutral => "neutral",
            Label::Bad => "bad",
        };
        f.write_str(s)
    }
}

/// A safeness metric: higher is safer.
///
/// Induces the paper's partial order on states via [`SafenessMetric::compare`]
/// and a [`Classifier`] via an acceptability band (see
/// [`ThresholdClassifier`]).
pub trait SafenessMetric {
    /// Safeness of a state; higher is safer. Implementations should return
    /// finite values for all in-schema states.
    fn safeness(&self, state: &State) -> f64;

    /// Partial order induced by safeness. Returns `None` when either value is
    /// non-finite (incomparable).
    fn compare(&self, a: &State, b: &State) -> Option<Ordering> {
        let (sa, sb) = (self.safeness(a), self.safeness(b));
        if sa.is_finite() && sb.is_finite() {
            sa.partial_cmp(&sb)
        } else {
            None
        }
    }

    /// Pick the safest of a set of candidate states, breaking ties toward the
    /// earliest candidate. Returns `None` on an empty slice.
    fn safest<'a>(&self, candidates: &'a [State]) -> Option<&'a State> {
        candidates.iter().max_by(|a, b| {
            self.safeness(a)
                .partial_cmp(&self.safeness(b))
                .unwrap_or(Ordering::Equal)
                // max_by keeps the *last* max; invert ties so the first wins.
                .then(Ordering::Greater)
        })
    }
}

impl<M: SafenessMetric + ?Sized> SafenessMetric for &M {
    fn safeness(&self, state: &State) -> f64 {
        (**self).safeness(state)
    }
}

impl<M: SafenessMetric + ?Sized> SafenessMetric for Arc<M> {
    fn safeness(&self, state: &State) -> f64 {
        (**self).safeness(state)
    }
}

/// Classifier from explicit good/bad regions.
///
/// States inside the good region are [`Label::Good`]; inside the bad region
/// (and not good — good wins ties, mirroring the paper's "when in doubt the
/// device asks for help" conservatism about *acting*, not labelling) are
/// [`Label::Bad`]; everything else is [`Label::Neutral`]. With
/// [`RegionClassifier::new`], everything outside the good region is bad
/// (Figure 3's layout).
#[derive(Debug, Clone)]
pub struct RegionClassifier {
    good: Region,
    bad: Region,
}

impl RegionClassifier {
    /// Figure-3 style classifier: one good region, bad everywhere else.
    pub fn new(good: Region) -> Self {
        RegionClassifier {
            bad: good.clone().complement(),
            good,
        }
    }

    /// Classifier with explicit good and bad regions; the remainder is
    /// neutral. Overlap resolves to good.
    pub fn with_regions(good: Region, bad: Region) -> Self {
        RegionClassifier { good, bad }
    }

    /// The good region.
    pub fn good_region(&self) -> &Region {
        &self.good
    }

    /// The bad region.
    pub fn bad_region(&self) -> &Region {
        &self.bad
    }
}

impl Classifier for RegionClassifier {
    fn classify(&self, state: &State) -> Label {
        if self.good.contains(state) {
            Label::Good
        } else if self.bad.contains(state) {
            Label::Bad
        } else {
            Label::Neutral
        }
    }
}

impl SafenessMetric for RegionClassifier {
    /// Safeness falls with distance from the good region: 1 inside the good
    /// region, approaching 0 as violation grows, with bad-labelled states
    /// shifted a band lower so that every bad state is less safe than every
    /// neutral state.
    fn safeness(&self, state: &State) -> f64 {
        let base = 1.0 / (1.0 + self.good.violation(state));
        match self.classify(state) {
            Label::Good => 1.0,
            Label::Neutral => 0.25 + 0.5 * base,
            Label::Bad => 0.5 * base,
        }
    }
}

/// Classifier from a safeness metric and an acceptability band.
///
/// States with safeness at or above `good_at` are good; below `bad_below`
/// they are bad; in between, neutral. This realizes Section V's "the truly
/// bad states where the safeness is below an acceptable level".
pub struct ThresholdClassifier<M> {
    metric: M,
    good_at: f64,
    bad_below: f64,
}

impl<M: SafenessMetric> ThresholdClassifier<M> {
    /// Build from a metric and thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `bad_below > good_at` — the band would be contradictory.
    pub fn new(metric: M, good_at: f64, bad_below: f64) -> Self {
        assert!(bad_below <= good_at, "bad_below must not exceed good_at");
        ThresholdClassifier {
            metric,
            good_at,
            bad_below,
        }
    }

    /// The underlying metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }
}

impl<M: fmt::Debug> fmt::Debug for ThresholdClassifier<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThresholdClassifier")
            .field("metric", &self.metric)
            .field("good_at", &self.good_at)
            .field("bad_below", &self.bad_below)
            .finish()
    }
}

impl<M: SafenessMetric> Classifier for ThresholdClassifier<M> {
    fn classify(&self, state: &State) -> Label {
        let s = self.metric.safeness(state);
        if s >= self.good_at {
            Label::Good
        } else if s < self.bad_below {
            Label::Bad
        } else {
            Label::Neutral
        }
    }
}

impl<M: SafenessMetric> SafenessMetric for ThresholdClassifier<M> {
    fn safeness(&self, state: &State) -> f64 {
        self.metric.safeness(state)
    }
}

/// Classifier wrapping an arbitrary function, used by experiments where the
/// "true" good/bad function is hidden from devices (Section VII) but known to
/// the harness.
pub struct OracleClassifier {
    f: Arc<dyn Fn(&State) -> Label + Send + Sync>,
}

impl OracleClassifier {
    /// Wrap a labelling function.
    pub fn new(f: impl Fn(&State) -> Label + Send + Sync + 'static) -> Self {
        OracleClassifier { f: Arc::new(f) }
    }
}

impl Clone for OracleClassifier {
    fn clone(&self) -> Self {
        OracleClassifier {
            f: Arc::clone(&self.f),
        }
    }
}

impl fmt::Debug for OracleClassifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OracleClassifier").finish_non_exhaustive()
    }
}

impl Classifier for OracleClassifier {
    fn classify(&self, state: &State) -> Label {
        (self.f)(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateSchema;

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("x", 0.0, 10.0)
            .var("y", 0.0, 10.0)
            .build()
    }

    fn st(x: f64, y: f64) -> State {
        schema().state(&[x, y]).unwrap()
    }

    #[test]
    fn label_severity_orders_good_neutral_bad() {
        assert!(Label::Good.severity() < Label::Neutral.severity());
        assert!(Label::Neutral.severity() < Label::Bad.severity());
    }

    #[test]
    fn region_classifier_figure3() {
        let c = RegionClassifier::new(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
        assert_eq!(c.classify(&st(5.0, 5.0)), Label::Good);
        assert_eq!(c.classify(&st(0.0, 0.0)), Label::Bad);
        assert_eq!(c.classify(&st(9.0, 5.0)), Label::Bad);
    }

    #[test]
    fn region_classifier_with_neutral_band() {
        let good = Region::rect(&[(4.0, 6.0), (4.0, 6.0)]);
        let bad = Region::rect(&[(0.0, 2.0), (0.0, 10.0)]);
        let c = RegionClassifier::with_regions(good, bad);
        assert_eq!(c.classify(&st(5.0, 5.0)), Label::Good);
        assert_eq!(c.classify(&st(1.0, 5.0)), Label::Bad);
        assert_eq!(c.classify(&st(8.0, 8.0)), Label::Neutral);
    }

    #[test]
    fn overlap_resolves_to_good() {
        let good = Region::rect(&[(0.0, 5.0)]);
        let bad = Region::rect(&[(0.0, 10.0)]);
        let c = RegionClassifier::with_regions(good, bad);
        assert_eq!(c.classify(&st(3.0, 0.0)), Label::Good);
    }

    #[test]
    fn safeness_orders_good_above_neutral_above_bad() {
        let good = Region::rect(&[(4.0, 6.0), (4.0, 6.0)]);
        let bad = Region::rect(&[(0.0, 1.0), (0.0, 10.0)]);
        let c = RegionClassifier::with_regions(good, bad);
        let g = c.safeness(&st(5.0, 5.0));
        let n = c.safeness(&st(7.0, 5.0));
        let b = c.safeness(&st(0.5, 5.0));
        assert!(g > n && n > b, "expected {g} > {n} > {b}");
    }

    #[test]
    fn safeness_decreases_away_from_good() {
        let c = RegionClassifier::new(Region::rect(&[(4.0, 6.0), (4.0, 6.0)]));
        let near = c.safeness(&st(6.5, 5.0));
        let far = c.safeness(&st(10.0, 5.0));
        assert!(near > far);
    }

    #[test]
    fn compare_induces_partial_order() {
        let c = RegionClassifier::new(Region::rect(&[(4.0, 6.0), (4.0, 6.0)]));
        let inside = st(5.0, 5.0);
        let outside = st(9.0, 9.0);
        assert_eq!(c.compare(&inside, &outside), Some(Ordering::Greater));
        assert_eq!(c.compare(&outside, &inside), Some(Ordering::Less));
        assert_eq!(c.compare(&inside, &inside), Some(Ordering::Equal));
    }

    #[test]
    fn safest_picks_max_and_breaks_ties_first() {
        let c = RegionClassifier::new(Region::rect(&[(4.0, 6.0), (4.0, 6.0)]));
        let a = st(5.0, 5.0); // good
        let b = st(5.5, 5.5); // good, equal safeness
        let d = st(0.0, 0.0); // bad
        let cands = vec![a.clone(), b, d];
        assert_eq!(c.safest(&cands), Some(&a));
        assert_eq!(c.safest(&[]), None);
    }

    #[test]
    fn threshold_classifier_bands() {
        let metric = RegionClassifier::new(Region::rect(&[(4.0, 6.0), (4.0, 6.0)]));
        let c = ThresholdClassifier::new(metric, 0.9, 0.2);
        assert_eq!(c.classify(&st(5.0, 5.0)), Label::Good);
        assert_eq!(c.classify(&st(6.5, 5.0)), Label::Neutral);
    }

    #[test]
    #[should_panic(expected = "bad_below")]
    fn threshold_classifier_rejects_inverted_band() {
        let metric = RegionClassifier::new(Region::All);
        let _ = ThresholdClassifier::new(metric, 0.2, 0.9);
    }

    #[test]
    fn oracle_classifier_delegates() {
        let c = OracleClassifier::new(|s: &State| {
            if s.values()[0] > 5.0 {
                Label::Bad
            } else {
                Label::Good
            }
        });
        assert_eq!(c.classify(&st(6.0, 0.0)), Label::Bad);
        assert_eq!(c.clone().classify(&st(1.0, 0.0)), Label::Good);
    }
}
