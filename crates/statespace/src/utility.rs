//! Utility ("pain/pleasure") functions from partial-derivative signs.
//!
//! Section VII of the paper: when the good/bad function `f(x1..xN)` is too
//! complex to specify, a human may still "define the sign of the partial
//! derivatives (∂f/∂xi) with respect to some (if not all) of the state
//! variables. In those cases, we can write rules that define a utility
//! function for the device ... the utility function may be viewed as a pain
//! or pleasure function for the device, where the pain increases as the
//! device approaches a bad state ... As devices would try to maximize their
//! pleasure and avoid pain, they would prefer to take actions that will not
//! cause harm to the humans."

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::{State, StateDelta, VarId};

/// Known sign of ∂f/∂xi — how variable `i` moves the (hidden) goodness `f`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DerivativeSign {
    /// Increasing the variable makes the state better.
    Positive,
    /// Increasing the variable makes the state worse.
    Negative,
    /// The human could not determine the sign for this variable.
    Unknown,
}

impl DerivativeSign {
    /// Numeric sign: +1, -1 or 0.
    pub fn as_f64(self) -> f64 {
        match self {
            DerivativeSign::Positive => 1.0,
            DerivativeSign::Negative => -1.0,
            DerivativeSign::Unknown => 0.0,
        }
    }
}

/// Per-variable derivative-sign knowledge, optionally weighted.
///
/// This is the entirety of what a device knows about an ill-defined state
/// space: which direction along each axis is "better". Weights let the human
/// express that some variables dominate (e.g. proximity-to-human outweighs
/// battery level).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientSpec {
    signs: Vec<(DerivativeSign, f64)>,
}

impl GradientSpec {
    /// Build from per-variable signs with unit weights.
    pub fn from_signs(signs: &[DerivativeSign]) -> Self {
        GradientSpec {
            signs: signs.iter().map(|&s| (s, 1.0)).collect(),
        }
    }

    /// Build from `(sign, weight)` pairs. Weights must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn from_weighted(signs: &[(DerivativeSign, f64)]) -> Self {
        for (_, w) in signs {
            assert!(
                w.is_finite() && *w >= 0.0,
                "weights must be finite and non-negative"
            );
        }
        GradientSpec {
            signs: signs.to_vec(),
        }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.signs.len()
    }

    /// True when no variables are covered.
    pub fn is_empty(&self) -> bool {
        self.signs.is_empty()
    }

    /// Sign for variable `i` ([`DerivativeSign::Unknown`] beyond the spec).
    pub fn sign(&self, var: VarId) -> DerivativeSign {
        self.signs
            .get(var.0)
            .map(|(s, _)| *s)
            .unwrap_or(DerivativeSign::Unknown)
    }

    /// Weight for variable `i` (0 beyond the spec).
    pub fn weight(&self, var: VarId) -> f64 {
        self.signs.get(var.0).map(|(_, w)| *w).unwrap_or(0.0)
    }

    /// Fraction of variables whose sign is known — the paper notes the signs
    /// may be determinable only "with respect to some (if not all) of the
    /// state variables".
    pub fn coverage(&self) -> f64 {
        if self.signs.is_empty() {
            return 0.0;
        }
        let known = self
            .signs
            .iter()
            .filter(|(s, _)| *s != DerivativeSign::Unknown)
            .count();
        known as f64 / self.signs.len() as f64
    }
}

/// A utility (pleasure minus pain) function over states. Higher is better.
pub trait UtilityFn {
    /// Utility of occupying `state`.
    fn utility(&self, state: &State) -> f64;

    /// Utility change if `delta` were applied to `state`. The default
    /// evaluates both endpoints; implementations with analytic structure can
    /// answer faster.
    fn delta_utility(&self, state: &State, delta: &StateDelta) -> f64 {
        self.utility(&state.apply(delta)) - self.utility(state)
    }

    /// From candidate deltas, pick the index with the highest resulting
    /// utility (ties to the earliest); `None` on an empty slice.
    fn best_delta(&self, state: &State, candidates: &[StateDelta]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let ua = self.delta_utility(state, a);
                let ub = self.delta_utility(state, b);
                ua.partial_cmp(&ub)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(std::cmp::Ordering::Greater)
            })
            .map(|(i, _)| i)
    }
}

impl<U: UtilityFn + ?Sized> UtilityFn for &U {
    fn utility(&self, state: &State) -> f64 {
        (**self).utility(state)
    }
}

impl<U: UtilityFn + ?Sized> UtilityFn for Arc<U> {
    fn utility(&self, state: &State) -> f64 {
        (**self).utility(state)
    }
}

/// Utility built purely from derivative signs: the weighted sum of normalized
/// variable values, each flipped by its sign. Variables with unknown signs
/// contribute nothing.
///
/// This is the paper's pleasure/pain function: pleasure rises as sign-positive
/// variables rise and sign-negative variables fall.
///
/// # Example
///
/// ```
/// use apdm_statespace::{DerivativeSign, GradientSpec, GradientUtility, StateSchema, UtilityFn};
///
/// let schema = StateSchema::builder()
///     .var("distance_to_human", 0.0, 100.0) // farther = safer
///     .var("blade_speed", 0.0, 10.0)        // faster = more dangerous
///     .build();
/// let spec = GradientSpec::from_signs(&[DerivativeSign::Positive, DerivativeSign::Negative]);
/// let u = GradientUtility::new(spec);
/// let safe = schema.state(&[90.0, 1.0]).unwrap();
/// let scary = schema.state(&[5.0, 9.0]).unwrap();
/// assert!(u.utility(&safe) > u.utility(&scary));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradientUtility {
    spec: GradientSpec,
}

impl GradientUtility {
    /// Build from a gradient spec.
    pub fn new(spec: GradientSpec) -> Self {
        GradientUtility { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &GradientSpec {
        &self.spec
    }

    /// The pain component alone: contribution of sign-negative variables
    /// (positive quantity; grows as the device nears bad states).
    pub fn pain(&self, state: &State) -> f64 {
        self.component(state, DerivativeSign::Negative)
    }

    /// The pleasure component alone: contribution of sign-positive variables.
    pub fn pleasure(&self, state: &State) -> f64 {
        self.component(state, DerivativeSign::Positive)
    }

    fn component(&self, state: &State, which: DerivativeSign) -> f64 {
        let mut total = 0.0;
        for i in 0..self.spec.len() {
            let id = VarId(i);
            if self.spec.sign(id) != which {
                continue;
            }
            if let (Some(v), Some(spec)) = (state.get(id), state.schema().var(id)) {
                let n = spec.normalize(v);
                total += self.spec.weight(id)
                    * match which {
                        DerivativeSign::Positive => n,
                        DerivativeSign::Negative => n,
                        DerivativeSign::Unknown => 0.0,
                    };
            }
        }
        total
    }
}

impl UtilityFn for GradientUtility {
    fn utility(&self, state: &State) -> f64 {
        self.pleasure(state) - self.pain(state)
    }
}

/// Utility combining a gradient utility with a risk penalty: the paper notes
/// "the utility may augment the risk function with the value that is
/// determined in satisfying the objective or goal".
pub struct RiskAdjustedUtility<U, R> {
    base: U,
    risk: R,
    risk_weight: f64,
}

impl<U: UtilityFn, R: crate::RiskEstimator> RiskAdjustedUtility<U, R> {
    /// Build from a base utility, a risk estimator and a penalty weight.
    pub fn new(base: U, risk: R, risk_weight: f64) -> Self {
        RiskAdjustedUtility {
            base,
            risk,
            risk_weight,
        }
    }
}

impl<U: fmt::Debug, R: fmt::Debug> fmt::Debug for RiskAdjustedUtility<U, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RiskAdjustedUtility")
            .field("base", &self.base)
            .field("risk", &self.risk)
            .field("risk_weight", &self.risk_weight)
            .finish()
    }
}

impl<U: UtilityFn, R: crate::RiskEstimator> UtilityFn for RiskAdjustedUtility<U, R> {
    fn utility(&self, state: &State) -> f64 {
        self.base.utility(state) - self.risk_weight * self.risk.risk(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearRisk, StateSchema};

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("dist", 0.0, 100.0)
            .var("speed", 0.0, 10.0)
            .var("mystery", 0.0, 1.0)
            .build()
    }

    fn spec() -> GradientSpec {
        GradientSpec::from_signs(&[
            DerivativeSign::Positive,
            DerivativeSign::Negative,
            DerivativeSign::Unknown,
        ])
    }

    #[test]
    fn utility_rises_along_positive_axis() {
        let u = GradientUtility::new(spec());
        let lo = schema().state(&[10.0, 5.0, 0.5]).unwrap();
        let hi = schema().state(&[90.0, 5.0, 0.5]).unwrap();
        assert!(u.utility(&hi) > u.utility(&lo));
    }

    #[test]
    fn utility_falls_along_negative_axis() {
        let u = GradientUtility::new(spec());
        let slow = schema().state(&[50.0, 1.0, 0.5]).unwrap();
        let fast = schema().state(&[50.0, 9.0, 0.5]).unwrap();
        assert!(u.utility(&slow) > u.utility(&fast));
    }

    #[test]
    fn unknown_axis_is_ignored() {
        let u = GradientUtility::new(spec());
        let a = schema().state(&[50.0, 5.0, 0.0]).unwrap();
        let b = schema().state(&[50.0, 5.0, 1.0]).unwrap();
        assert_eq!(u.utility(&a), u.utility(&b));
    }

    #[test]
    fn pain_and_pleasure_decompose_utility() {
        let u = GradientUtility::new(spec());
        let s = schema().state(&[80.0, 3.0, 0.2]).unwrap();
        assert!((u.utility(&s) - (u.pleasure(&s) - u.pain(&s))).abs() < 1e-12);
        assert!(u.pain(&s) > 0.0);
        assert!(u.pleasure(&s) > 0.0);
    }

    #[test]
    fn weights_shift_the_balance() {
        let balanced = GradientUtility::new(GradientSpec::from_weighted(&[
            (DerivativeSign::Positive, 1.0),
            (DerivativeSign::Negative, 1.0),
        ]));
        let pain_heavy = GradientUtility::new(GradientSpec::from_weighted(&[
            (DerivativeSign::Positive, 1.0),
            (DerivativeSign::Negative, 10.0),
        ]));
        let schema = StateSchema::builder()
            .var("a", 0.0, 1.0)
            .var("b", 0.0, 1.0)
            .build();
        let s = schema.state(&[1.0, 0.5]).unwrap();
        assert!(pain_heavy.utility(&s) < balanced.utility(&s));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let _ = GradientSpec::from_weighted(&[(DerivativeSign::Positive, -1.0)]);
    }

    #[test]
    fn coverage_counts_known_signs() {
        assert!((spec().coverage() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(GradientSpec::from_signs(&[]).coverage(), 0.0);
    }

    #[test]
    fn best_delta_climbs_the_gradient() {
        let u = GradientUtility::new(spec());
        let s = schema().state(&[50.0, 5.0, 0.5]).unwrap();
        let candidates = vec![
            StateDelta::single(VarId(0), -10.0), // away from humans' safety
            StateDelta::single(VarId(0), 10.0),  // safer
            StateDelta::single(VarId(1), 2.0),   // more dangerous
        ];
        assert_eq!(u.best_delta(&s, &candidates), Some(1));
        assert_eq!(u.best_delta(&s, &[]), None);
    }

    #[test]
    fn delta_utility_matches_endpoint_difference() {
        let u = GradientUtility::new(spec());
        let s = schema().state(&[50.0, 5.0, 0.5]).unwrap();
        let d = StateDelta::single(VarId(1), -2.0);
        let expected = u.utility(&s.apply(&d)) - u.utility(&s);
        assert!((u.delta_utility(&s, &d) - expected).abs() < 1e-12);
    }

    #[test]
    fn risk_adjusted_utility_penalizes_risky_states() {
        let base = GradientUtility::new(GradientSpec::from_signs(&[DerivativeSign::Unknown]));
        let schema = StateSchema::builder().var("x", 0.0, 1.0).build();
        let u = RiskAdjustedUtility::new(base, LinearRisk::new(vec![1.0], 0.0), 2.0);
        let safe = schema.state(&[0.0]).unwrap();
        let risky = schema.state(&[1.0]).unwrap();
        assert!(u.utility(&safe) > u.utility(&risky));
        assert!((u.utility(&risky) - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn sign_as_f64() {
        assert_eq!(DerivativeSign::Positive.as_f64(), 1.0);
        assert_eq!(DerivativeSign::Negative.as_f64(), -1.0);
        assert_eq!(DerivativeSign::Unknown.as_f64(), 0.0);
    }
}
