//! Chain-integrity properties: every naive corruption of a serialized
//! ledger — single-byte mutation, record deletion, truncation, reordering —
//! is caught by `verify()` on re-import.

use apdm_ledger::{
    Ledger, RotationPolicy, RunEvent, RunRecorder, SegmentedLedger, SegmentedRecorder,
};
use apdm_policy::{AuditEntry, AuditKind};
use proptest::prelude::*;

/// A deterministic sealed ledger exercising every event shape that carries
/// strings, numbers, options and nested structs.
fn sample_ledger(events: usize, seed: u64) -> Ledger {
    let mut rec = RunRecorder::new("properties", seed, 4);
    for i in 0..events as u64 {
        let tick = i / 2 + 1;
        match i % 5 {
            0 => rec.record(
                tick,
                RunEvent::Proposal {
                    device: i % 4,
                    action: "strike".into(),
                },
            ),
            1 => rec.record(
                tick,
                RunEvent::Verdict {
                    device: i % 4,
                    action: "strike".into(),
                    verdict: "deny".into(),
                    reason: format!("harm predicted at ({i}, {})", i + 1),
                },
            ),
            2 => rec.record(
                tick,
                RunEvent::Execution {
                    device: i % 4,
                    action: "dig-hole".into(),
                },
            ),
            3 => rec.record(
                tick,
                RunEvent::Harm {
                    human: i,
                    cause: "fell into hole".into(),
                    device: (i % 2 == 0).then_some(i % 4),
                },
            ),
            _ => rec.record(
                tick,
                RunEvent::Audit(AuditEntry {
                    seq: i,
                    tick,
                    subject: format!("device-{}", i % 4),
                    kind: AuditKind::GuardIntervention,
                    detail: "denied: direct harm".into(),
                }),
            ),
        };
    }
    rec.finish(events as u64 / 2 + 1, events as u64 / 4)
}

/// The same event stream recorded under segment rotation: roll to a new
/// segment whenever the body budget fills, as the serving layer does once
/// per tick.
fn sample_segmented(
    events: usize,
    seed: u64,
    budget: usize,
    keep_sealed: usize,
) -> SegmentedLedger {
    let policy = RotationPolicy {
        max_records: budget,
        max_bytes: 0,
        keep_sealed,
    };
    let mut rec = SegmentedRecorder::new("properties", seed, 4, policy);
    for i in 0..events as u64 {
        let tick = i / 2 + 1;
        rec.record(
            tick,
            RunEvent::Verdict {
                device: i % 4,
                action: "strike".into(),
                verdict: "deny".into(),
                reason: format!("harm predicted at ({i}, {})", i + 1),
            },
        );
        if rec.should_rotate() {
            rec.rotate(tick);
        }
    }
    rec.finish(events as u64 / 2 + 1, events as u64 / 4)
}

/// Re-import corrupted bytes and check whether any layer flags them:
/// UTF-8 decoding, JSONL parsing, or chain/seal verification.
fn corruption_detected(bytes: &[u8]) -> bool {
    match std::str::from_utf8(bytes) {
        Err(_) => true,
        Ok(text) => match Ledger::from_jsonl(text) {
            Err(_) => true,
            Ok(ledger) => ledger.verify().is_err(),
        },
    }
}

proptest! {
    /// Flipping any single byte anywhere in the JSONL export is caught.
    #[test]
    fn single_byte_mutation_is_caught(
        events in 3usize..24,
        seed in 0u64..1000,
        position in 0usize..100_000,
        mask in 1u8..=255,
    ) {
        let jsonl = sample_ledger(events, seed).to_jsonl();
        let mut bytes = jsonl.into_bytes();
        let index = position % bytes.len();
        bytes[index] ^= mask;
        prop_assert!(
            corruption_detected(&bytes),
            "mutation at byte {index} (xor {mask:#04x}) went undetected"
        );
    }

    /// Deleting any single record line is caught, and when the damaged
    /// ledger still parses, verify() localizes the break at the deletion.
    #[test]
    fn record_deletion_is_caught(
        events in 3usize..24,
        seed in 0u64..1000,
        victim in 0usize..10_000,
    ) {
        let ledger = sample_ledger(events, seed);
        let jsonl = ledger.to_jsonl();
        let mut lines: Vec<&str> = jsonl.lines().collect();
        let index = victim % lines.len();
        lines.remove(index);
        let damaged = lines.join("\n");
        let reimported = Ledger::from_jsonl(&damaged).unwrap();
        let corruption = reimported.verify().expect_err("deletion must be detected");
        prop_assert_eq!(corruption.seq, index as u64, "not localized: {}", corruption);
    }

    /// Cutting the tail off at any point is caught by the seal check even
    /// though the remaining prefix chain is internally valid.
    #[test]
    fn truncation_is_caught(
        events in 3usize..24,
        seed in 0u64..1000,
        keep in 0usize..10_000,
    ) {
        let ledger = sample_ledger(events, seed);
        let jsonl = ledger.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        let kept = keep % lines.len(); // strictly fewer lines than recorded
        let damaged = lines[..kept].join("\n");
        let reimported = Ledger::from_jsonl(&damaged).unwrap();
        prop_assert!(reimported.verify_chain().is_ok(), "prefix chain should be valid");
        let corruption = reimported.verify().expect_err("truncation must be detected");
        prop_assert_eq!(corruption.seq, kept as u64);
    }

    /// Swapping any two distinct record lines is caught at the earlier of
    /// the two positions.
    #[test]
    fn reordering_is_caught(
        events in 3usize..24,
        seed in 0u64..1000,
        a in 0usize..10_000,
        b in 0usize..10_000,
    ) {
        let ledger = sample_ledger(events, seed);
        let jsonl = ledger.to_jsonl();
        let mut lines: Vec<&str> = jsonl.lines().collect();
        let i = a % lines.len();
        let mut j = b % lines.len();
        if i == j {
            j = (j + 1) % lines.len();
        }
        lines.swap(i, j);
        let damaged = lines.join("\n");
        let reimported = Ledger::from_jsonl(&damaged).unwrap();
        let corruption = reimported.verify().expect_err("reordering must be detected");
        prop_assert_eq!(corruption.seq, i.min(j) as u64, "not localized: {}", corruption);
    }

    /// Sanity: the untouched export always re-imports and verifies clean.
    #[test]
    fn intact_export_always_verifies(events in 3usize..24, seed in 0u64..1000) {
        let ledger = sample_ledger(events, seed);
        let reimported = Ledger::from_jsonl(&ledger.to_jsonl()).unwrap();
        prop_assert_eq!(&reimported, &ledger);
        prop_assert!(reimported.verify().is_ok());
    }

    /// Crash-safe load: truncate the sealed export at EVERY byte offset and
    /// require `from_jsonl_recovering` to do the right thing at each one —
    /// whole-line prefixes load strictly (no recovery), mid-line cuts drop
    /// exactly the torn final line with a [`TornTail`], and every recovered
    /// prefix still has an intact hash chain. Only the full export passes
    /// the seal check; every shorter prefix is refused by `verify()`.
    #[test]
    fn every_byte_truncation_recovers_or_loads(events in 3usize..10, seed in 0u64..1000) {
        let ledger = sample_ledger(events, seed);
        let jsonl = ledger.to_jsonl();
        let bytes = jsonl.as_bytes();
        let total_lines = jsonl.lines().count();
        for cut in 0..=bytes.len() {
            // The export is ASCII JSON, so every offset is a char boundary.
            let prefix = std::str::from_utf8(&bytes[..cut]).unwrap();
            let line_count = prefix.lines().count();
            // A prefix is "clean" when its last line is a complete record:
            // it ends at a newline, or the cut landed exactly at the end of
            // a line's content (the next byte would have been '\n').
            let clean = cut == 0
                || bytes[cut - 1] == b'\n'
                || bytes.get(cut) == Some(&b'\n');
            let (recovered, torn) = Ledger::from_jsonl_recovering(prefix)
                .expect("truncation must never be a hard error");
            if clean {
                prop_assert!(torn.is_none(), "cut {cut}: spurious recovery");
                prop_assert_eq!(recovered.len(), line_count);
            } else {
                let torn = torn.expect("mid-line cut must report a torn tail");
                prop_assert_eq!(torn.line, line_count, "cut {cut}");
                prop_assert_eq!(recovered.len(), line_count - 1);
                prop_assert!(
                    Ledger::from_jsonl(prefix).is_err(),
                    "strict import must still refuse the torn text"
                );
            }
            prop_assert!(
                recovered.verify_chain().is_ok(),
                "cut {cut}: recovered prefix chain must be intact"
            );
            let sealed = recovered.len() == total_lines;
            prop_assert_eq!(
                recovered.verify().is_ok(),
                sealed,
                "cut {cut}: only the full export may pass the seal check"
            );
        }
    }

    /// Crash-safety across a segment boundary: tear the *final* segment of
    /// a rotated run at EVERY byte offset — including every offset inside
    /// its anchor frame, the record that chains it to the sealed
    /// predecessor — and require a valid recovery point at each one.
    /// Whole-record prefixes keep an intact chain whose anchor still names
    /// the predecessor's head digest; a cut inside the anchor line itself
    /// recovers to empty, and the sealed predecessor then stands on its
    /// own as the fallback recovery point (the ladder `recover_segments`
    /// walks in `apdm-serve`).
    #[test]
    fn every_byte_tear_across_a_segment_boundary_recovers(
        events in 12usize..36,
        seed in 0u64..1000,
        budget in 3usize..8,
        keep_sealed in 0usize..3,
    ) {
        let segmented = sample_segmented(events, seed, budget, keep_sealed);
        prop_assert!(segmented.verify().is_ok());
        let segs = segmented.to_jsonl_segments();
        prop_assert!(segs.len() > 1, "the budget must force a rotation");
        // The boundary under attack: the final segment (opened by the last
        // rotation) and the sealed predecessor its anchor frame names.
        let (_, last_text) = segs.last().unwrap();
        let (_, prev_text) = &segs[segs.len() - 2];
        let prev = Ledger::from_jsonl(prev_text).unwrap();
        prop_assert!(prev.verify_chain().is_ok(), "predecessor must stand on its own");
        let prev_head = prev.head_digest();
        let bytes = last_text.as_bytes();
        let anchor_line_len = last_text.lines().next().unwrap().len();
        for cut in 0..bytes.len() {
            let prefix = std::str::from_utf8(&bytes[..cut]).unwrap();
            let clean = cut == 0 || bytes[cut - 1] == b'\n' || bytes.get(cut) == Some(&b'\n');
            let (recovered, torn) = Ledger::from_jsonl_recovering(prefix)
                .expect("a torn tail must never be a hard error");
            if !clean {
                prop_assert!(torn.is_some(), "cut {cut}: mid-line cut must report a tear");
            }
            prop_assert!(
                recovered.verify_chain().is_ok(),
                "cut {cut}: recovered prefix chain must be intact"
            );
            if recovered.is_empty() {
                // The anchor frame itself is the casualty: nothing of this
                // segment survives, so the cut must lie within its first
                // line — and the predecessor remains a clean fallback.
                prop_assert!(
                    cut <= anchor_line_len,
                    "cut {cut}: only an anchor tear may lose the whole segment"
                );
            } else {
                // Any surviving prefix leads with the anchor, still naming
                // the predecessor's head: pruning-resistant tamper evidence
                // survives the crash.
                match &recovered.records()[0].event {
                    RunEvent::SegmentOpened { prev_head: anchored, .. } => {
                        prop_assert_eq!(*anchored, prev_head, "cut {}", cut);
                    }
                    other => prop_assert!(
                        false,
                        "cut {cut}: recovered segment must lead with its anchor, got {other:?}"
                    ),
                }
            }
        }
    }

    /// A parse failure anywhere *before* the final line is tamper evidence,
    /// not a torn tail: recovery must refuse it like the strict importer.
    #[test]
    fn mid_ledger_damage_is_never_recovered(
        events in 3usize..10,
        seed in 0u64..1000,
        victim in 0usize..10_000,
    ) {
        let jsonl = sample_ledger(events, seed).to_jsonl();
        let mut lines: Vec<String> = jsonl.lines().map(str::to_string).collect();
        // Tear a line that is not the last one.
        let index = victim % (lines.len() - 1);
        let keep = lines[index].len() / 2;
        lines[index].truncate(keep);
        let damaged = lines.join("\n");
        prop_assert!(
            Ledger::from_jsonl_recovering(&damaged).is_err(),
            "damage at line {} must stay a hard error",
            index + 1
        );
    }
}
