//! The hash-chained, append-only ledger and its verification pass.

use std::fmt;
use std::time::Instant;

use apdm_telemetry::{self as telemetry, event, Level};
use serde::{Deserialize, Serialize, Value};

use crate::event::{RunEvent, SnapshotFrame};
use crate::hash::{chain_digest, GENESIS};

/// Latency sampling period for `ledger.append.ns`: appends happen several
/// times per device per tick, so only one in this many pays the clock
/// reads. Verification is rare and long; it is always timed.
const APPEND_LATENCY_SAMPLE_PERIOD: u32 = 8;

thread_local! {
    /// Cached instrument handles: the ledger is on the recorder hot path, so
    /// per-append observations must not touch the registry's name table.
    static APPEND_NS: telemetry::CachedHistogram =
        const { telemetry::CachedHistogram::new("ledger.append.ns") };
    static APPEND_SAMPLER: telemetry::Sampler =
        const { telemetry::Sampler::every(APPEND_LATENCY_SAMPLE_PERIOD) };
    static VERIFY_NS: telemetry::CachedHistogram =
        const { telemetry::CachedHistogram::new("ledger.verify.ns") };
    static CORRUPTION_DETECTED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("ledger.corruption.detected") };
    static TORN_TAIL_RECOVERED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("ledger.torn_tail.recovered") };
}

/// Like [`timed`], but pays the clock reads on a sampled subset of calls.
fn sampled_timed<R>(
    hist: &'static std::thread::LocalKey<telemetry::CachedHistogram>,
    sampler: &'static std::thread::LocalKey<telemetry::Sampler>,
    f: impl FnOnce() -> R,
) -> R {
    if !telemetry::enabled() || !sampler.with(|s| s.sample()) {
        return f();
    }
    let started = Instant::now();
    let out = f();
    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    hist.with(|h| h.record(ns));
    out
}

/// Run `f` under a latency histogram when a telemetry dispatch is
/// installed; a bare call otherwise.
fn timed<R>(
    hist: &'static std::thread::LocalKey<telemetry::CachedHistogram>,
    f: impl FnOnce() -> R,
) -> R {
    if !telemetry::enabled() {
        return f();
    }
    let started = Instant::now();
    let out = f();
    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    hist.with(|h| h.record(ns));
    out
}

/// Build a [`Corruption`], surfacing it through telemetry: a
/// `ledger.corruption` event localizing the record plus a
/// `ledger.corruption.detected` counter (E9 corruption visibility).
fn corruption(seq: u64, reason: String) -> Corruption {
    event!(
        Level::Error,
        "ledger.corruption",
        seq = seq,
        reason = reason.as_str()
    );
    CORRUPTION_DETECTED.with(|c| c.inc());
    Corruption { seq, reason }
}

/// One chained record: position, tick, payload and chained digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerRecord {
    /// Zero-based position in the ledger.
    pub seq: u64,
    /// Simulation tick the event belongs to.
    pub tick: u64,
    /// The recorded occurrence.
    pub event: RunEvent,
    /// FNV-1a digest over the previous record's digest + this record's
    /// canonical payload (see [`crate::hash`]).
    pub digest: u64,
}

/// Verification failure: the first record at which the chain breaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// Position of the first corrupt record; equals [`Ledger::len`] when
    /// the corruption is a missing terminal [`RunEvent::RunFinished`]
    /// (truncation or tail deletion).
    pub seq: u64,
    /// What broke.
    pub reason: String,
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ledger corrupt at record {}: {}", self.seq, self.reason)
    }
}

impl std::error::Error for Corruption {}

/// Import/export failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// A JSONL line failed to parse (1-based line number).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A snapshot payload could not be re-hydrated.
    Snapshot(String),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Parse { line, message } => {
                write!(f, "ledger import failed at line {line}: {message}")
            }
            LedgerError::Snapshot(message) => write!(f, "snapshot restore failed: {message}"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Canonical payload bytes of a record: compact JSON of `[seq, tick, event]`.
///
/// Canonical because the vendored `serde_json` emits no whitespace, struct
/// fields in declaration order, and a fixed float format — two equal events
/// always serialize to identical bytes.
fn canonical_payload(seq: u64, tick: u64, event: &RunEvent) -> String {
    let value = Value::Seq(vec![
        Value::UInt(seq),
        Value::UInt(tick),
        Serialize::to_value(event),
    ]);
    serde_json::to_string(&value).expect("canonical payload serialization cannot fail")
}

/// An append-only, hash-chained event log.
///
/// Records can be appended and read but never modified or removed through
/// this API; [`verify`](Ledger::verify) makes out-of-band modification
/// evident and localizes the first corrupt record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    records: Vec<LedgerRecord>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Append an event, chaining its digest; returns the new record's seq.
    pub fn append(&mut self, tick: u64, event: RunEvent) -> u64 {
        sampled_timed(&APPEND_NS, &APPEND_SAMPLER, || {
            let seq = self.records.len() as u64;
            let payload = canonical_payload(seq, tick, &event);
            let digest = chain_digest(self.head_digest(), payload.as_bytes());
            self.records.push(LedgerRecord {
                seq,
                tick,
                event,
                digest,
            });
            seq
        })
    }

    /// All records in append order.
    pub fn records(&self) -> &[LedgerRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The digest of the last record ([`GENESIS`] for an empty ledger).
    /// Publishing this value out-of-band turns
    /// [`verify_anchored`](Ledger::verify_anchored) into protection against whole-suffix
    /// rewrites, which chain verification alone cannot detect.
    pub fn head_digest(&self) -> u64 {
        self.records.last().map_or(GENESIS, |r| r.digest)
    }

    /// Is the ledger sealed with a terminal [`RunEvent::RunFinished`]?
    pub fn is_sealed(&self) -> bool {
        matches!(
            self.records.last().map(|r| &r.event),
            Some(RunEvent::RunFinished { .. })
        )
    }

    /// Verify chain integrity only (no completeness check). Useful on a
    /// still-recording ledger.
    pub fn verify_chain(&self) -> Result<(), Corruption> {
        timed(&VERIFY_NS, || {
            let mut prev = GENESIS;
            for (position, record) in self.records.iter().enumerate() {
                let seq = position as u64;
                if record.seq != seq {
                    return Err(corruption(
                        seq,
                        format!(
                            "sequence break: position {position} carries seq {} (record deleted or reordered)",
                            record.seq
                        ),
                    ));
                }
                let payload = canonical_payload(record.seq, record.tick, &record.event);
                let expected = chain_digest(prev, payload.as_bytes());
                if record.digest != expected {
                    return Err(corruption(
                        seq,
                        format!(
                            "digest mismatch: stored {:#018x}, chain expects {expected:#018x}",
                            record.digest
                        ),
                    ));
                }
                prev = record.digest;
            }
            Ok(())
        })
    }

    /// Full verification: chain integrity plus the sealed-run check. A
    /// ledger whose tail was truncated or whose final record was deleted has
    /// a perfectly valid chain prefix — the missing terminal
    /// [`RunEvent::RunFinished`] is what gives the amputation away.
    pub fn verify(&self) -> Result<(), Corruption> {
        self.verify_chain()?;
        if self.is_sealed() {
            Ok(())
        } else {
            Err(corruption(
                self.records.len() as u64,
                "not sealed: terminal run-finished record missing (truncated or tail deleted)"
                    .into(),
            ))
        }
    }

    /// [`verify`](Ledger::verify) plus a check of the head digest against an
    /// externally anchored value.
    pub fn verify_anchored(&self, anchored_head: u64) -> Result<(), Corruption> {
        self.verify()?;
        if self.head_digest() == anchored_head {
            Ok(())
        } else {
            Err(corruption(
                self.records.len().saturating_sub(1) as u64,
                format!(
                    "head digest {:#018x} does not match anchor {anchored_head:#018x} (suffix rewritten)",
                    self.head_digest()
                ),
            ))
        }
    }

    /// Snapshot frames in the ledger, with their record seqs.
    pub fn snapshots(&self) -> impl Iterator<Item = (u64, &SnapshotFrame)> {
        self.records.iter().filter_map(|r| match &r.event {
            RunEvent::Snapshot(frame) => Some((r.seq, frame)),
            _ => None,
        })
    }

    /// The latest snapshot taken at or before `tick`, with its record seq.
    pub fn latest_snapshot_at_or_before(&self, tick: u64) -> Option<(u64, &SnapshotFrame)> {
        self.snapshots().filter(|(_, f)| f.tick <= tick).last()
    }

    /// Export as JSONL: one record per line, in append order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&serde_json::to_string(record).expect("record serialization cannot fail"));
            out.push('\n');
        }
        out
    }

    /// Import from JSONL. Parse failures report the 1-based line number;
    /// call [`verify`](Ledger::verify) afterwards to check integrity.
    pub fn from_jsonl(text: &str) -> Result<Ledger, LedgerError> {
        let mut records = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record: LedgerRecord =
                serde_json::from_str(line).map_err(|e| LedgerError::Parse {
                    line: idx + 1,
                    message: e.to_string(),
                })?;
            records.push(record);
        }
        Ok(Ledger { records })
    }

    /// Import from JSONL, tolerating a torn *final* line (a mid-write
    /// crash): when only the last non-empty line fails to parse, it is
    /// dropped and the valid prefix is returned together with a
    /// [`TornTail`] describing the recovery, surfaced as a telemetry
    /// warning. A parse failure anywhere *before* the last line is still a
    /// hard [`LedgerError::Parse`] — only the append point can legitimately
    /// be torn, so earlier damage remains tamper evidence.
    ///
    /// The recovered ledger is unsealed (its terminal record was cut), so
    /// [`verify`](Ledger::verify) still refuses it; use
    /// [`verify_chain`](Ledger::verify_chain) on the prefix.
    pub fn from_jsonl_recovering(text: &str) -> Result<(Ledger, Option<TornTail>), LedgerError> {
        match Ledger::from_jsonl(text) {
            Ok(ledger) => Ok((ledger, None)),
            Err(LedgerError::Parse { line, message }) => {
                let last_nonempty = text
                    .lines()
                    .enumerate()
                    .filter(|(_, l)| !l.trim().is_empty())
                    .map(|(idx, _)| idx + 1)
                    .last();
                if last_nonempty != Some(line) {
                    return Err(LedgerError::Parse { line, message });
                }
                let prefix: String = text
                    .lines()
                    .take(line - 1)
                    .flat_map(|l| [l, "\n"])
                    .collect();
                let ledger = Ledger::from_jsonl(&prefix)?;
                event!(
                    Level::Warn,
                    "ledger.torn_tail",
                    line = line as u64,
                    recovered_records = ledger.len() as u64
                );
                TORN_TAIL_RECOVERED.with(|c| c.inc());
                Ok((ledger, Some(TornTail { line, message })))
            }
            Err(other) => Err(other),
        }
    }
}

/// Evidence that [`Ledger::from_jsonl_recovering`] dropped a torn final
/// line (simulated mid-write crash) and recovered the valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// 1-based line number of the torn line that was dropped.
    pub line: usize,
    /// The parser's message for the torn line.
    pub message: String,
}

impl fmt::Display for TornTail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "torn final line {} dropped (mid-write crash): {}",
            self.line, self.message
        )
    }
}

impl fmt::Display for Ledger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ledger: {} records, head {:#018x}, {}",
            self.len(),
            self.head_digest(),
            if self.is_sealed() { "sealed" } else { "open" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ledger {
        let mut ledger = Ledger::new();
        ledger.append(
            0,
            RunEvent::RunStarted {
                experiment: "t".into(),
                seed: 1,
                devices: 2,
            },
        );
        ledger.append(
            1,
            RunEvent::Proposal {
                device: 0,
                action: "strike".into(),
            },
        );
        ledger.append(
            1,
            RunEvent::Execution {
                device: 0,
                action: "strike".into(),
            },
        );
        ledger.append(
            2,
            RunEvent::Harm {
                human: 0,
                cause: "direct strike".into(),
                device: Some(0),
            },
        );
        ledger.append(2, RunEvent::RunFinished { ticks: 2, harms: 1 });
        ledger
    }

    #[test]
    fn intact_ledger_verifies() {
        let ledger = sample();
        assert!(ledger.verify().is_ok());
        assert!(ledger.is_sealed());
    }

    #[test]
    fn payload_mutation_is_localized() {
        let mut ledger = sample();
        if let RunEvent::Proposal { action, .. } = &mut ledger.records[1].event {
            *action = "retreat".into();
        }
        let corruption = ledger.verify().unwrap_err();
        assert_eq!(corruption.seq, 1);
        assert!(
            corruption.reason.contains("digest mismatch"),
            "{corruption}"
        );
    }

    #[test]
    fn digest_mutation_is_localized() {
        let mut ledger = sample();
        ledger.records[3].digest ^= 1;
        assert_eq!(ledger.verify().unwrap_err().seq, 3);
    }

    #[test]
    fn record_deletion_breaks_the_chain() {
        let mut ledger = sample();
        ledger.records.remove(2);
        let corruption = ledger.verify().unwrap_err();
        assert_eq!(corruption.seq, 2);
        assert!(corruption.reason.contains("sequence break"), "{corruption}");
    }

    #[test]
    fn truncation_is_detected_by_the_seal() {
        let mut ledger = sample();
        ledger.records.truncate(3);
        assert!(
            ledger.verify_chain().is_ok(),
            "prefix chain itself is valid"
        );
        let corruption = ledger.verify().unwrap_err();
        assert_eq!(corruption.seq, 3);
        assert!(corruption.reason.contains("not sealed"), "{corruption}");
    }

    #[test]
    fn reordering_is_detected() {
        let mut ledger = sample();
        ledger.records.swap(1, 2);
        assert_eq!(ledger.verify().unwrap_err().seq, 1);
    }

    #[test]
    fn anchored_verification_catches_suffix_rewrite() {
        let ledger = sample();
        let anchor = ledger.head_digest();
        // A consistent forgery: rebuild the ledger with one event changed
        // and every digest recomputed. Chain verification passes...
        let mut forged = Ledger::new();
        for record in ledger.records() {
            let mut event = record.event.clone();
            if let RunEvent::Harm { human, .. } = &mut event {
                *human = 99;
            }
            forged.append(record.tick, event);
        }
        assert!(
            forged.verify().is_ok(),
            "forged chain is internally consistent"
        );
        // ...but the anchored head gives it away.
        assert!(forged.verify_anchored(anchor).is_err());
        assert!(ledger.verify_anchored(anchor).is_ok());
    }

    #[test]
    fn corruption_detection_is_visible_through_telemetry() {
        use std::rc::Rc;

        let collector = Rc::new(telemetry::RingCollector::new(64));
        let guard = telemetry::install(collector.clone());
        let registry = telemetry::current_registry().unwrap();

        let mut tampered = sample();
        tampered.records[3].digest ^= 1;
        assert_eq!(
            tampered
                .verify_anchored(tampered.head_digest())
                .unwrap_err()
                .seq,
            3
        );
        // A clean anchored verification emits nothing.
        assert!(sample().verify_anchored(sample().head_digest()).is_ok());
        drop(guard);

        let detected = registry
            .counter_values()
            .into_iter()
            .find(|(n, _)| n == "ledger.corruption.detected")
            .map(|(_, v)| v);
        assert_eq!(detected, Some(1));
        let events: Vec<_> = collector
            .records()
            .into_iter()
            .filter(|r| r.name == "ledger.corruption")
            .collect();
        assert_eq!(events.len(), 1);
        assert!(events[0]
            .fields
            .iter()
            .any(|(k, v)| k == "seq" && *v == telemetry::FieldValue::U64(3)));
        // Verification latency was sampled for both passes.
        let verify_count = registry
            .histogram_summaries()
            .into_iter()
            .find(|(n, _)| n == "ledger.verify.ns")
            .map(|(_, s)| s.count)
            .unwrap_or(0);
        assert!(verify_count >= 2);
    }

    #[test]
    fn jsonl_roundtrip_preserves_the_chain() {
        let ledger = sample();
        let jsonl = ledger.to_jsonl();
        assert_eq!(jsonl.lines().count(), 5);
        let back = Ledger::from_jsonl(&jsonl).unwrap();
        assert_eq!(back, ledger);
        assert!(back.verify().is_ok());
    }

    #[test]
    fn jsonl_import_reports_the_bad_line() {
        let ledger = sample();
        let mut jsonl = ledger.to_jsonl();
        jsonl.push_str("{not json\n");
        match Ledger::from_jsonl(&jsonl) {
            Err(LedgerError::Parse { line, .. }) => assert_eq!(line, 6),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_lookup_finds_latest_at_or_before() {
        let mut ledger = Ledger::new();
        let frame = |tick| {
            RunEvent::Snapshot(SnapshotFrame {
                tick,
                rng: [0; 4],
                world: Value::Null,
                metrics: Value::Null,
                devices: vec![],
            })
        };
        ledger.append(
            0,
            RunEvent::RunStarted {
                experiment: "t".into(),
                seed: 1,
                devices: 0,
            },
        );
        ledger.append(10, frame(10));
        ledger.append(20, frame(20));
        ledger.append(
            20,
            RunEvent::RunFinished {
                ticks: 20,
                harms: 0,
            },
        );
        assert_eq!(ledger.snapshots().count(), 2);
        assert_eq!(ledger.latest_snapshot_at_or_before(15).unwrap().1.tick, 10);
        assert_eq!(ledger.latest_snapshot_at_or_before(25).unwrap().1.tick, 20);
        assert!(ledger.latest_snapshot_at_or_before(5).is_none());
    }
}
