//! The chained digest: 64-bit FNV-1a over previous digest + payload.
//!
//! FNV-1a is not a cryptographic hash; it is the strongest digest available
//! from std alone (the issue constrains the crate to std + existing
//! workspace deps). It is entirely adequate for the *accidental/naive*
//! tamper model the E9 experiment measures — any byte-level corruption that
//! does not deliberately recompute the chain is detected — and the chaining
//! structure is hash-agnostic, so a cryptographic digest can be swapped in
//! without touching the ledger layout.

/// FNV-1a 64-bit offset basis; also the chain's genesis digest (the
/// "previous digest" of record 0).
pub const GENESIS: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Digest of one record: FNV-1a over the previous record's digest (little
/// endian) followed by the record's canonical payload bytes.
pub fn chain_digest(prev: u64, payload: &[u8]) -> u64 {
    let mut hash = GENESIS;
    for byte in prev.to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    for &byte in payload {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(chain_digest(GENESIS, b"abc"), chain_digest(GENESIS, b"abc"));
    }

    #[test]
    fn digest_depends_on_payload() {
        assert_ne!(chain_digest(GENESIS, b"abc"), chain_digest(GENESIS, b"abd"));
    }

    #[test]
    fn digest_depends_on_previous_digest() {
        assert_ne!(chain_digest(1, b"abc"), chain_digest(2, b"abc"));
    }

    #[test]
    fn empty_payload_still_chains() {
        assert_ne!(
            chain_digest(GENESIS, b""),
            chain_digest(chain_digest(GENESIS, b""), b"")
        );
    }
}
