//! Tamper-evident flight recorder for simulation runs.
//!
//! Section VI of the paper assumes every prevention mechanism "can be
//! performed in a manner that is tamper-proof" and that break-glass use
//! "would require support for audits ... \[and\] the collection of
//! comprehensive context information". The in-memory
//! [`AuditLog`](apdm_policy::AuditLog) satisfies neither: it vanishes with
//! the process and any byte of it can be rewritten silently. This crate
//! supplies the durable half of the audit story:
//!
//! - [`Ledger`] — an append-only event log where each record's 64-bit
//!   FNV-1a digest chains over the previous record's digest plus the
//!   record's canonical JSON payload. [`Ledger::verify`] localizes the
//!   first corrupted record; random mutation, deletion, truncation and
//!   reordering are all caught (see the crate's property tests).
//! - [`SnapshotFrame`] — periodic checkpoint frames carrying world, fleet
//!   and RNG state so a run can resume mid-stream instead of from tick 0.
//! - [`Replayer`] — compares a re-executed event stream against the
//!   recorded reference and reports the first divergence.
//! - JSONL import/export ([`Ledger::to_jsonl`] / [`Ledger::from_jsonl`])
//!   so ledgers survive on disk and can be shipped for forensics.
//! - [`SegmentedRecorder`] / [`SegmentedLedger`] — segment rotation for
//!   long-lived serving processes: the ledger rolls at a configurable
//!   record/byte budget, each sealed segment's head digest is anchored in
//!   its successor's first frame, and retention prunes old segments while
//!   the retained chain stays verifiable (see [`segment`]).
//!
//! # Threat model
//!
//! The chain makes *inconsistent* tampering evident: an attacker who edits
//! a record without recomputing every later digest is localized by
//! [`Ledger::verify`]. An attacker who can rewrite the whole suffix can
//! forge a consistent chain; defeating that requires anchoring the head
//! digest outside the attacker's reach — publish [`Ledger::head_digest`]
//! (e.g. to the tripartite governor) and check with
//! [`Ledger::verify_anchored`].
//!
//! # Example
//!
//! ```
//! use apdm_ledger::{Ledger, RunEvent, RunRecorder};
//!
//! let mut rec = RunRecorder::new("demo", 42, 1);
//! rec.record(1, RunEvent::Proposal { device: 0, action: "strike".into() });
//! rec.record(1, RunEvent::Verdict {
//!     device: 0,
//!     action: "strike".into(),
//!     verdict: "deny".into(),
//!     reason: "direct harm predicted".into(),
//! });
//! let ledger = rec.finish(1, 0);
//! assert!(ledger.verify().is_ok());
//!
//! // Round-trip through JSONL and verify again.
//! let reloaded = Ledger::from_jsonl(&ledger.to_jsonl()).unwrap();
//! assert!(reloaded.verify().is_ok());
//! assert_eq!(reloaded.len(), 4); // RunStarted + 2 events + RunFinished
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hash;
pub mod ledger;
pub mod name;
pub mod recorder;
pub mod replay;
pub mod segment;

pub use event::{DeviceSnap, RunEvent, SnapshotFrame};
pub use ledger::{Corruption, Ledger, LedgerError, LedgerRecord, TornTail};
pub use name::{Name, NamePool};
pub use recorder::RunRecorder;
pub use replay::{Divergence, ReplayReport, Replayer, StreamReplayer};
pub use segment::{
    RotationPolicy, SegmentCorruption, SegmentReport, SegmentedLedger, SegmentedRecorder,
};
