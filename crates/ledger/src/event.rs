//! The one event vocabulary every layer records through.
//!
//! `RunEvent` subsumes the bespoke bookkeeping that used to live in three
//! places (guard audit entries, metrics counters, experiment report rows):
//! guard verdicts, executed actions, fault injections, tamper attempts,
//! break-glass grants, deactivations and harms all land here, and
//! [`AuditEntry`] records flow through the single [`RunEvent::Audit`]
//! bridge instead of a parallel struct.

use crate::name::Name;
use apdm_policy::AuditEntry;
use serde::{Deserialize, Serialize, Value};

/// One occurrence in a recorded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    /// The run began (always record 0 of a ledger).
    RunStarted {
        /// Experiment or scenario name.
        experiment: String,
        /// Master seed of the run.
        seed: u64,
        /// Number of devices in the fleet.
        devices: u64,
    },
    /// A device's policy engine proposed an action.
    Proposal {
        /// Proposing device.
        device: u64,
        /// Proposed action name (interned — see [`crate::name`]).
        action: Name,
    },
    /// A guard stack intervened on a proposal (deny / replace / obligations).
    Verdict {
        /// Subject device.
        device: u64,
        /// The proposed action the verdict concerns.
        action: Name,
        /// Verdict kind: `deny`, `replace:<substitute>`, or
        /// `allow+obligations`.
        verdict: Name,
        /// The guard's reason (empty for obligation-only verdicts).
        reason: String,
    },
    /// An action actually executed against the world.
    Execution {
        /// Executing device.
        device: u64,
        /// Effective action name (post-guard).
        action: Name,
    },
    /// A previously incurred obligation executed.
    ObligationExecuted {
        /// Obligated device.
        device: u64,
        /// Obligation action name.
        action: Name,
    },
    /// A device was deactivated (Section VI.C).
    Deactivation {
        /// Deactivated device.
        device: u64,
        /// Why (controller reason).
        reason: String,
    },
    /// A fault-injection pathway fired (Section IV).
    FaultInjected {
        /// Target device.
        device: u64,
        /// Pathway name.
        pathway: String,
    },
    /// An attacker probed a guard's tamper status (Section IV backdoors /
    /// reprogramming vs Section VI's tamper-proofness premise).
    TamperAttempt {
        /// Device whose guard was probed.
        device: u64,
        /// Whether the guard is compromised after the attempt.
        compromised: bool,
    },
    /// A device's connectivity-dependent safety machinery changed
    /// degradation state (isolated from / reconnected to its coordinator)
    /// under its configured fail mode (experiment E12).
    Degraded {
        /// The device whose comms state changed.
        device: u64,
        /// The engaged fail mode (`open`, `closed`, `local-fallback`).
        mode: String,
        /// `true` when the device became isolated, `false` on reconnect.
        isolated: bool,
    },
    /// A human came to harm.
    Harm {
        /// Harmed human id.
        human: u64,
        /// Harm cause (display form).
        cause: String,
        /// Responsible device, when attributable.
        device: Option<u64>,
    },
    /// A policy-layer audit entry (the single bridge for
    /// [`apdm_policy::AuditLog`] content: break-glass grants/denials, guard
    /// interventions, obligation violations, operator notes).
    Audit(AuditEntry),
    /// A checkpoint frame.
    Snapshot(SnapshotFrame),
    /// A rotated ledger segment opened (always record 0 of every segment
    /// after the first). The frame anchors the predecessor segment: its
    /// head digest and record count are chained into this segment, so a
    /// rewrite of any sealed predecessor breaks the anchor even after the
    /// predecessor itself has been pruned by retention.
    SegmentOpened {
        /// Zero-based index of the segment this record opens.
        segment: u64,
        /// Head digest of the predecessor segment (its anchor).
        prev_head: u64,
        /// Record count of the predecessor segment, seal included.
        prev_records: u64,
    },
    /// A rotated segment sealed (always the final record of every segment
    /// except the last, which seals with [`RunEvent::RunFinished`]).
    SegmentSealed {
        /// Zero-based index of the segment this record seals.
        segment: u64,
        /// Record count of the sealed segment, this seal included.
        records: u64,
    },
    /// The run ended (always the final record of a sealed ledger).
    RunFinished {
        /// Ticks simulated.
        ticks: u64,
        /// Total harms over the run.
        harms: u64,
    },
}

impl RunEvent {
    /// Stable lowercase tag for displays and filters.
    pub fn kind(&self) -> &'static str {
        match self {
            RunEvent::RunStarted { .. } => "run-started",
            RunEvent::Proposal { .. } => "proposal",
            RunEvent::Verdict { .. } => "verdict",
            RunEvent::Execution { .. } => "execution",
            RunEvent::ObligationExecuted { .. } => "obligation-executed",
            RunEvent::Deactivation { .. } => "deactivation",
            RunEvent::FaultInjected { .. } => "fault-injected",
            RunEvent::TamperAttempt { .. } => "tamper-attempt",
            RunEvent::Degraded { .. } => "degraded",
            RunEvent::Harm { .. } => "harm",
            RunEvent::Audit(_) => "audit",
            RunEvent::Snapshot(_) => "snapshot",
            RunEvent::SegmentOpened { .. } => "segment-opened",
            RunEvent::SegmentSealed { .. } => "segment-sealed",
            RunEvent::RunFinished { .. } => "run-finished",
        }
    }

    /// Is this a checkpoint frame?
    pub fn is_snapshot(&self) -> bool {
        matches!(self, RunEvent::Snapshot(_))
    }
}

/// Frozen per-device state inside a [`SnapshotFrame`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSnap {
    /// Device id.
    pub id: u64,
    /// State-vector values in schema order.
    pub values: Vec<f64>,
    /// Whether the device was active.
    pub active: bool,
    /// World x position.
    pub x: i32,
    /// World y position.
    pub y: i32,
    /// Opaque guard-integrity payload (the sim layer stores the pre-action
    /// check's `TamperStatus` here; `Null` when no guard is installed).
    pub tamper: Value,
}

/// A checkpoint: everything needed to resume a run at `tick + 1`.
///
/// World and metrics are stored as opaque [`serde::Value`] trees so this
/// crate does not depend on the sim layer; the sim re-hydrates them with
/// its own `Deserialize` impls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotFrame {
    /// Tick *after* which the frame was taken (resume at `tick + 1`).
    pub tick: u64,
    /// The run RNG's four xoshiro256++ state words.
    pub rng: [u64; 4],
    /// Serialized `World`.
    pub world: Value,
    /// Serialized run `Metrics`.
    pub metrics: Value,
    /// Per-device state in id order.
    pub devices: Vec<DeviceSnap>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_policy::AuditKind;

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            RunEvent::RunStarted {
                experiment: "e9".into(),
                seed: 7,
                devices: 3,
            },
            RunEvent::Proposal {
                device: 1,
                action: "strike".into(),
            },
            RunEvent::Verdict {
                device: 1,
                action: "strike".into(),
                verdict: "deny".into(),
                reason: "harm".into(),
            },
            RunEvent::Harm {
                human: 4,
                cause: "direct strike".into(),
                device: Some(1),
            },
            RunEvent::Degraded {
                device: 6,
                mode: "local-fallback".into(),
                isolated: true,
            },
            RunEvent::Audit(AuditEntry {
                seq: 0,
                tick: 3,
                subject: "device-1".into(),
                kind: AuditKind::GuardIntervention,
                detail: "denied".into(),
            }),
            RunEvent::Snapshot(SnapshotFrame {
                tick: 10,
                rng: [1, 2, 3, 4],
                world: Value::Null,
                metrics: Value::Null,
                devices: vec![DeviceSnap {
                    id: 0,
                    values: vec![0.5],
                    active: true,
                    x: -2,
                    y: 7,
                    tamper: Value::Null,
                }],
            }),
            RunEvent::SegmentOpened {
                segment: 3,
                prev_head: 0xdead_beef_cafe_f00d,
                prev_records: 512,
            },
            RunEvent::SegmentSealed {
                segment: 3,
                records: 640,
            },
            RunEvent::RunFinished {
                ticks: 100,
                harms: 2,
            },
        ];
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: RunEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event, "roundtrip failed for {json}");
        }
    }

    #[test]
    fn kind_tags_are_stable() {
        assert_eq!(
            RunEvent::Proposal {
                device: 0,
                action: Name::default()
            }
            .kind(),
            "proposal"
        );
        assert_eq!(
            RunEvent::RunFinished { ticks: 0, harms: 0 }.kind(),
            "run-finished"
        );
        assert!(RunEvent::Snapshot(SnapshotFrame {
            tick: 0,
            rng: [0; 4],
            world: Value::Null,
            metrics: Value::Null,
            devices: vec![],
        })
        .is_snapshot());
    }
}
