//! Segment rotation for long-lived recording processes.
//!
//! A serving process that records every decision through one [`Ledger`]
//! grows that ledger without bound. Rotation bounds it: the recorder rolls
//! to a fresh segment whenever the current one exceeds a configurable
//! record or byte budget. Each segment is an independent hash chain rooted
//! at [`GENESIS`](crate::hash::GENESIS), so the existing per-ledger verification applies
//! unchanged — and the chains are *anchored* to each other: the first
//! record of every successor segment is a [`RunEvent::SegmentOpened`]
//! frame carrying the predecessor's head digest and record count. Because
//! that frame is itself inside the successor's hash chain, rewriting any
//! sealed predecessor breaks the anchor even after retention has pruned
//! the predecessor's bytes — E9's tamper-evidence survives rotation.
//!
//! Layout invariants, checked by [`SegmentedLedger::verify`]:
//!
//! - segment 0 opens with [`RunEvent::RunStarted`]; every later segment
//!   opens with a `SegmentOpened` anchor frame,
//! - every non-final segment seals with [`RunEvent::SegmentSealed`]; the
//!   final segment seals with [`RunEvent::RunFinished`],
//! - each anchor's `prev_head` / `prev_records` match the predecessor.
//!
//! Retention (`keep_sealed`) prunes the oldest sealed segments while the
//! anchors embedded in their successors survive; the chain from the first
//! retained segment onward stays fully verifiable.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::event::RunEvent;
use crate::ledger::{Corruption, Ledger, LedgerError};

/// When and how a [`SegmentedRecorder`] rolls to a new segment.
///
/// A budget of zero disables that trigger; the all-zero default never
/// rotates, which makes a segmented recorder byte-identical to a plain
/// [`crate::RunRecorder`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RotationPolicy {
    /// Roll when the current segment holds at least this many records
    /// beyond its header frames (0 = no record budget).
    pub max_records: usize,
    /// Roll when the current segment's serialized JSONL exceeds this many
    /// bytes (0 = no byte budget).
    pub max_bytes: usize,
    /// Retain at most this many *sealed* segments, pruning the oldest
    /// (0 = keep everything). The open segment never counts.
    pub keep_sealed: usize,
}

impl RotationPolicy {
    /// A policy rotating every `max_records` records, keeping all segments.
    pub fn by_records(max_records: usize) -> Self {
        RotationPolicy {
            max_records,
            ..RotationPolicy::default()
        }
    }

    /// Does any trigger fire? (Retention alone never rotates.)
    pub fn enabled(&self) -> bool {
        self.max_records > 0 || self.max_bytes > 0
    }
}

/// The segment index encoded in a ledger's first record, when it has the
/// shape of a segment head.
fn segment_index_of(ledger: &Ledger) -> Option<u64> {
    match ledger.records().first().map(|r| &r.event) {
        Some(RunEvent::RunStarted { .. }) => Some(0),
        Some(RunEvent::SegmentOpened { segment, .. }) => Some(*segment),
        _ => None,
    }
}

/// A [`crate::RunRecorder`] that rolls its ledger into anchored segments
/// under a [`RotationPolicy`].
///
/// The recorder only *decides* nothing by itself: the owner checks
/// [`should_rotate`](SegmentedRecorder::should_rotate) at a deterministic
/// point (the serving layer does so at end of tick) and calls
/// [`rotate`](SegmentedRecorder::rotate), so rotation points are identical
/// across reruns — a requirement for byte-identical crash recovery.
#[derive(Debug, Clone)]
pub struct SegmentedRecorder {
    policy: RotationPolicy,
    sealed: Vec<Ledger>,
    current: Ledger,
    index: u64,
    pruned: u64,
    current_bytes: usize,
    header_len: usize,
}

impl SegmentedRecorder {
    /// Open a recorder; record 0 of segment 0 is the run header.
    pub fn new(experiment: &str, seed: u64, devices: u64, policy: RotationPolicy) -> Self {
        let mut current = Ledger::new();
        current.append(
            0,
            RunEvent::RunStarted {
                experiment: experiment.to_string(),
                seed,
                devices,
            },
        );
        let current_bytes = current.to_jsonl().len();
        SegmentedRecorder {
            policy,
            sealed: Vec::new(),
            current,
            index: 0,
            pruned: 0,
            current_bytes,
            header_len: 1,
        }
    }

    /// Reopen a recorder from recovered segments: the retained sealed
    /// segments (oldest first, cleanly parsed) plus the open segment,
    /// already truncated to the point recording resumes from. The segment
    /// index and pruned count are re-derived from the segments' own header
    /// frames; everything currently in `current` is treated as header.
    pub fn resume(policy: RotationPolicy, sealed: Vec<Ledger>, current: Ledger) -> Self {
        let index = segment_index_of(&current).unwrap_or(0);
        let pruned = sealed
            .first()
            .map_or_else(|| index, |s| segment_index_of(s).unwrap_or(0));
        let current_bytes = current.to_jsonl().len();
        let header_len = current.len();
        SegmentedRecorder {
            policy,
            sealed,
            current,
            index,
            pruned,
            current_bytes,
            header_len,
        }
    }

    /// Append an event to the current segment; returns its in-segment seq.
    pub fn record(&mut self, tick: u64, event: RunEvent) -> u64 {
        let seq = self.current.append(tick, event);
        if self.policy.max_bytes > 0 {
            let record = self.current.records().last().expect("just appended");
            let line = serde_json::to_string(record).expect("record serialization cannot fail");
            self.current_bytes += line.len() + 1;
        }
        seq
    }

    /// Mark everything recorded so far in the current segment as header
    /// frames: they never trigger rotation by themselves. The serving layer
    /// calls this after appending the checkpoint snapshot that follows an
    /// anchor frame, so a tiny budget cannot rotate an empty segment.
    pub fn mark_header(&mut self) {
        self.header_len = self.current.len();
        self.current_bytes = if self.policy.max_bytes > 0 {
            self.current.to_jsonl().len()
        } else {
            0
        };
    }

    /// Should the owner rotate now? True when the policy is enabled, the
    /// current segment holds at least one record beyond its header frames,
    /// and a budget is met.
    pub fn should_rotate(&self) -> bool {
        if self.current.len() <= self.header_len {
            return false;
        }
        let body = self.current.len() - self.header_len;
        (self.policy.max_records > 0 && body >= self.policy.max_records)
            || (self.policy.max_bytes > 0 && self.current_bytes >= self.policy.max_bytes)
    }

    /// Seal the current segment with a [`RunEvent::SegmentSealed`] record,
    /// apply retention, and open the successor with its anchor frame.
    /// Returns the new segment's index.
    pub fn rotate(&mut self, tick: u64) -> u64 {
        self.current.append(
            tick,
            RunEvent::SegmentSealed {
                segment: self.index,
                records: self.current.len() as u64 + 1,
            },
        );
        let prev_head = self.current.head_digest();
        let prev_records = self.current.len() as u64;
        self.sealed.push(std::mem::take(&mut self.current));
        if self.policy.keep_sealed > 0 {
            while self.sealed.len() > self.policy.keep_sealed {
                self.sealed.remove(0);
                self.pruned += 1;
            }
        }
        self.index += 1;
        self.current.append(
            tick,
            RunEvent::SegmentOpened {
                segment: self.index,
                prev_head,
                prev_records,
            },
        );
        self.header_len = 1;
        self.current_bytes = if self.policy.max_bytes > 0 {
            self.current.to_jsonl().len()
        } else {
            0
        };
        self.index
    }

    /// Index of the segment currently recording.
    pub fn segment_index(&self) -> u64 {
        self.index
    }

    /// Segments pruned by retention so far.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// The configured rotation policy.
    pub fn policy(&self) -> &RotationPolicy {
        &self.policy
    }

    /// The open segment (still recording).
    pub fn current(&self) -> &Ledger {
        &self.current
    }

    /// Retained sealed segments, oldest first.
    pub fn sealed(&self) -> &[Ledger] {
        &self.sealed
    }

    /// Records in the current segment.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// A recorder always holds at least a segment header.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Seal the run and hand back every retained segment.
    pub fn finish(mut self, ticks: u64, harms: u64) -> SegmentedLedger {
        self.current
            .append(ticks, RunEvent::RunFinished { ticks, harms });
        let mut segments = self.sealed;
        segments.push(self.current);
        SegmentedLedger { segments }
    }
}

/// Verification failure localized to one segment of a rotated chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentCorruption {
    /// Index of the corrupt segment.
    pub segment: u64,
    /// The failure within (or at the boundary of) that segment.
    pub corruption: Corruption,
}

impl fmt::Display for SegmentCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "segment {}: {}", self.segment, self.corruption)
    }
}

impl std::error::Error for SegmentCorruption {}

/// One row of a per-segment verification report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segment index.
    pub segment: u64,
    /// Records in the segment.
    pub records: u64,
    /// The segment's head digest.
    pub head: u64,
    /// The first failure in this segment, if any (chain break, bad header
    /// or seal shape, or an anchor mismatch against the predecessor).
    pub error: Option<Corruption>,
}

/// A complete rotated run: the retained segments, oldest first.
///
/// Pruned prefix segments are represented only by the anchor frame inside
/// the first retained segment; [`first_index`](SegmentedLedger::first_index)
/// says how many were pruned.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedLedger {
    segments: Vec<Ledger>,
}

impl SegmentedLedger {
    /// Wrap retained segments (oldest first). Panics on an empty list —
    /// a run always has at least its open segment.
    pub fn from_segments(segments: Vec<Ledger>) -> Self {
        assert!(!segments.is_empty(), "a segmented ledger has >= 1 segment");
        SegmentedLedger { segments }
    }

    /// Retained segments, oldest first.
    pub fn segments(&self) -> &[Ledger] {
        &self.segments
    }

    /// Index of the first retained segment — equal to the number of
    /// segments pruned by retention.
    pub fn first_index(&self) -> u64 {
        segment_index_of(&self.segments[0]).unwrap_or(0)
    }

    /// Segments pruned by retention.
    pub fn pruned_count(&self) -> u64 {
        self.first_index()
    }

    /// Index of the final segment.
    pub fn last_index(&self) -> u64 {
        self.first_index() + self.segments.len() as u64 - 1
    }

    /// Total records across retained segments.
    pub fn total_records(&self) -> usize {
        self.segments.iter().map(Ledger::len).sum()
    }

    /// Head digest of the final segment — the value to anchor out-of-band.
    pub fn head_digest(&self) -> u64 {
        self.segments.last().expect("non-empty").head_digest()
    }

    /// The unrotated case: exactly one segment and nothing pruned. Returns
    /// the segment, which is then a plain sealed [`Ledger`] byte-identical
    /// to what an unsegmented [`crate::RunRecorder`] would have produced.
    pub fn into_single(mut self) -> Option<Ledger> {
        if self.segments.len() == 1 && self.first_index() == 0 {
            self.segments.pop()
        } else {
            None
        }
    }

    /// Verify every retained segment and every boundary between them:
    /// per-segment chain integrity, header/seal shapes, and anchor
    /// continuity. One row per segment, in order, so a caller can report
    /// *all* failures rather than just the first.
    pub fn verify_report(&self) -> Vec<SegmentReport> {
        let first = self.first_index();
        let last_pos = self.segments.len() - 1;
        self.segments
            .iter()
            .enumerate()
            .map(|(pos, seg)| {
                let index = first + pos as u64;
                let error = self.check_segment(pos, index, seg, pos == last_pos);
                SegmentReport {
                    segment: index,
                    records: seg.len() as u64,
                    head: seg.head_digest(),
                    error,
                }
            })
            .collect()
    }

    fn check_segment(
        &self,
        pos: usize,
        index: u64,
        seg: &Ledger,
        is_last: bool,
    ) -> Option<Corruption> {
        if seg.is_empty() {
            return Some(Corruption {
                seq: 0,
                reason: "empty segment".into(),
            });
        }
        if let Err(c) = seg.verify_chain() {
            return Some(c);
        }
        // Header shape: segment 0 carries the run header; later segments an
        // anchor frame whose fields must match the predecessor (when it is
        // retained — the first retained segment's anchor points at pruned
        // bytes and is vouched for by being inside this segment's chain).
        match &seg.records()[0].event {
            RunEvent::RunStarted { .. } if index == 0 => {}
            RunEvent::SegmentOpened {
                segment,
                prev_head,
                prev_records,
            } if index > 0 => {
                if *segment != index {
                    return Some(Corruption {
                        seq: 0,
                        reason: format!(
                            "anchor frame carries segment index {segment}, expected {index}"
                        ),
                    });
                }
                if pos > 0 {
                    let prev = &self.segments[pos - 1];
                    if *prev_head != prev.head_digest() {
                        return Some(Corruption {
                            seq: 0,
                            reason: format!(
                                "anchor mismatch: frame anchors predecessor head {prev_head:#018x}, segment {} heads {:#018x} (predecessor rewritten)",
                                index - 1,
                                prev.head_digest()
                            ),
                        });
                    }
                    if *prev_records != prev.len() as u64 {
                        return Some(Corruption {
                            seq: 0,
                            reason: format!(
                                "anchor mismatch: frame anchors {prev_records} predecessor records, segment {} holds {}",
                                index - 1,
                                prev.len()
                            ),
                        });
                    }
                }
            }
            other => {
                return Some(Corruption {
                    seq: 0,
                    reason: format!(
                        "segment head must be {} but is {}",
                        if index == 0 {
                            "run-started"
                        } else {
                            "segment-opened"
                        },
                        other.kind()
                    ),
                });
            }
        }
        // Seal shape: non-final segments end with a segment seal naming
        // themselves and their own record count; the final segment ends
        // with the run seal.
        let tail = &seg.records()[seg.len() - 1].event;
        if is_last {
            if !seg.is_sealed() {
                return Some(Corruption {
                    seq: seg.len() as u64,
                    reason:
                        "not sealed: terminal run-finished record missing (truncated or tail deleted)"
                            .into(),
                });
            }
        } else {
            match tail {
                RunEvent::SegmentSealed { segment, records }
                    if *segment == index && *records == seg.len() as u64 => {}
                other => {
                    return Some(Corruption {
                        seq: seg.len() as u64 - 1,
                        reason: format!(
                            "non-final segment must seal with segment-sealed[{index}, {}] but ends with {}",
                            seg.len(),
                            other.kind()
                        ),
                    });
                }
            }
        }
        None
    }

    /// Verify the whole retained chain; the first failing segment's error.
    pub fn verify(&self) -> Result<(), SegmentCorruption> {
        for report in self.verify_report() {
            if let Some(corruption) = report.error {
                return Err(SegmentCorruption {
                    segment: report.segment,
                    corruption,
                });
            }
        }
        Ok(())
    }

    /// [`verify`](SegmentedLedger::verify) plus a check of the final
    /// segment's head digest against an externally anchored value.
    pub fn verify_anchored(&self, anchored_head: u64) -> Result<(), SegmentCorruption> {
        self.verify()?;
        let last = self.segments.last().expect("non-empty");
        if last.head_digest() == anchored_head {
            Ok(())
        } else {
            Err(SegmentCorruption {
                segment: self.last_index(),
                corruption: Corruption {
                    seq: last.len().saturating_sub(1) as u64,
                    reason: format!(
                        "head digest {:#018x} does not match anchor {anchored_head:#018x} (suffix rewritten)",
                        last.head_digest()
                    ),
                },
            })
        }
    }

    /// Export each retained segment as `(index, jsonl)`, oldest first.
    pub fn to_jsonl_segments(&self) -> Vec<(u64, String)> {
        let first = self.first_index();
        self.segments
            .iter()
            .enumerate()
            .map(|(pos, seg)| (first + pos as u64, seg.to_jsonl()))
            .collect()
    }

    /// Import retained segments from `(index, jsonl)` pairs in any order.
    /// Parsing is strict — recovery of a torn open segment is the caller's
    /// job (via [`Ledger::from_jsonl_recovering`]) *before* sealing a run
    /// into this form.
    pub fn from_jsonl_segments(mut segs: Vec<(u64, String)>) -> Result<Self, LedgerError> {
        segs.sort_by_key(|(idx, _)| *idx);
        let mut segments = Vec::with_capacity(segs.len());
        for (_, text) in &segs {
            segments.push(Ledger::from_jsonl(text)?);
        }
        Ok(SegmentedLedger::from_segments(segments))
    }
}

impl fmt::Display for SegmentedLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segmented ledger: segments {}..={} ({} pruned), {} records, head {:#018x}",
            self.first_index(),
            self.last_index(),
            self.pruned_count(),
            self.total_records(),
            self.head_digest()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunRecorder;

    fn proposal(device: u64) -> RunEvent {
        RunEvent::Proposal {
            device,
            action: "dig".into(),
        }
    }

    fn rotated(policy: RotationPolicy, events: u64) -> SegmentedLedger {
        let mut rec = SegmentedRecorder::new("seg", 7, 2, policy);
        for i in 0..events {
            rec.record(i + 1, proposal(i));
            if rec.should_rotate() {
                rec.rotate(i + 1);
            }
        }
        rec.finish(events, 0)
    }

    #[test]
    fn disabled_policy_matches_plain_recorder_bytes() {
        let mut seg = SegmentedRecorder::new("demo", 7, 3, RotationPolicy::default());
        let mut plain = RunRecorder::new("demo", 7, 3);
        for i in 0..20 {
            seg.record(i + 1, proposal(i));
            plain.record(i + 1, proposal(i));
            assert!(!seg.should_rotate());
        }
        let seg = seg.finish(20, 0);
        let plain = plain.finish(20, 0);
        let single = seg.into_single().expect("one segment");
        assert_eq!(single.to_jsonl(), plain.to_jsonl());
        assert!(single.verify().is_ok());
    }

    #[test]
    fn rotation_produces_an_anchored_verifiable_chain() {
        let led = rotated(RotationPolicy::by_records(4), 18);
        assert!(led.segments().len() > 2, "{led}");
        assert_eq!(led.first_index(), 0);
        led.verify().expect("rotated chain verifies");
        led.verify_anchored(led.head_digest()).expect("anchored");
        assert!(led.verify_anchored(led.head_digest() ^ 1).is_err());
        // Every boundary: seal then anchor.
        for seg in &led.segments()[..led.segments().len() - 1] {
            assert!(matches!(
                seg.records().last().unwrap().event,
                RunEvent::SegmentSealed { .. }
            ));
        }
        assert!(led.segments().last().unwrap().is_sealed());
        assert!(led.clone().into_single().is_none());
    }

    #[test]
    fn tamper_inside_a_sealed_segment_is_localized() {
        let led = rotated(RotationPolicy::by_records(4), 18);
        let mut segs = led.to_jsonl_segments();
        // Flip one digest bit inside segment 1 by editing its JSONL.
        segs[1].1 = segs[1].1.replacen("\"digest\":", "\"digest\":1", 1);
        let tampered = SegmentedLedger::from_jsonl_segments(segs).unwrap();
        let err = tampered.verify().unwrap_err();
        assert_eq!(err.segment, 1, "{err}");
    }

    #[test]
    fn consistent_rewrite_of_a_sealed_segment_breaks_the_anchor() {
        let led = rotated(RotationPolicy::by_records(4), 18);
        // Rebuild segment 1 with one event changed and all digests
        // recomputed: its own chain verifies, but the successor's anchor
        // frame gives the rewrite away.
        let mut segments: Vec<Ledger> = led.segments().to_vec();
        let mut forged = Ledger::new();
        for record in segments[1].records() {
            let mut event = record.event.clone();
            if let RunEvent::Proposal { device, .. } = &mut event {
                *device = 99;
            }
            forged.append(record.tick, event);
        }
        assert!(forged.verify_chain().is_ok());
        segments[1] = forged;
        let tampered = SegmentedLedger::from_segments(segments);
        let err = tampered.verify().unwrap_err();
        assert_eq!(err.segment, 2, "anchor check fires on the successor");
        assert!(err.corruption.reason.contains("anchor mismatch"), "{err}");
    }

    #[test]
    fn retention_prunes_oldest_but_chain_stays_verifiable() {
        let policy = RotationPolicy {
            max_records: 4,
            max_bytes: 0,
            keep_sealed: 2,
        };
        let led = rotated(policy, 30);
        assert!(led.pruned_count() > 0, "{led}");
        assert_eq!(led.segments().len(), 3, "2 sealed + open");
        assert!(led.first_index() > 0);
        led.verify().expect("retained chain verifies after pruning");
        let report = led.verify_report();
        assert_eq!(report.len(), 3);
        assert!(report.iter().all(|r| r.error.is_none()));
    }

    #[test]
    fn byte_budget_rotates() {
        let policy = RotationPolicy {
            max_records: 0,
            max_bytes: 600,
            keep_sealed: 0,
        };
        let led = rotated(policy, 30);
        assert!(led.segments().len() > 1, "{led}");
        led.verify().unwrap();
    }

    #[test]
    fn jsonl_roundtrip_preserves_segments() {
        let led = rotated(RotationPolicy::by_records(5), 17);
        let back = SegmentedLedger::from_jsonl_segments(led.to_jsonl_segments()).unwrap();
        assert_eq!(back, led);
        back.verify().unwrap();
    }

    #[test]
    fn resume_rederives_index_and_pruned_count() {
        let policy = RotationPolicy {
            max_records: 4,
            max_bytes: 0,
            keep_sealed: 2,
        };
        let mut rec = SegmentedRecorder::new("seg", 7, 2, policy);
        for i in 0..30 {
            rec.record(i + 1, proposal(i));
            if rec.should_rotate() {
                rec.rotate(i + 1);
            }
        }
        let index = rec.segment_index();
        let pruned = rec.pruned();
        let resumed =
            SegmentedRecorder::resume(policy, rec.sealed().to_vec(), rec.current().clone());
        assert_eq!(resumed.segment_index(), index);
        assert_eq!(resumed.pruned(), pruned);
    }

    #[test]
    fn missing_seal_and_bad_header_are_reported() {
        let led = rotated(RotationPolicy::by_records(4), 12);
        let mut segs = led.to_jsonl_segments();
        // Drop segment 0's seal line: the boundary check names it.
        let truncated: String = segs[0]
            .1
            .lines()
            .take(segs[0].1.lines().count() - 1)
            .flat_map(|l| [l, "\n"])
            .collect();
        segs[0].1 = truncated;
        let broken = SegmentedLedger::from_jsonl_segments(segs).unwrap();
        let report = broken.verify_report();
        let seg0 = &report[0];
        assert!(seg0.error.as_ref().unwrap().reason.contains("must seal"));
        // The successor's anchor also no longer matches.
        assert!(report[1].error.is_some());
    }
}
