//! Interned event names: allocation-free fan-out of repeated strings.
//!
//! A recorded run emits the same handful of action names (`strike`,
//! `dig-hole`, `post-warning`, …) tens of thousands of times. Storing them
//! as `String` meant one heap allocation per recorded event — a measurable
//! per-tick cost in `Fleet::step`. [`Name`] wraps the text in an `Arc<str>`
//! so recording an event clones a pointer, and [`NamePool`] interns each
//! distinct spelling once so equal names share one allocation.
//!
//! Equality, ordering, and hashing are by **content**, never by pointer, so
//! two ledgers built by different engines (sequential vs parallel) compare
//! equal event-for-event regardless of which pool produced the names. JSON
//! round-trips as a plain string, keeping the JSONL schema unchanged.

use serde::{Deserialize, Error, Serialize, Value};
use std::borrow::Borrow;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A cheaply clonable, content-compared event name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Name(Arc<str>);

impl Name {
    /// The text of the name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name(Arc::from(s))
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(Arc::from(s.as_str()))
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

// JSON form is a bare string — the interning is invisible on disk.
impl Serialize for Name {
    fn to_value(&self) -> Value {
        Value::Str(self.0.to_string())
    }
}

impl Deserialize for Name {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Name::from(s.as_str())),
            other => Err(Error::custom(format!(
                "expected string for Name, got {other:?}"
            ))),
        }
    }
}

/// Interning pool: each distinct spelling is allocated once.
///
/// Pools are plain local state (one per fleet, one per device for the
/// decide-phase workers) — there is no global registry, so interning never
/// contends across threads and never leaks between runs.
#[derive(Debug, Clone, Default)]
pub struct NamePool {
    names: BTreeSet<Name>,
}

impl NamePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The interned name for `s`, allocating only on first sight.
    pub fn intern(&mut self, s: &str) -> Name {
        if let Some(existing) = self.names.get(s) {
            return existing.clone();
        }
        let name = Name::from(s);
        self.names.insert(name.clone());
        name
    }

    /// Number of distinct names seen.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Has the pool interned anything yet?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_one_allocation_per_spelling() {
        let mut pool = NamePool::new();
        let a = pool.intern("strike");
        let b = pool.intern("strike");
        let c = pool.intern("dig-hole");
        assert!(Arc::ptr_eq(&a.0, &b.0), "same spelling must share storage");
        assert!(!Arc::ptr_eq(&a.0, &c.0));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn equality_is_by_content_across_pools() {
        let mut p1 = NamePool::new();
        let mut p2 = NamePool::new();
        assert_eq!(p1.intern("strike"), p2.intern("strike"));
        assert_eq!(p1.intern("strike"), "strike");
        assert_ne!(p1.intern("strike"), p2.intern("retreat"));
    }

    #[test]
    fn json_form_is_a_plain_string() {
        let name = Name::from("post-warning");
        let json = serde_json::to_string(&name).unwrap();
        assert_eq!(json, "\"post-warning\"");
        let back: Name = serde_json::from_str(&json).unwrap();
        assert_eq!(back, name);
    }
}
