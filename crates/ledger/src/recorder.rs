//! The flight recorder handle a running simulation appends through.

use crate::event::RunEvent;
use crate::ledger::Ledger;

/// Wraps a [`Ledger`] for the duration of one run: opens it with
/// [`RunEvent::RunStarted`], accepts events while the run executes, and
/// seals it with [`RunEvent::RunFinished`] on [`finish`](RunRecorder::finish).
#[derive(Debug, Clone)]
pub struct RunRecorder {
    ledger: Ledger,
}

impl RunRecorder {
    /// Open a recorder; record 0 is the run header.
    pub fn new(experiment: &str, seed: u64, devices: u64) -> Self {
        let mut ledger = Ledger::new();
        ledger.append(
            0,
            RunEvent::RunStarted {
                experiment: experiment.to_string(),
                seed,
                devices,
            },
        );
        RunRecorder { ledger }
    }

    /// Append an event; returns its seq.
    pub fn record(&mut self, tick: u64, event: RunEvent) -> u64 {
        self.ledger.append(tick, event)
    }

    /// The ledger so far (still open).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.ledger.len()
    }

    /// A recorder always holds at least the run header.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Seal the run and hand back the finished ledger.
    pub fn finish(mut self, ticks: u64, harms: u64) -> Ledger {
        self.ledger
            .append(ticks, RunEvent::RunFinished { ticks, harms });
        self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_opens_and_seals() {
        let mut rec = RunRecorder::new("demo", 7, 3);
        assert_eq!(rec.len(), 1);
        assert!(!rec.is_empty());
        rec.record(
            1,
            RunEvent::Proposal {
                device: 0,
                action: "dig".into(),
            },
        );
        let ledger = rec.finish(1, 0);
        assert!(ledger.verify().is_ok());
        assert_eq!(ledger.len(), 3);
        assert!(matches!(
            ledger.records()[0].event,
            RunEvent::RunStarted { seed: 7, .. }
        ));
        assert!(ledger.is_sealed());
    }
}
