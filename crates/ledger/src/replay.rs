//! Divergence detection between a recorded reference and a re-execution.
//!
//! The replayer does not run the simulation itself (that would drag the sim
//! layer into this crate); the sim re-executes a run — from the seed or
//! from a restored snapshot — while recording into a fresh ledger, and the
//! [`Replayer`] aligns the two event streams and reports the first
//! divergence. A faithful deterministic replay reproduces the recorded
//! stream event for event, snapshots included.

use std::fmt;

use crate::event::RunEvent;
use crate::ledger::{Ledger, LedgerError, LedgerRecord};

/// The first point at which a replay departed from the recorded run.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// Both streams have an event at this position but they differ.
    Mismatch {
        /// Reference-ledger seq of the differing record.
        seq: u64,
        /// Kind tag of the recorded event.
        expected: String,
        /// Kind tag of the replayed event.
        observed: String,
    },
    /// The replay produced more events than were recorded.
    ExtraEvents {
        /// Reference-ledger seq where recorded events ran out.
        seq: u64,
        /// How many surplus events the replay produced.
        surplus: u64,
    },
    /// The replay ended before reproducing every recorded event.
    MissingEvents {
        /// Reference-ledger seq of the first unreproduced record.
        seq: u64,
        /// How many recorded events were never reproduced.
        missing: u64,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Mismatch {
                seq,
                expected,
                observed,
            } => {
                write!(
                    f,
                    "diverged at record {seq}: recorded {expected}, replayed {observed}"
                )
            }
            Divergence::ExtraEvents { seq, surplus } => {
                write!(
                    f,
                    "replay produced {surplus} extra events past record {seq}"
                )
            }
            Divergence::MissingEvents { seq, missing } => {
                write!(f, "replay missing {missing} events from record {seq}")
            }
        }
    }
}

/// Outcome of a replay comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Reference seq the comparison started from.
    pub start_seq: u64,
    /// Events compared successfully before the end (or the divergence).
    pub matched: u64,
    /// The first divergence, if the replay was not faithful.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// Did the replay reproduce the recorded stream exactly?
    pub fn is_faithful(&self) -> bool {
        self.divergence.is_none()
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.divergence {
            None => write!(
                f,
                "replay faithful: {} events reproduced from record {}",
                self.matched, self.start_seq
            ),
            Some(divergence) => write!(f, "{divergence} ({} matched before)", self.matched),
        }
    }
}

/// Aligns a replayed ledger against the recorded reference.
#[derive(Debug, Clone, Copy)]
pub struct Replayer<'a> {
    reference: &'a Ledger,
    /// First reference seq to compare (0 for from-origin replays,
    /// `snapshot seq + 1` for from-snapshot replays).
    start: u64,
}

impl<'a> Replayer<'a> {
    /// Compare a replay that re-executed the run from tick 0. The replayed
    /// ledger's own run header is compared against the reference header, so
    /// a replay under a different seed or fleet size diverges at record 0.
    pub fn from_origin(reference: &'a Ledger) -> Self {
        Replayer {
            reference,
            start: 0,
        }
    }

    /// Compare a replay that resumed from the snapshot stored at reference
    /// seq `snapshot_seq`. Comparison starts just past the snapshot record;
    /// the replayed ledger's run header (its record 0) is skipped.
    pub fn from_snapshot(reference: &'a Ledger, snapshot_seq: u64) -> Self {
        Replayer {
            reference,
            start: snapshot_seq + 1,
        }
    }

    /// Align the two streams and report the first divergence.
    pub fn compare(&self, replayed: &Ledger) -> ReplayReport {
        self.align(replayed, false)
    }

    /// Like [`compare`](Replayer::compare), but for a reference recovered
    /// from a torn (crash-truncated) ledger: the replay re-executes the
    /// whole run, so it legitimately extends past the reference's cut —
    /// the comparison only requires the surviving reference prefix to be
    /// reproduced exactly, and surplus replay events are not a divergence.
    pub fn compare_prefix(&self, replayed: &Ledger) -> ReplayReport {
        self.align(replayed, true)
    }

    fn align(&self, replayed: &Ledger, allow_extra: bool) -> ReplayReport {
        // From-snapshot replays open with their own RunStarted header that
        // has no counterpart in the reference suffix — skip it.
        let replay_skip = usize::from(self.start > 0);
        let reference = &self.reference.records()[self.start as usize..];
        let replayed = &replayed.records()[replay_skip.min(replayed.len())..];

        let mut matched = 0u64;
        for (offset, reference_record) in reference.iter().enumerate() {
            match replayed.get(offset) {
                None => {
                    return ReplayReport {
                        start_seq: self.start,
                        matched,
                        divergence: Some(Divergence::MissingEvents {
                            seq: reference_record.seq,
                            missing: (reference.len() - offset) as u64,
                        }),
                    };
                }
                Some(replay_record) => {
                    if reference_record.tick != replay_record.tick
                        || reference_record.event != replay_record.event
                    {
                        return ReplayReport {
                            start_seq: self.start,
                            matched,
                            divergence: Some(Divergence::Mismatch {
                                seq: reference_record.seq,
                                expected: describe(&reference_record.event),
                                observed: describe(&replay_record.event),
                            }),
                        };
                    }
                    matched += 1;
                }
            }
        }
        if !allow_extra && replayed.len() > reference.len() {
            return ReplayReport {
                start_seq: self.start,
                matched,
                divergence: Some(Divergence::ExtraEvents {
                    seq: self.start + reference.len() as u64,
                    surplus: (replayed.len() - reference.len()) as u64,
                }),
            };
        }
        ReplayReport {
            start_seq: self.start,
            matched,
            divergence: None,
        }
    }
}

/// Streaming variant of [`Replayer`]: both event streams arrive as JSONL
/// lines (for a rotated run, the segment files' lines chained oldest
/// first) and are aligned one record at a time, so comparison memory is
/// bounded by a single record no matter how long the run — where
/// [`Replayer`] requires both ledgers materialized in memory.
///
/// Record seqs restart at 0 in every rotated segment, so alignment is by
/// stream position and [`Divergence`] seqs report stream positions.
#[derive(Debug, Clone, Copy)]
pub struct StreamReplayer {
    /// First reference stream position to compare.
    start: u64,
}

impl StreamReplayer {
    /// Compare a replay that re-executed the run from tick 0.
    pub fn from_origin() -> Self {
        StreamReplayer { start: 0 }
    }

    /// Compare a replay that resumed from the snapshot at reference stream
    /// position `snapshot_seq`; the replay's own header line is skipped.
    pub fn from_snapshot(snapshot_seq: u64) -> Self {
        StreamReplayer {
            start: snapshot_seq + 1,
        }
    }

    /// Align the two streams and report the first divergence. Errs only
    /// when a line fails to parse (1-based line number of that stream).
    pub fn compare_lines<'a, 'b>(
        &self,
        reference: impl IntoIterator<Item = &'a str>,
        replayed: impl IntoIterator<Item = &'b str>,
    ) -> Result<ReplayReport, LedgerError> {
        self.align_lines(reference, replayed, false)
    }

    /// Like [`compare_lines`](StreamReplayer::compare_lines), but surplus
    /// replay events past a torn reference's cut are not a divergence.
    pub fn compare_lines_prefix<'a, 'b>(
        &self,
        reference: impl IntoIterator<Item = &'a str>,
        replayed: impl IntoIterator<Item = &'b str>,
    ) -> Result<ReplayReport, LedgerError> {
        self.align_lines(reference, replayed, true)
    }

    fn align_lines<'a, 'b>(
        &self,
        reference: impl IntoIterator<Item = &'a str>,
        replayed: impl IntoIterator<Item = &'b str>,
        allow_extra: bool,
    ) -> Result<ReplayReport, LedgerError> {
        fn parse(line: &str, number: usize) -> Result<LedgerRecord, LedgerError> {
            serde_json::from_str(line).map_err(|e| LedgerError::Parse {
                line: number,
                message: e.to_string(),
            })
        }
        let mut refs = reference
            .into_iter()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(idx, l)| (idx + 1, l));
        let mut reps = replayed
            .into_iter()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(idx, l)| (idx + 1, l));
        for _ in 0..self.start {
            if refs.next().is_none() {
                break;
            }
        }
        if self.start > 0 {
            reps.next();
        }
        let mut matched = 0u64;
        let mut position = self.start;
        let divergence = loop {
            match (refs.next(), reps.next()) {
                (None, None) => break None,
                (None, Some(_)) => {
                    break if allow_extra {
                        None
                    } else {
                        Some(Divergence::ExtraEvents {
                            seq: position,
                            surplus: 1 + reps.count() as u64,
                        })
                    };
                }
                (Some(_), None) => {
                    break Some(Divergence::MissingEvents {
                        seq: position,
                        missing: 1 + refs.count() as u64,
                    });
                }
                (Some((ref_line, ref_text)), Some((rep_line, rep_text))) => {
                    let reference = parse(ref_text, ref_line)?;
                    let replay = parse(rep_text, rep_line)?;
                    if reference.tick != replay.tick || reference.event != replay.event {
                        break Some(Divergence::Mismatch {
                            seq: position,
                            expected: describe(&reference.event),
                            observed: describe(&replay.event),
                        });
                    }
                    matched += 1;
                    position += 1;
                }
            }
        };
        Ok(ReplayReport {
            start_seq: self.start,
            matched,
            divergence,
        })
    }
}

fn describe(event: &RunEvent) -> String {
    match event {
        RunEvent::Proposal { device, action } | RunEvent::Execution { device, action } => {
            format!("{} d{device}:{action}", event.kind())
        }
        RunEvent::Verdict {
            device, verdict, ..
        } => {
            format!("verdict d{device}:{verdict}")
        }
        other => other.kind().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RunRecorder;

    fn reference() -> Ledger {
        let mut rec = RunRecorder::new("demo", 1, 1);
        rec.record(
            1,
            RunEvent::Proposal {
                device: 0,
                action: "dig".into(),
            },
        );
        rec.record(
            1,
            RunEvent::Execution {
                device: 0,
                action: "dig".into(),
            },
        );
        rec.record(
            2,
            RunEvent::Proposal {
                device: 0,
                action: "dig".into(),
            },
        );
        rec.finish(2, 0)
    }

    #[test]
    fn identical_replay_is_faithful() {
        let reference = reference();
        let replay = reference.clone();
        let report = Replayer::from_origin(&reference).compare(&replay);
        assert!(report.is_faithful(), "{report}");
        assert_eq!(report.matched, reference.len() as u64);
    }

    #[test]
    fn differing_event_is_localized() {
        let reference = reference();
        let mut rec = RunRecorder::new("demo", 1, 1);
        rec.record(
            1,
            RunEvent::Proposal {
                device: 0,
                action: "dig".into(),
            },
        );
        rec.record(
            1,
            RunEvent::Execution {
                device: 0,
                action: "strike".into(),
            },
        );
        rec.record(
            2,
            RunEvent::Proposal {
                device: 0,
                action: "dig".into(),
            },
        );
        let replay = rec.finish(2, 0);
        let report = Replayer::from_origin(&reference).compare(&replay);
        match report.divergence {
            Some(Divergence::Mismatch { seq, .. }) => assert_eq!(seq, 2),
            other => panic!("expected mismatch, got {other:?}"),
        }
        assert_eq!(report.matched, 2);
    }

    #[test]
    fn short_replay_reports_missing_events() {
        let reference = reference();
        let mut rec = RunRecorder::new("demo", 1, 1);
        rec.record(
            1,
            RunEvent::Proposal {
                device: 0,
                action: "dig".into(),
            },
        );
        let replay = rec.finish(1, 0);
        let report = Replayer::from_origin(&reference).compare(&replay);
        assert!(matches!(
            report.divergence,
            Some(Divergence::Mismatch { .. })
        ));
    }

    #[test]
    fn prefix_compare_tolerates_replay_overrun() {
        // Simulate a torn reference: keep only the first three records of
        // the sealed run. A full faithful replay overruns the cut; the
        // prefix comparison accepts that, while strict compare flags it.
        let full = reference();
        let prefix: String = full
            .to_jsonl()
            .lines()
            .take(3)
            .flat_map(|l| [l, "\n"])
            .collect();
        let torn = Ledger::from_jsonl(&prefix).unwrap();
        let strict = Replayer::from_origin(&torn).compare(&full);
        assert!(matches!(
            strict.divergence,
            Some(Divergence::ExtraEvents { .. })
        ));
        let report = Replayer::from_origin(&torn).compare_prefix(&full);
        assert!(report.is_faithful(), "{report}");
        assert_eq!(report.matched, 3);
        // A replay that differs *inside* the surviving prefix still fails.
        let mut rec = RunRecorder::new("demo", 1, 1);
        rec.record(
            1,
            RunEvent::Proposal {
                device: 0,
                action: "strike".into(),
            },
        );
        let divergent = rec.finish(1, 0);
        let report = Replayer::from_origin(&torn).compare_prefix(&divergent);
        assert!(!report.is_faithful());
    }

    #[test]
    fn streamed_compare_matches_in_memory_compare() {
        let reference = reference();
        let faithful = reference.clone();
        let jsonl = reference.to_jsonl();
        let report = StreamReplayer::from_origin()
            .compare_lines(jsonl.lines(), faithful.to_jsonl().lines())
            .unwrap();
        assert!(report.is_faithful(), "{report}");
        assert_eq!(report.matched, reference.len() as u64);

        // Divergence localization agrees with the in-memory replayer.
        let mut rec = RunRecorder::new("demo", 1, 1);
        rec.record(
            1,
            RunEvent::Proposal {
                device: 0,
                action: "dig".into(),
            },
        );
        rec.record(
            1,
            RunEvent::Execution {
                device: 0,
                action: "strike".into(),
            },
        );
        rec.record(
            2,
            RunEvent::Proposal {
                device: 0,
                action: "dig".into(),
            },
        );
        let divergent = rec.finish(2, 0);
        let in_memory = Replayer::from_origin(&reference).compare(&divergent);
        let streamed = StreamReplayer::from_origin()
            .compare_lines(jsonl.lines(), divergent.to_jsonl().lines())
            .unwrap();
        assert_eq!(streamed.divergence, in_memory.divergence);
        assert_eq!(streamed.matched, in_memory.matched);
    }

    #[test]
    fn streamed_compare_spans_segment_boundaries() {
        use crate::segment::{RotationPolicy, SegmentedRecorder};

        let run = |bad: bool| {
            let mut rec = SegmentedRecorder::new("seg", 3, 1, RotationPolicy::by_records(3));
            for i in 0..10u64 {
                let action = if bad && i == 7 { "strike" } else { "dig" };
                rec.record(
                    i + 1,
                    RunEvent::Proposal {
                        device: i,
                        action: action.into(),
                    },
                );
                if rec.should_rotate() {
                    rec.rotate(i + 1);
                }
            }
            rec.finish(10, 0)
        };
        let golden = run(false);
        assert!(golden.segments().len() > 2);
        let chain = |led: &crate::segment::SegmentedLedger| {
            led.to_jsonl_segments()
                .into_iter()
                .map(|(_, text)| text)
                .collect::<String>()
        };
        let report = StreamReplayer::from_origin()
            .compare_lines(chain(&golden).lines(), chain(&run(false)).lines())
            .unwrap();
        assert!(report.is_faithful(), "{report}");
        let report = StreamReplayer::from_origin()
            .compare_lines(chain(&golden).lines(), chain(&run(true)).lines())
            .unwrap();
        assert!(matches!(
            report.divergence,
            Some(Divergence::Mismatch { .. })
        ));
    }

    #[test]
    fn streamed_compare_reports_parse_failures() {
        let reference = reference();
        let jsonl = reference.to_jsonl();
        let mut torn = jsonl.clone();
        torn.push_str("{not json\n");
        match StreamReplayer::from_origin().compare_lines(torn.lines(), torn.lines()) {
            Err(LedgerError::Parse { line, .. }) => assert_eq!(line, 6),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_alignment_skips_the_replay_header() {
        // Reference: header, two events, seal. Pretend record 1 was a
        // snapshot; a resumed replay reproduces records 2.. only.
        let reference = reference();
        let mut rec = RunRecorder::new("demo", 1, 1);
        rec.record(
            1,
            RunEvent::Execution {
                device: 0,
                action: "dig".into(),
            },
        );
        rec.record(
            2,
            RunEvent::Proposal {
                device: 0,
                action: "dig".into(),
            },
        );
        let replay = rec.finish(2, 0);
        let report = Replayer::from_snapshot(&reference, 1).compare(&replay);
        assert!(report.is_faithful(), "{report}");
        assert_eq!(report.start_seq, 2);
        assert_eq!(report.matched, 3);
    }
}
