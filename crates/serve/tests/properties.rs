//! Property-based tests for the serving-layer invariants experiment E13
//! depends on: determinism of the whole decision pipeline across seeds and
//! thread counts, and the fail-closed guarantee under overload.

use proptest::prelude::*;

use apdm_serve::{
    resume_run, run_e14_mode, run_to_completion, standard_stacks, AdmissionConfig, BatchPolicy,
    Decision, E14Config, E16Config, PolicyDecisionService, Scheduling, ServeConfig, SimDisk,
    TraceMode, WorkloadGen, WorkloadOracle, WorkloadSpec,
};

/// Drive one service to completion over a generated workload; returns the
/// full decision stream (submit-sheds interleaved in submit order) plus the
/// sealed ledger's JSONL bytes.
fn run_service(spec: WorkloadSpec, cfg: ServeConfig) -> (Vec<Decision>, String) {
    let mut svc = PolicyDecisionService::new(
        cfg,
        standard_stacks(cfg.shards, cfg.cache),
        WorkloadOracle,
        "prop",
    );
    let mut gen = WorkloadGen::new(spec);
    let mut decisions = Vec::new();
    let mut now = 0u64;
    loop {
        now += 1;
        assert!(now < 50_000, "drain did not terminate");
        for req in gen.tick_requests(now) {
            if let Some(d) = svc.submit(req, now) {
                decisions.push(d);
            }
        }
        decisions.extend(svc.tick(now));
        if now >= spec.arrival_ticks && svc.queue_depth() == 0 {
            break;
        }
    }
    let (ledger, _) = svc.finish(now);
    ledger.verify().expect("sealed ledger verifies");
    (decisions, ledger.to_jsonl())
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (0u64..1_000, 1usize..40, 4u64..24, 1u32..5).prop_map(
        |(seed, per_tick, arrival_ticks, tenants)| WorkloadSpec {
            seed,
            per_tick,
            arrival_ticks,
            tenants,
            ..WorkloadSpec::default()
        },
    )
}

/// A smaller spec for the thread-invariance property: it runs every case
/// at three thread counts plus a replay, and thread-pool spawns per batch
/// dominate its runtime.
fn arb_small_spec() -> impl Strategy<Value = WorkloadSpec> {
    (0u64..1_000, 1usize..12, 4u64..12, 1u32..5).prop_map(
        |(seed, per_tick, arrival_ticks, tenants)| WorkloadSpec {
            seed,
            per_tick,
            arrival_ticks,
            tenants,
            ..WorkloadSpec::default()
        },
    )
}

proptest! {
    /// Determinism: the same seed, requests and configuration produce a
    /// byte-identical verdict stream and ledger at every thread count —
    /// worker scheduling must never leak into results.
    #[test]
    fn decision_stream_and_ledger_are_thread_invariant(
        spec in arb_small_spec(),
        batching in any::<bool>(),
        cache in any::<bool>(),
    ) {
        let cfg = |threads| ServeConfig {
            seed: spec.seed,
            threads,
            batch: if batching { BatchPolicy::default() } else { BatchPolicy::unbatched() },
            cache,
            ..ServeConfig::default()
        };
        let (d1, l1) = run_service(spec, cfg(1));
        let (d3, l3) = run_service(spec, cfg(3));
        let (d8, l8) = run_service(spec, cfg(8));
        prop_assert_eq!(&d1, &d3);
        prop_assert_eq!(&d1, &d8);
        prop_assert_eq!(&l1, &l3, "ledger bytes must be thread-invariant");
        prop_assert_eq!(&l1, &l8, "ledger bytes must be thread-invariant");
        // And re-running the same configuration reproduces the run exactly.
        let (d1b, l1b) = run_service(spec, cfg(1));
        prop_assert_eq!(&d1, &d1b);
        prop_assert_eq!(&l1, &l1b);
    }

    /// Fail-closed under overload: whatever the load and bounds, a shed
    /// decision never permits execution, and every offered request gets
    /// exactly one decision.
    #[test]
    fn overload_sheds_never_allow(
        spec in arb_spec(),
        capacity in 1usize..48,
        quota in 1usize..24,
        slack in (any::<bool>(), 0u64..12).prop_map(|(some, s)| some.then_some(s)),
    ) {
        let mut spec = spec;
        spec.deadline_slack = slack;
        let cfg = ServeConfig {
            seed: spec.seed,
            threads: 1,
            admission: AdmissionConfig {
                capacity,
                tenant_quota: quota,
                quantum: 4,
            },
            ..ServeConfig::default()
        };
        let (decisions, _) = run_service(spec, cfg);
        let offered = spec.arrival_ticks * spec.per_tick as u64;
        prop_assert_eq!(decisions.len() as u64, offered, "every request must resolve");
        let mut ids: Vec<u64> = decisions.iter().map(|d| d.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, offered, "exactly one decision per request");
        for d in &decisions {
            if d.shed.is_some() {
                prop_assert!(
                    !d.verdict.permits_execution(),
                    "shed request {} was allowed", d.request_id
                );
                prop_assert!(d.reason().starts_with("shed:"));
            }
        }
    }
}

/// A Zipf-skewed spec for the scheduling-invariance property: small like
/// [`arb_small_spec`] (it runs each case six times), plus a skew exponent
/// in {0.0, 0.7, 1.4} so both the uniform control and hot-device regimes
/// are exercised.
fn arb_skew_spec() -> impl Strategy<Value = WorkloadSpec> {
    (0u64..1_000, 1usize..12, 4u64..10, 0u8..3).prop_map(|(seed, per_tick, arrival_ticks, skew)| {
        WorkloadSpec {
            seed,
            per_tick,
            arrival_ticks,
            zipf: f64::from(skew) * 0.7,
            ..WorkloadSpec::default()
        }
    })
}

proptest! {
    /// The skew-aware optimizations must be invisible in results: for any
    /// Zipf-skewed workload, every {static, balanced} × {1, 3, 8}-thread
    /// service — cross-shard backpressure on — produces a byte-identical
    /// decision stream and ledger. Work stealing and deferral may only
    /// change *when* work runs, never what is decided.
    #[test]
    fn scheduling_mode_and_threads_never_change_decisions(spec in arb_skew_spec()) {
        let cfg = |threads, scheduling| ServeConfig {
            seed: spec.seed,
            threads,
            scheduling,
            backpressure: true,
            ..ServeConfig::default()
        };
        let (base_d, base_l) = run_service(spec, cfg(1, Scheduling::Static));
        for scheduling in [Scheduling::Static, Scheduling::Balanced] {
            for threads in [1usize, 3, 8] {
                let (d, l) = run_service(spec, cfg(threads, scheduling));
                prop_assert_eq!(
                    &base_d, &d,
                    "decision stream diverged at {:?} x {} threads", scheduling, threads
                );
                prop_assert_eq!(
                    &base_l, &l,
                    "ledger bytes diverged at {:?} x {} threads", scheduling, threads
                );
            }
        }
    }
}

/// A rotating-ledger crash case: a small Zipf-skewed cell (the property
/// replays it at six scheduling × thread combinations), a rotation budget
/// small enough to force several segments, a retention depth, and the
/// crash position as a percentage through the run's persisted ticks.
fn arb_crash_case() -> impl Strategy<Value = (E16Config, usize)> {
    (
        (0u64..1_000, 2usize..8, 5u64..10, 0u8..3),
        (8usize..20, 0usize..3, 0usize..100),
    )
        .prop_map(
            |((seed, per_tick, arrival_ticks, skew), (budget, keep_sealed, frac))| {
                (
                    E16Config {
                        seed,
                        per_tick,
                        arrival_ticks,
                        zipf: f64::from(skew) * 0.7,
                        budgets: vec![budget],
                        keep_sealed,
                        max_ticks: 2_000,
                        ..E16Config::default()
                    },
                    frac,
                )
            },
        )
}

proptest! {
    /// Crash tolerance is total: kill the service at any persisted tick,
    /// restore from whatever the simulated disk holds (a checkpoint-headed
    /// open segment, or nothing usable at all), and the resumed run — at
    /// worker thread counts {1, 3, 8}, under either scheduling mode, with
    /// cross-shard backpressure on — reseals a byte-identical segmented
    /// ledger and regenerates exactly the golden decision suffix.
    #[test]
    fn checkpoint_restore_resume_is_bit_identical((cfg, frac) in arb_crash_case()) {
        let budget = cfg.budgets[0];
        let mut svc = PolicyDecisionService::new(
            cfg.serve_config(budget, Scheduling::Static, 1),
            standard_stacks(cfg.shards, true),
            WorkloadOracle,
            &cfg.run_name(budget),
        );
        let mut gen = WorkloadGen::new(cfg.spec(budget));
        let mut disk = SimDisk::default();
        let mut snapshots = Vec::new();
        let (golden_decisions, final_tick) = run_to_completion(
            &mut svc, &mut gen, 1, cfg.arrival_ticks, cfg.max_ticks,
            |now, rec| {
                disk.persist(rec);
                snapshots.push((now, disk.clone()));
            },
        );
        let (golden, _) = svc.finish_segmented(final_tick);
        golden.verify().expect("golden ledger verifies");
        let golden_segments = golden.to_jsonl_segments();

        let (_, crash_disk) = &snapshots[frac * (snapshots.len() - 1) / 100];
        for sched in [Scheduling::Static, Scheduling::Balanced] {
            for threads in [1usize, 3, 8] {
                let (ledger, decisions, start, _) =
                    resume_run(&cfg, budget, sched, threads, crash_disk);
                prop_assert!(
                    ledger.verify().is_ok(),
                    "resumed ledger corrupt at {:?} x {} threads", sched, threads
                );
                prop_assert_eq!(
                    &golden_segments, &ledger.to_jsonl_segments(),
                    "segment bytes diverged at {:?} x {} threads", sched, threads
                );
                let suffix: Vec<&Decision> = golden_decisions
                    .iter()
                    .filter(|d| d.decided_at >= start)
                    .collect();
                let resumed: Vec<&Decision> = decisions.iter().collect();
                prop_assert_eq!(
                    suffix, resumed,
                    "decision suffix diverged at {:?} x {} threads", sched, threads
                );
            }
        }
    }
}

proptest! {
    /// Trace propagation survives whatever the network throws at it: under
    /// arbitrary loss, duplication, reordering and a mid-run partition,
    /// every delivered message's span parent resolves in the recorded DAG
    /// (causality is never orphaned), every critical path telescopes (the
    /// assertion inside `run_e14_mode`), and the trace stream is
    /// bit-identical across worker thread counts 1/3/8.
    #[test]
    fn trace_propagation_survives_network_faults(
        seed in 0u64..1_000,
        loss in 0.0f64..0.5,
        dup in 0.0f64..0.4,
        reorder in 0.0f64..0.4,
        partition_at in 0u64..12,
    ) {
        let cfg = E14Config {
            seed,
            loss,
            dup,
            reorder,
            // 0..3 → no partition; otherwise a 6-tick partition mid-run.
            partition_at: if partition_at < 3 { 0 } else { partition_at },
            partition_ticks: 6,
            arrival_ticks: 10,
            per_tick: 2,
            max_ticks: 2_000,
            ..E14Config::default()
        };
        let (report, records) = run_e14_mode(&cfg, TraceMode::Full);
        prop_assert_eq!(
            report.unresolved_parents, 0,
            "a delivered message must always name its recorded cause"
        );
        prop_assert_eq!(report.traces, report.offered, "full mode records every trace");
        prop_assert_eq!(report.paths_checked, report.traces);
        prop_assert_eq!(report.completed + report.expired, report.offered);
        for threads in [3usize, 8] {
            let (_, other) = run_e14_mode(
                &E14Config { threads, ..cfg.clone() },
                TraceMode::Full,
            );
            prop_assert_eq!(
                &records, &other,
                "trace stream must be bit-identical at {} threads", threads
            );
        }
    }
}
