//! Experiment E14: distributed tracing overhead and critical-path
//! decomposition over a traced client ↔ server decision pipeline.
//!
//! The pipeline is E13's serving stack put behind the degraded network:
//! a seeded [`WorkloadGen`] client submits [`DecisionRequest`]s through an
//! at-least-once [`Courier`] over a lossy/duplicating simnet link to a
//! server wrapping a [`PolicyDecisionService`]; decisions travel back the
//! same way. Every request mints one [`TraceContext`] root, and the causal
//! chain crosses every layer of the stack:
//!
//! [`TraceContext`]: apdm_telemetry::TraceContext
//!
//! ```text
//! client.submit → comms.send (+retries) → comms.recv → serve.admit
//!    → serve.batch → serve.shard → serve.ledger → comms.respond
//!    → comms.recv → client.done
//! ```
//!
//! The experiment runs the identical workload in three modes — tracing
//! [`TraceMode::Disabled`], [`TraceMode::Sampled`] (head-based, one trace
//! in [`E14Config::sample_period`]), and [`TraceMode::Full`] — and reports
//! per-mode wall clock, so `bench_e14_tracing` can assert the sampled
//! overhead stays under its budget. For every recorded trace it rebuilds
//! the span DAG ([`TraceGraph`]), checks that **every parent resolves**
//! (causality survives loss, duplication and reordering) and that the
//! critical path **telescopes**: per-step waits sum exactly to the
//! measured end-to-end tick latency.
//!
//! Everything except `wall_ns` (and the overhead ratios derived from it)
//! is deterministic in the seed; [`E14Report::normalized`] strips those
//! fields for run-to-run equality checks.

use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

use apdm_comms::{CommsConfig, Courier, Envelope, Incoming};
use apdm_simnet::{Link, Network, NodeId, Topology};
use apdm_telemetry as telemetry;
use apdm_telemetry::{trace_id, TraceGraph, TraceRecord, TraceSampler};
use serde::{Deserialize, Serialize};

use crate::request::{Decision, DecisionRequest};
use crate::service::{PolicyDecisionService, ServeConfig};
use crate::workload::{standard_stacks, WorkloadGen, WorkloadOracle, WorkloadSpec};

/// Wire payload of the traced pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeMsg {
    /// A client's decision request.
    Request(DecisionRequest),
    /// The service's answer.
    Decision(Decision),
}

/// How much of the request population records a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// No contexts are minted and no telemetry dispatch is installed: the
    /// baseline the other modes are measured against.
    Disabled,
    /// Head-based sampling: one trace in [`E14Config::sample_period`]
    /// records; every request still *propagates* a context (the fixed cost
    /// of causality), but only sampled traces emit records.
    Sampled,
    /// Every trace records.
    Full,
}

impl TraceMode {
    /// All three modes, baseline first.
    pub fn all() -> [TraceMode; 3] {
        [TraceMode::Disabled, TraceMode::Sampled, TraceMode::Full]
    }

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            TraceMode::Disabled => "disabled",
            TraceMode::Sampled => "sampled",
            TraceMode::Full => "full",
        }
    }

    fn sampler(&self, seed: u64, period: u64) -> TraceSampler {
        match self {
            TraceMode::Disabled => TraceSampler::never(),
            TraceMode::Sampled => TraceSampler::one_in(seed, period.max(2)),
            TraceMode::Full => TraceSampler::always(),
        }
    }
}

/// Configuration of one E14 run (all three modes share it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E14Config {
    /// Master seed: workload, network faults and sampling derive from it.
    pub seed: u64,
    /// Ticks during which the client offers requests.
    pub arrival_ticks: u64,
    /// Requests offered per tick.
    pub per_tick: usize,
    /// Device population.
    pub devices: u64,
    /// Service shards (= guard stacks).
    pub shards: usize,
    /// Service worker threads (0 = auto). Never affects the trace stream.
    pub threads: usize,
    /// Sampling period of [`TraceMode::Sampled`] (one trace in this many).
    pub sample_period: u64,
    /// Link latency in ticks.
    pub latency: u64,
    /// Link loss probability (drives retries).
    pub loss: f64,
    /// Link duplication probability (drives dedups).
    pub dup: f64,
    /// Link reorder probability (late copies overtaken by fresh sends).
    pub reorder: f64,
    /// Tick at which the link partitions (`0` = never).
    pub partition_at: u64,
    /// Ticks the partition lasts.
    pub partition_ticks: u64,
    /// Evaluate the serving SLOs every this many ticks (0 = off).
    pub slo_every: u64,
    /// Tick budget per mode: fail loudly instead of spinning forever.
    pub max_ticks: u64,
}

impl Default for E14Config {
    fn default() -> Self {
        E14Config {
            seed: 42,
            arrival_ticks: 60,
            per_tick: 4,
            devices: 32,
            shards: 4,
            threads: 1,
            sample_period: 8,
            latency: 2,
            loss: 0.15,
            dup: 0.10,
            reorder: 0.05,
            partition_at: 0,
            partition_ticks: 0,
            slo_every: 16,
            max_ticks: 5_000,
        }
    }
}

impl E14Config {
    /// A fast configuration for CI smoke runs and unit tests.
    pub fn smoke() -> Self {
        E14Config {
            arrival_ticks: 16,
            per_tick: 2,
            max_ticks: 1_000,
            ..E14Config::default()
        }
    }
}

/// Measurements of one mode's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E14ModeReport {
    /// Mode label (`disabled`/`sampled`/`full`).
    pub mode: String,
    /// Requests the client offered.
    pub offered: u64,
    /// Responses the client received.
    pub completed: u64,
    /// Requests the client gave up on (retries exhausted).
    pub expired: u64,
    /// Requests the service evaluated.
    pub decided: u64,
    /// Requests the service shed (all reasons; every one denied).
    pub shed: u64,
    /// Client-side retransmissions.
    pub retries: u64,
    /// Duplicate deliveries suppressed by the couriers.
    pub dedup_dropped: u64,
    /// Server response-cache hits (duplicates re-answered without the app).
    pub response_cache_hits: u64,
    /// Telemetry records captured.
    pub records: u64,
    /// Distinct recorded trace ids.
    pub traces: u64,
    /// Span-DAG nodes across all recorded traces.
    pub trace_nodes: u64,
    /// Non-root parents that failed to resolve (must be 0).
    pub unresolved_parents: u64,
    /// Critical paths reconstructed (every one checked to telescope).
    pub paths_checked: u64,
    /// Worst end-to-end tick latency over the reconstructed paths.
    pub max_path_ticks: u64,
    /// Most frequent latency-dominating step across the paths.
    pub dominant_hop: String,
    /// `slo.eval` events emitted.
    pub slo_evals: u64,
    /// Ticks the run took (arrival window + drain).
    pub ticks: u64,
    /// Wall-clock for the run. **Not** part of the determinism contract.
    pub wall_ns: u64,
}

/// The full E14 report (serialized to `BENCH_e14_tracing.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E14Report {
    /// The run configuration.
    pub config: E14Config,
    /// One report per mode, in [`TraceMode::all`] order.
    pub modes: Vec<E14ModeReport>,
    /// `(sampled − disabled) / disabled` wall-clock overhead. Derived from
    /// wall time, so not deterministic.
    pub overhead_sampled: f64,
    /// `(full − disabled) / disabled` wall-clock overhead.
    pub overhead_full: f64,
    /// Wall-clock for all three runs.
    pub wall_ns: u64,
}

impl E14Report {
    /// A copy with every wall-clock-derived field zeroed: two runs over the
    /// same config must compare equal under this projection.
    pub fn normalized(&self) -> E14Report {
        let mut report = self.clone();
        report.wall_ns = 0;
        report.overhead_sampled = 0.0;
        report.overhead_full = 0.0;
        for mode in &mut report.modes {
            mode.wall_ns = 0;
        }
        report
    }

    /// The report for one mode, if present.
    pub fn mode(&self, mode: TraceMode) -> Option<&E14ModeReport> {
        self.modes.iter().find(|m| m.mode == mode.label())
    }
}

/// Run one mode of the E14 pipeline and return its report plus the captured
/// telemetry records (empty in [`TraceMode::Disabled`]). The records are
/// what `apdm-experiments trace-analyze` consumes after
/// [`export_jsonl`](telemetry::export_jsonl).
pub fn run_e14_mode(cfg: &E14Config, mode: TraceMode) -> (E14ModeReport, Vec<TraceRecord>) {
    let started = Instant::now();

    let mut topo = Topology::new();
    let client_node = topo.add_node();
    let server_node = topo.add_node();
    topo.connect(
        client_node,
        server_node,
        Link::with_latency(cfg.latency)
            .with_loss(cfg.loss)
            .with_dup(cfg.dup)
            .with_reorder(cfg.reorder),
    );
    let mut net: Network<Envelope<ServeMsg>> = Network::with_seed(topo, cfg.seed);

    let comms_cfg = CommsConfig {
        timeout: 2 * cfg.latency + 2,
        max_retries: 16,
        backoff_factor: 1,
        jitter: 1,
        ..CommsConfig::default()
    };
    let mut client = Courier::new(client_node, comms_cfg, cfg.seed ^ 0xC11E);
    let mut server = Courier::new(server_node, comms_cfg, cfg.seed ^ 0x5E4E);

    let mut svc = PolicyDecisionService::new(
        ServeConfig {
            seed: cfg.seed,
            threads: cfg.threads,
            shards: cfg.shards,
            cache: true,
            slo_every: cfg.slo_every,
            ..ServeConfig::default()
        },
        standard_stacks(cfg.shards, true),
        WorkloadOracle,
        &format!("e14/{}", mode.label()),
    );
    let mut gen = WorkloadGen::new(WorkloadSpec {
        seed: cfg.seed,
        per_tick: cfg.per_tick,
        arrival_ticks: cfg.arrival_ticks,
        devices: cfg.devices,
        // The network adds hops before admission, so deadlines need slack
        // for latency plus a few retries.
        deadline_slack: Some(8 * cfg.latency + 24),
        ..WorkloadSpec::default()
    });
    let offered = gen.total_offered();

    let collector = Rc::new(telemetry::RingCollector::new(
        (offered as usize) * 24 + 4_096,
    ));
    // Disabled mode installs nothing: `telemetry::enabled()` stays false and
    // no contexts are minted — the true zero-cost baseline.
    let guard = match mode {
        TraceMode::Disabled => None,
        _ => Some(telemetry::install(
            collector.clone() as Rc<dyn telemetry::Subscriber>
        )),
    };
    let sampler = mode.sampler(cfg.seed, cfg.sample_period);

    // Decisions the service still owes a network response: request id →
    // (requester, request MsgId).
    let mut owed: BTreeMap<u64, (NodeId, apdm_comms::MsgId)> = BTreeMap::new();
    let mut completed = 0u64;
    let mut expired = 0u64;
    let mut now = 0u64;
    loop {
        now += 1;
        if now > cfg.max_ticks {
            panic!("e14/{}: tick budget exhausted", mode.label());
        }
        telemetry::set_tick(now);
        if cfg.partition_at > 0 {
            if now == cfg.partition_at {
                net.topology_mut().partition(&[client_node]);
            } else if now == cfg.partition_at + cfg.partition_ticks {
                net.topology_mut().heal();
            }
        }
        for d in net.deliver_at(now) {
            if d.to == server_node {
                if let Some(Incoming::Request {
                    from,
                    id,
                    ctx,
                    payload: ServeMsg::Request(mut req),
                }) = server.accept(&mut net, d, now)
                {
                    // Continue the causal chain from the delivery's recv
                    // span; the serve pipeline advances it stage by stage.
                    req.ctx = ctx;
                    let req_id = req.id;
                    match svc.submit(req, now) {
                        // Admission shed: answer immediately, chaining the
                        // response off the shed span.
                        Some(decision) => {
                            let ctx = decision.ctx;
                            server.respond_traced(
                                &mut net,
                                from,
                                id,
                                ServeMsg::Decision(decision),
                                now,
                                ctx,
                            );
                        }
                        None => {
                            owed.insert(req_id, (from, id));
                        }
                    }
                }
            } else if let Some(Incoming::Response {
                ctx,
                payload: ServeMsg::Decision(decision),
                ..
            }) = client.accept(&mut net, d, now)
            {
                if let Some(c) = ctx {
                    if telemetry::enabled() && c.sampled {
                        let mut fields = Vec::new();
                        c.child(1).push_fields(client_node.0, &mut fields);
                        telemetry::emit_event("client.done", telemetry::Level::Debug, fields);
                    }
                }
                let _ = decision;
                completed += 1;
            }
        }
        for decision in svc.tick(now) {
            if let Some((to, re)) = owed.remove(&decision.request_id) {
                let ctx = decision.ctx;
                server.respond_traced(&mut net, to, re, ServeMsg::Decision(decision), now, ctx);
            }
        }
        for req in gen.tick_requests(now) {
            let root = match mode {
                TraceMode::Disabled => None,
                _ => Some(sampler.root(trace_id(cfg.seed, req.id))),
            };
            if let Some(root) = root {
                if telemetry::enabled() && root.sampled {
                    let mut fields = Vec::new();
                    root.push_fields(client_node.0, &mut fields);
                    telemetry::emit_event("client.submit", telemetry::Level::Debug, fields);
                }
            }
            client.request_traced(&mut net, server_node, ServeMsg::Request(req), now, root);
        }
        expired += client.poll(&mut net, now).len() as u64;
        server.poll(&mut net, now);
        if now > cfg.arrival_ticks
            && completed + expired >= offered
            && svc.queue_depth() == 0
            && owed.is_empty()
        {
            break;
        }
    }
    let stats = svc.stats();
    let (ledger, _) = svc.finish(now);
    ledger.verify().expect("e14 ledger must verify");
    let (_, _, retries, dedup_dropped) = client.counters();
    let (response_cache_hits, _) = server.cache_counters();
    let records = if guard.is_some() {
        collector.records()
    } else {
        Vec::new()
    };
    drop(guard);

    // Rebuild the span DAG and check the tentpole invariants for every
    // recorded trace: parents resolve, critical paths telescope.
    let graph = TraceGraph::build(&records);
    let unresolved = graph.unresolved_parents();
    let mut paths_checked = 0u64;
    let mut max_path_ticks = 0u64;
    let mut dominant_counts: BTreeMap<String, u64> = BTreeMap::new();
    for trace in graph.traces() {
        let path = graph
            .critical_path(trace)
            .expect("recorded trace must yield a path");
        let waits: u64 = path.steps.iter().map(|s| s.wait_ticks).sum();
        assert_eq!(
            waits,
            path.total_ticks,
            "e14/{}: trace {trace:016x} critical path must telescope",
            mode.label()
        );
        paths_checked += 1;
        max_path_ticks = max_path_ticks.max(path.total_ticks);
        *dominant_counts.entry(path.dominant).or_insert(0) += 1;
    }
    let dominant_hop = dominant_counts
        .iter()
        .max_by_key(|&(_, count)| count)
        .map(|(name, _)| name.clone())
        .unwrap_or_default();
    let slo_evals = records.iter().filter(|r| r.name == "slo.eval").count() as u64;

    let report = E14ModeReport {
        mode: mode.label().to_string(),
        offered,
        completed,
        expired,
        decided: stats.decided,
        shed: stats.shed_total(),
        retries,
        dedup_dropped,
        response_cache_hits,
        records: records.len() as u64,
        traces: graph.traces().len() as u64,
        trace_nodes: graph.node_count() as u64,
        unresolved_parents: unresolved.len() as u64,
        paths_checked,
        max_path_ticks,
        dominant_hop,
        slo_evals,
        ticks: now,
        wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    };
    (report, records)
}

/// Run the full E14 experiment: the identical workload under all three
/// trace modes, with wall-clock overhead ratios against the disabled
/// baseline.
pub fn run_e14(cfg: &E14Config) -> E14Report {
    let started = Instant::now();
    let modes: Vec<E14ModeReport> = TraceMode::all()
        .into_iter()
        .map(|mode| run_e14_mode(cfg, mode).0)
        .collect();
    let base = modes[0].wall_ns.max(1) as f64;
    let overhead = |i: usize| (modes[i].wall_ns as f64 - base) / base;
    E14Report {
        config: cfg.clone(),
        overhead_sampled: overhead(1),
        overhead_full: overhead(2),
        modes,
        wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mode_traces_every_request_end_to_end() {
        let cfg = E14Config::smoke();
        let (report, records) = run_e14_mode(&cfg, TraceMode::Full);
        assert_eq!(report.completed + report.expired, report.offered);
        assert!(report.completed > 0, "requests must complete under faults");
        assert_eq!(
            report.unresolved_parents, 0,
            "every span parent must resolve"
        );
        assert_eq!(report.traces, report.offered, "full mode records all");
        assert_eq!(report.paths_checked, report.traces);
        assert!(report.retries > 0, "a 15%-loss link must force retries");
        assert!(!records.is_empty());

        // One completed request spans the whole stack: client intake,
        // courier hops, serve stages, ledger append, response, completion.
        let graph = TraceGraph::build(&records);
        let full_stack = graph.traces().iter().any(|&t| {
            let names: Vec<&str> = graph.nodes(t).iter().map(|n| n.name.as_str()).collect();
            [
                "client.submit",
                "comms.send",
                "comms.recv",
                "serve.admit",
                "serve.batch",
                "serve.shard",
                "serve.ledger",
                "comms.respond",
                "client.done",
            ]
            .iter()
            .all(|stage| names.contains(stage))
        });
        assert!(full_stack, "one trace must span every pipeline stage");
    }

    #[test]
    fn sampled_mode_records_a_strict_subset() {
        let cfg = E14Config::smoke();
        let (full, _) = run_e14_mode(&cfg, TraceMode::Full);
        let (sampled, _) = run_e14_mode(&cfg, TraceMode::Sampled);
        let (disabled, records) = run_e14_mode(&cfg, TraceMode::Disabled);
        assert!(sampled.traces < full.traces);
        assert_eq!(disabled.records, 0);
        assert!(records.is_empty());
        // The decision pipeline itself is mode-invariant.
        assert_eq!(full.decided, sampled.decided);
        assert_eq!(full.decided, disabled.decided);
        assert_eq!(full.completed, disabled.completed);
    }

    #[test]
    fn e14_is_deterministic_modulo_wall_clock() {
        let cfg = E14Config::smoke();
        let a = run_e14(&cfg).normalized();
        let b = run_e14(&cfg).normalized();
        assert_eq!(a, b);
        let (_, r1) = run_e14_mode(&cfg, TraceMode::Full);
        let (_, r2) = run_e14_mode(&cfg, TraceMode::Full);
        assert_eq!(r1, r2, "trace streams must be bit-identical");
    }

    #[test]
    fn trace_stream_is_thread_count_invariant() {
        let runs: Vec<Vec<TraceRecord>> = [1usize, 3, 8]
            .iter()
            .map(|&threads| {
                let cfg = E14Config {
                    threads,
                    ..E14Config::smoke()
                };
                run_e14_mode(&cfg, TraceMode::Full).1
            })
            .collect();
        assert_eq!(runs[0], runs[1], "1 vs 3 threads");
        assert_eq!(runs[0], runs[2], "1 vs 8 threads");
    }
}
