//! Experiment E15: device-skew × scheduling sweep.
//!
//! Drives the [`PolicyDecisionService`] with Zipf-skewed device traffic —
//! the hot device deliberately scrambled onto the *last* shard, the worst
//! case for static contiguous scheduling — and crosses skew ×
//! {[`Scheduling::Static`], [`Scheduling::Balanced`]} × worker threads,
//! with cross-shard admission backpressure on everywhere. Reports per
//! cell: the hot shard's virtual queue-wait percentiles (cost units, from
//! the deterministic wait overlay), backpressure deferrals, virtual
//! makespan/steal totals, and the sealed ledger digest.
//!
//! The claims E15 exists to demonstrate (asserted by `bench_e15_skew`):
//!
//! 1. Under skew ≥ Zipf(1.0), balanced scheduling reduces the hot shard's
//!    p99 virtual queue wait versus static scheduling at every thread
//!    count.
//! 2. Determinism survives the optimization: for a fixed skew, all
//!    {scheduling × threads} cells seal **digest-identical** ledgers —
//!    work stealing and backpressure never leak into decisions.
//! 3. Overload still fails closed: zero shed-allows in every cell.
//!
//! The workload seed, the recorder name, and therefore the ledger bytes
//! depend only on `(seed, zipf)` — never on scheduling mode or thread
//! count — which is what makes claim 2 checkable byte for byte.

use std::time::Instant;

use apdm_ledger::Ledger;
use apdm_par::{par_map, resolve_threads, Watchdog};
use serde::{Deserialize, Serialize};

use crate::admission::AdmissionConfig;
use crate::batcher::{BatchPolicy, CostModel};
use crate::experiment::percentile;
use crate::request::Decision;
use crate::service::{PolicyDecisionService, Scheduling, ServeConfig};
use crate::workload::{standard_stacks, WorkloadGen, WorkloadOracle, WorkloadSpec};

/// Sweep configuration for experiment E15.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E15Config {
    /// Master seed (workload streams derive from it and the skew).
    pub seed: u64,
    /// Ticks during which the generator offers requests.
    pub arrival_ticks: u64,
    /// Offered load (requests per tick) — fixed across the sweep so skew
    /// is the only workload variable.
    pub load: usize,
    /// Device population (the Zipf support).
    pub devices: u64,
    /// Shards (= guard stacks) per service instance.
    pub shards: usize,
    /// Zipf exponents to sweep (0.0 = uniform control).
    pub zipfs: Vec<f64>,
    /// Worker thread counts to sweep per cell.
    pub threads_sweep: Vec<usize>,
    /// Threads for the cell fan-out (0 = auto); cells pin their own
    /// service thread counts from `threads_sweep`.
    pub threads: usize,
    /// Watchdog budget in ticks per cell.
    pub max_ticks: u64,
}

impl Default for E15Config {
    fn default() -> Self {
        E15Config {
            seed: 42,
            arrival_ticks: 160,
            load: 40,
            devices: 64,
            shards: 16,
            zipfs: vec![0.0, 0.6, 1.0, 1.4],
            threads_sweep: vec![1, 3, 8],
            threads: 0,
            max_ticks: 10_000,
        }
    }
}

impl E15Config {
    /// A fast configuration for CI smoke runs: short arrival window, one
    /// uniform and one clearly-skewed point, two thread counts.
    pub fn smoke() -> Self {
        E15Config {
            arrival_ticks: 40,
            zipfs: vec![0.0, 1.2],
            threads_sweep: vec![1, 3],
            max_ticks: 4_000,
            ..E15Config::default()
        }
    }

    /// Stable label for a scheduling mode (used in reports and CLI flags).
    pub fn sched_label(sched: Scheduling) -> &'static str {
        match sched {
            Scheduling::Static => "static",
            Scheduling::Balanced => "balanced",
        }
    }
}

/// Measurements of one E15 cell (one skew × scheduling × thread count).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E15CellReport {
    /// Zipf exponent of the device draw.
    pub zipf: f64,
    /// `static` or `balanced`.
    pub sched: String,
    /// Service worker threads for this cell.
    pub threads: usize,
    /// Requests offered by the generator.
    pub offered: u64,
    /// Requests evaluated by a guard stack.
    pub decided: u64,
    /// Requests refused (all reasons).
    pub shed: u64,
    /// Sheds: deadline expired in queue.
    pub shed_deadline: u64,
    /// Shed decisions whose verdict permitted execution — must be zero.
    pub shed_allows: u64,
    /// Requests deferred to a later batch by cross-shard backpressure.
    pub deferrals: u64,
    /// The shard that decided the most requests.
    pub hot_shard: usize,
    /// Requests the hot shard decided.
    pub hot_requests: u64,
    /// Hot shard's share of all decided requests.
    pub hot_share: f64,
    /// Median virtual queue wait on the hot shard, in cost units.
    pub hot_p50_wait: u64,
    /// 99th-percentile virtual queue wait on the hot shard, in cost units.
    pub hot_p99_wait: u64,
    /// 99th-percentile virtual queue wait across all shards.
    pub all_p99_wait: u64,
    /// 99th-percentile queue latency of decided requests, in ticks.
    pub p99_queue_ticks: u64,
    /// Sum of per-batch virtual makespans, in cost units (deterministic).
    pub makespan_units: u64,
    /// Chunks the virtual schedule moved off their static home worker.
    pub virtual_steals: u64,
    /// Records in the sealed run ledger.
    pub ledger_records: u64,
    /// Head digest of the sealed, verified run ledger. Identical across
    /// scheduling modes and thread counts for a fixed `(seed, zipf)`.
    pub ledger_digest: u64,
    /// Set when the drain watchdog tripped.
    pub watchdog: Option<String>,
    /// Wall-clock for the cell. **Not** part of the determinism contract.
    pub wall_ns: u64,
}

/// The full E15 sweep report (serialized to `BENCH_e15_skew.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E15Report {
    /// The sweep configuration.
    pub config: E15Config,
    /// One report per (zipf × scheduling × threads) cell, zipf outer,
    /// scheduling middle (static then balanced), threads inner.
    pub cells: Vec<E15CellReport>,
    /// Wall-clock for the whole sweep. Not deterministic.
    pub wall_ns: u64,
}

impl E15Report {
    /// A copy with every wall-clock field zeroed: two sweeps over the same
    /// config must compare equal under this projection.
    pub fn normalized(&self) -> E15Report {
        let mut report = self.clone();
        report.wall_ns = 0;
        for cell in &mut report.cells {
            cell.wall_ns = 0;
        }
        report
    }

    /// The cell for `(zipf, sched, threads)`, if present.
    pub fn cell(&self, zipf: f64, sched: Scheduling, threads: usize) -> Option<&E15CellReport> {
        let label = E15Config::sched_label(sched);
        self.cells
            .iter()
            .find(|c| c.zipf == zipf && c.sched == label && c.threads == threads)
    }
}

/// The workload driving one skew point. Depends only on `(seed, zipf)` so
/// every (scheduling × threads) cell at this skew replays the identical
/// request stream.
fn skew_spec(cfg: &E15Config, zipf: f64) -> WorkloadSpec {
    WorkloadSpec {
        seed: cfg.seed ^ ((zipf * 100.0) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        per_tick: cfg.load,
        arrival_ticks: cfg.arrival_ticks,
        devices: cfg.devices,
        zipf,
        ..WorkloadSpec::default()
    }
}

/// Run one E15 cell and return its report plus the sealed ledger (the CLI
/// writes the ledger out for the byte-for-byte CI comparison).
pub fn run_e15_cell(
    cfg: &E15Config,
    zipf: f64,
    sched: Scheduling,
    threads: usize,
) -> (E15CellReport, Ledger) {
    let started = Instant::now();
    let spec = skew_spec(cfg, zipf);
    let serve_cfg = ServeConfig {
        seed: spec.seed,
        threads,
        shards: cfg.shards,
        admission: AdmissionConfig::default(),
        batch: BatchPolicy::default(),
        cost: CostModel::default(),
        cache: true,
        slo_every: 0,
        scheduling: sched,
        backpressure: true,
        rotation: None,
    };
    // The recorder name must not mention scheduling or threads: the sealed
    // ledger is asserted byte-identical across both.
    let mut svc = PolicyDecisionService::new(
        serve_cfg,
        standard_stacks(cfg.shards, true),
        WorkloadOracle,
        &format!("e15/zipf{zipf:.2}"),
    );
    let mut gen = WorkloadGen::new(spec);
    let offered = gen.total_offered();

    let mut dog = Watchdog::new(cfg.max_ticks);
    let mut watchdog = None;
    let mut latencies: Vec<u64> = Vec::new();
    let mut shed_allows = 0u64;
    let mut collect = |d: Decision, latencies: &mut Vec<u64>| {
        if d.shed.is_some() {
            if d.verdict.permits_execution() {
                shed_allows += 1;
            }
        } else {
            latencies.push(d.queue_ticks());
        }
    };
    let mut now = 0u64;
    loop {
        now += 1;
        if let Err(trip) = dog.charge(1) {
            watchdog = Some(trip.to_string());
            break;
        }
        for req in gen.tick_requests(now) {
            if let Some(d) = svc.submit(req, now) {
                collect(d, &mut latencies);
            }
        }
        for d in svc.tick(now) {
            collect(d, &mut latencies);
        }
        if now >= cfg.arrival_ticks && svc.queue_depth() == 0 {
            break;
        }
    }
    let mut shard_waits = svc.drain_shard_waits();
    let sched_summary = svc.sched_summary();
    let stats = svc.stats();
    let (ledger, _) = svc.finish(now);
    ledger.verify().expect("cell ledger must verify");

    // Hot shard = most decided requests; ties go to the lowest index so
    // the pick is deterministic.
    let hot_shard = (0..shard_waits.len())
        .max_by_key(|&s| (shard_waits[s].len(), usize::MAX - s))
        .unwrap_or(0);
    let hot_requests = shard_waits[hot_shard].len() as u64;
    let hot_p50_wait = percentile(&mut shard_waits[hot_shard], 0.50);
    let hot_p99_wait = percentile(&mut shard_waits[hot_shard], 0.99);
    let mut all_waits: Vec<u64> = shard_waits.iter().flatten().copied().collect();
    let all_p99_wait = percentile(&mut all_waits, 0.99);

    let report = E15CellReport {
        zipf,
        sched: E15Config::sched_label(sched).to_string(),
        threads,
        offered,
        decided: stats.decided,
        shed: stats.shed_total(),
        shed_deadline: stats.shed_deadline,
        shed_allows,
        deferrals: stats.deferrals,
        hot_shard,
        hot_requests,
        hot_share: hot_requests as f64 / stats.decided.max(1) as f64,
        hot_p50_wait,
        hot_p99_wait,
        all_p99_wait,
        p99_queue_ticks: percentile(&mut latencies, 0.99),
        makespan_units: sched_summary.makespan_units,
        virtual_steals: sched_summary.virtual_steals,
        ledger_records: ledger.len() as u64,
        ledger_digest: ledger.head_digest(),
        watchdog,
        wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    };
    (report, ledger)
}

/// Run the full E15 sweep: every zipf × {static, balanced} × threads,
/// fanned out across the worker pool with order-preserving collection.
pub fn run_e15(cfg: &E15Config) -> E15Report {
    let started = Instant::now();
    let cells: Vec<(f64, Scheduling, usize)> = cfg
        .zipfs
        .iter()
        .flat_map(|&zipf| {
            [Scheduling::Static, Scheduling::Balanced]
                .into_iter()
                .flat_map(move |sched| {
                    cfg.threads_sweep
                        .iter()
                        .map(move |&threads| (zipf, sched, threads))
                        .collect::<Vec<_>>()
                })
        })
        .collect();
    let threads = resolve_threads(cfg.threads);
    let cells = par_map(threads, cells, |_, (zipf, sched, cell_threads)| {
        run_e15_cell(cfg, zipf, sched, cell_threads).0
    });
    E15Report {
        config: cfg.clone(),
        cells,
        wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> E15Config {
        E15Config {
            arrival_ticks: 16,
            zipfs: vec![0.0, 1.2],
            threads_sweep: vec![1, 3],
            max_ticks: 2_000,
            ..E15Config::default()
        }
    }

    #[test]
    fn skewed_cells_share_one_ledger_across_sched_and_threads() {
        let cfg = tiny();
        let mut digests = std::collections::BTreeMap::new();
        for &zipf in &cfg.zipfs {
            for sched in [Scheduling::Static, Scheduling::Balanced] {
                for &threads in &cfg.threads_sweep {
                    let (cell, ledger) = run_e15_cell(&cfg, zipf, sched, threads);
                    assert_eq!(cell.watchdog, None);
                    assert_eq!(cell.shed_allows, 0);
                    assert_eq!(cell.decided + cell.shed, cell.offered);
                    let bytes = ledger.to_jsonl();
                    let entry = digests
                        .entry(format!("{zipf}"))
                        .or_insert_with(|| (cell.ledger_digest, bytes.clone()));
                    assert_eq!(
                        (entry.0, &entry.1),
                        (cell.ledger_digest, &bytes),
                        "zipf={zipf} sched={:?} threads={threads}: ledger diverged",
                        sched
                    );
                }
            }
        }
    }

    #[test]
    fn skew_concentrates_the_hot_shard_and_balancing_helps() {
        let cfg = E15Config {
            arrival_ticks: 60,
            ..tiny()
        };
        let (uniform, _) = run_e15_cell(&cfg, 0.0, Scheduling::Balanced, 1);
        let (skewed, _) = run_e15_cell(&cfg, 1.2, Scheduling::Balanced, 1);
        assert!(
            skewed.hot_share > uniform.hot_share * 2.0,
            "Zipf(1.2) hot share {} should dwarf uniform {}",
            skewed.hot_share,
            uniform.hot_share
        );
        // The hot device scrambles onto the last shard.
        assert_eq!(skewed.hot_shard, cfg.shards - 1);
        assert!(skewed.deferrals > 0, "hot shard must trip backpressure");
        let (stat, _) = run_e15_cell(&cfg, 1.2, Scheduling::Static, 3);
        let (bal, _) = run_e15_cell(&cfg, 1.2, Scheduling::Balanced, 3);
        assert_eq!(stat.ledger_digest, bal.ledger_digest);
        assert!(
            bal.hot_p99_wait < stat.hot_p99_wait,
            "balanced hot p99 {} should beat static {}",
            bal.hot_p99_wait,
            stat.hot_p99_wait
        );
        assert!(bal.virtual_steals > 0);
        assert_eq!(stat.virtual_steals, 0);
    }
}
