//! Checkpoint/restore of the decision service.
//!
//! A [`ServeCheckpoint`] freezes everything the decision stream depends on
//! — admission-queue lanes and DRR deficits, the work meter, per-shard
//! backpressure costs, the batch cursor (inside [`ServeStats`]) and every
//! shard's guard-verdict memo cache — as one serializable value that rides
//! the run ledger as a [`SnapshotFrame`] at segment-rotation points. A
//! restarted process restores from the latest frame and resumes mid-run,
//! producing a decision stream and a sealed ledger **bit-identical** to an
//! uninterrupted run at any thread count (experiment E16 sweeps this).
//!
//! What is deliberately *not* checkpointed, because it is telemetry rather
//! than decision state: [`SchedSummary`](crate::SchedSummary) (its
//! `makespan_units` / `virtual_steals` depend on the thread count, which a
//! restarted process is free to change), the per-shard wait samples, and
//! the SLO monitor. Restoring them would couple the ledger bytes to knobs
//! the determinism contract says must not matter.
//!
//! The serving layer has no RNG and no world model, so the frame's `rng`,
//! `metrics` and `devices` fields are zeroed/empty; the checkpoint rides
//! entirely in `world`.

use apdm_guards::GuardVerdict;
use apdm_ledger::{LedgerError, SnapshotFrame};
use apdm_policy::Action;
use apdm_statespace::State;
use apdm_telemetry::TraceContext;
use serde::{Deserialize, Serialize, Value};

use crate::request::{DecisionRequest, TenantId};
use crate::service::ServeStats;

/// Serializable mirror of [`TraceContext`] (the telemetry crate is
/// deliberately dependency-free, so the mirror lives here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtxSnap {
    /// Id of the end-to-end operation every hop shares.
    pub trace_id: u64,
    /// Id of the current span (this hop).
    pub span_id: u64,
    /// Span id of the causing hop; `0` at the root.
    pub parent_id: u64,
    /// Whether this trace records.
    pub sampled: bool,
}

impl From<TraceContext> for CtxSnap {
    fn from(ctx: TraceContext) -> Self {
        CtxSnap {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            sampled: ctx.sampled,
        }
    }
}

impl From<CtxSnap> for TraceContext {
    fn from(snap: CtxSnap) -> Self {
        TraceContext {
            trace_id: snap.trace_id,
            span_id: snap.span_id,
            parent_id: snap.parent_id,
            sampled: snap.sampled,
        }
    }
}

/// Serializable mirror of one queued [`DecisionRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReqSnap {
    /// Caller-assigned request id.
    pub id: u64,
    /// Billed tenant.
    pub tenant: u32,
    /// Subject device (also the shard key).
    pub device: u64,
    /// The device's perceived state.
    pub state: State,
    /// The proposed action under judgment.
    pub proposed: Action,
    /// Alternatives the device's logic could take instead.
    pub alternatives: Vec<Action>,
    /// Tick the request entered the service.
    pub submitted_at: u64,
    /// Absolute deadline tick, if any.
    pub deadline: Option<u64>,
    /// Trace context at the point of capture, if the request was traced.
    pub ctx: Option<CtxSnap>,
}

impl From<&DecisionRequest> for ReqSnap {
    fn from(req: &DecisionRequest) -> Self {
        ReqSnap {
            id: req.id,
            tenant: req.tenant.0,
            device: req.device,
            state: req.state.clone(),
            proposed: req.proposed.clone(),
            alternatives: req.alternatives.clone(),
            submitted_at: req.submitted_at,
            deadline: req.deadline,
            ctx: req.ctx.map(CtxSnap::from),
        }
    }
}

impl From<ReqSnap> for DecisionRequest {
    fn from(snap: ReqSnap) -> Self {
        DecisionRequest {
            id: snap.id,
            tenant: TenantId(snap.tenant),
            device: snap.device,
            state: snap.state,
            proposed: snap.proposed,
            alternatives: snap.alternatives,
            submitted_at: snap.submitted_at,
            deadline: snap.deadline,
            ctx: snap.ctx.map(TraceContext::from),
        }
    }
}

/// One admission lane: a tenant's DRR deficit plus its queued requests,
/// front of the queue first. Empty lanes are captured too, so the restored
/// queue is structurally identical to the original.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneSnap {
    /// The lane's tenant.
    pub tenant: u32,
    /// Unspent DRR credit.
    pub deficit: u32,
    /// Queued requests, dequeue order.
    pub queue: Vec<ReqSnap>,
}

/// One memoized guard verdict: the request fingerprint and the verdict the
/// stack would replay for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The guard stack's request fingerprint.
    pub fp: u64,
    /// The memoized verdict.
    pub verdict: GuardVerdict,
}

/// One shard's guard-verdict memo cache: entries in key order plus the
/// hit/miss counters (the counters feed the deterministic cost model, so
/// they are decision state, not telemetry).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnap {
    /// Memoized verdicts in fingerprint order.
    pub entries: Vec<CacheEntry>,
    /// Lifetime cache hits.
    pub hits: u64,
    /// Lifetime cache misses.
    pub misses: u64,
}

/// Everything a [`PolicyDecisionService`](crate::PolicyDecisionService)
/// needs to resume mid-run with a bit-identical future. See the module
/// docs for what is deliberately excluded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeCheckpoint {
    /// The tick after which the checkpoint was taken; a restored service
    /// resumes at `tick + 1`.
    pub tick: u64,
    /// Admission lanes in tenant order (empty lanes included).
    pub lanes: Vec<LaneSnap>,
    /// DRR rotation order of backlogged tenants (front is being served).
    pub rotation: Vec<u32>,
    /// The work meter's credit (may be negative: outstanding debt).
    pub meter_credit: i64,
    /// The work meter's lifetime spend.
    pub meter_spent: u64,
    /// Estimated in-flight cost per shard — the backpressure signal.
    pub shard_inflight: Vec<u64>,
    /// Lifetime counters. `stats.batches` doubles as the steal-plan cursor,
    /// so it must be restored exactly for balanced scheduling to replay.
    pub stats: ServeStats,
    /// Per-shard memo caches; `None` for shards running with the cache off.
    pub caches: Vec<Option<CacheSnap>>,
}

impl ServeCheckpoint {
    /// Package the checkpoint as a ledger [`SnapshotFrame`]. The serving
    /// layer draws no randomness and owns no world/device state, so those
    /// frame fields are zeroed; the checkpoint rides in `world`.
    pub fn to_frame(&self) -> SnapshotFrame {
        SnapshotFrame {
            tick: self.tick,
            rng: [0; 4],
            world: serde_json::to_value(self).expect("checkpoint serialization cannot fail"),
            metrics: Value::Null,
            devices: Vec::new(),
        }
    }

    /// Rebuild a checkpoint from a ledger frame written by
    /// [`to_frame`](ServeCheckpoint::to_frame).
    pub fn from_frame(frame: &SnapshotFrame) -> Result<Self, LedgerError> {
        serde_json::from_value(frame.world.clone())
            .map_err(|e| LedgerError::Snapshot(format!("serve checkpoint: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::schema;
    use apdm_statespace::StateDelta;

    fn sample() -> ServeCheckpoint {
        ServeCheckpoint {
            tick: 17,
            lanes: vec![
                LaneSnap {
                    tenant: 0,
                    deficit: 3,
                    queue: vec![ReqSnap {
                        id: 9,
                        tenant: 0,
                        device: 4,
                        state: schema().state(&[1.0]).unwrap(),
                        proposed: Action::adjust("patrol", StateDelta::empty()),
                        alternatives: vec![Action::adjust("east", StateDelta::empty())],
                        submitted_at: 15,
                        deadline: Some(23),
                        ctx: Some(CtxSnap {
                            trace_id: 1,
                            span_id: 2,
                            parent_id: 0,
                            sampled: true,
                        }),
                    }],
                },
                LaneSnap {
                    tenant: 2,
                    deficit: 0,
                    queue: Vec::new(),
                },
            ],
            rotation: vec![0],
            meter_credit: -12,
            meter_spent: 480,
            shard_inflight: vec![0, 6, 0, 2],
            stats: ServeStats {
                submitted: 40,
                batches: 7,
                ..ServeStats::default()
            },
            caches: vec![
                Some(CacheSnap {
                    entries: vec![CacheEntry {
                        fp: 0xfeed_f00d,
                        verdict: GuardVerdict::Allow,
                    }],
                    hits: 5,
                    misses: 9,
                }),
                None,
            ],
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_a_ledger_frame() {
        let cp = sample();
        let frame = cp.to_frame();
        assert_eq!(frame.tick, 17);
        assert_eq!(frame.rng, [0; 4]);
        let back = ServeCheckpoint::from_frame(&frame).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn request_snapshots_roundtrip() {
        let req = DecisionRequest {
            id: 3,
            tenant: TenantId(1),
            device: 8,
            state: schema().state(&[2.0]).unwrap(),
            proposed: Action::adjust("patrol", StateDelta::empty()),
            alternatives: Vec::new(),
            submitted_at: 4,
            deadline: None,
            ctx: Some(TraceContext {
                trace_id: 7,
                span_id: 8,
                parent_id: 6,
                sampled: false,
            }),
        };
        let snap = ReqSnap::from(&req);
        let back = DecisionRequest::from(snap);
        assert_eq!(back, req);
    }

    #[test]
    fn a_malformed_frame_is_a_snapshot_error() {
        let frame = SnapshotFrame {
            tick: 0,
            rng: [0; 4],
            world: Value::Bool(true),
            metrics: Value::Null,
            devices: Vec::new(),
        };
        assert!(matches!(
            ServeCheckpoint::from_frame(&frame),
            Err(LedgerError::Snapshot(_))
        ));
    }
}
