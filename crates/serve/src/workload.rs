//! Seeded open-loop workload generation for the serving experiments.
//!
//! An **open-loop** generator offers requests at a configured rate
//! regardless of how the service is coping — the standard way to expose a
//! saturation point (a closed-loop client would politely slow down and hide
//! it). The generator is a pure function of `(seed, tick)` so two sweeps
//! over the same spec submit byte-identical request streams.
//!
//! The request population is deliberately *quantized*: device states sit on
//! a small grid and proposals come from a four-action vocabulary, so the
//! guard stacks see many repeated `(state, action, alternatives)` contexts.
//! That is what makes the verdict-memo-cache ablation in experiment E13
//! meaningful — real fleets are exactly this redundant (thousands of
//! devices in a handful of operational modes), which is why the PR-3 memo
//! cache pays off at serving time.

use apdm_guards::{GuardStack, HarmOracle, PreActionCheck, StateSpaceGuard};
use apdm_policy::Action;
use apdm_statespace::{Region, RegionClassifier, State, StateDelta, StateSchema, VarId};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::request::{DecisionRequest, TenantId};

/// The good region of the workload's one-variable state space: `x ∈ [0, 5]`
/// out of a `[0, 10]` schema (the same shape the guard-stack unit tests
/// use).
pub const GOOD_REGION: (f64, f64) = (0.0, 5.0);

/// The quantized state grid. The top value sits one "east" step from the
/// region boundary, so east-moves from it are the state-check's work.
const STATE_GRID: [f64; 5] = [0.5, 1.5, 2.5, 3.5, 4.5];

/// Harm oracle of the serving workload: the `strike` action directly harms
/// a human; nothing else does.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadOracle;

impl HarmOracle for WorkloadOracle {
    fn direct_harm(&self, _state: &State, action: &Action) -> bool {
        action.name() == "strike"
    }

    fn creates_hazard(&self, _state: &State, _action: &Action) -> bool {
        false
    }
}

/// The workload's state schema: one variable `x ∈ [0, 10]`.
pub fn schema() -> StateSchema {
    StateSchema::builder().var("x", 0.0, 10.0).build()
}

/// Build one guard stack per shard for the serving workload: pre-action
/// harm check plus state-space guard over `GOOD_REGION`, optionally with
/// the verdict memo cache. Every shard gets an identical (but independent)
/// stack, so verdicts do not depend on which shard judges a device.
pub fn standard_stacks(shards: usize, cache: bool) -> Vec<GuardStack> {
    (0..shards)
        .map(|_| {
            let stack = GuardStack::new()
                .with_preaction(PreActionCheck::new())
                .with_statecheck(StateSpaceGuard::new(RegionClassifier::new(Region::rect(
                    &[GOOD_REGION],
                ))));
            if cache {
                stack.with_cache()
            } else {
                stack
            }
        })
        .collect()
}

/// Shape of one open-loop workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Master seed; the request stream is a pure function of it.
    pub seed: u64,
    /// Requests offered per tick (the open-loop rate).
    pub per_tick: usize,
    /// Ticks during which requests arrive (the service then drains).
    pub arrival_ticks: u64,
    /// Device population (shard keys are `device % shards`).
    pub devices: u64,
    /// Tenant population. Tenant draw is skewed (tenant 0 gets roughly half
    /// the traffic) so quota shedding and DRR fairness are exercised.
    pub tenants: u32,
    /// Deadline slack in ticks (`None` = requests never expire).
    pub deadline_slack: Option<u64>,
    /// Zipf exponent of the device-popularity distribution. `0.0` keeps
    /// the historical uniform draw (byte-identical request streams to
    /// specs that predate this field); larger values concentrate traffic
    /// on a few hot devices. Popularity ranks are scrambled across the
    /// device-id space (see [`WorkloadGen::rank_device`]) so the hot
    /// device's shard is not an artifact of rank 0 mapping to device 0.
    pub zipf: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 42,
            per_tick: 8,
            arrival_ticks: 200,
            devices: 64,
            tenants: 4,
            deadline_slack: Some(8),
            zipf: 0.0,
        }
    }
}

/// The seeded open-loop request generator. Call
/// [`tick_requests`](Self::tick_requests) once per tick with consecutive
/// tick numbers.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    rng: StdRng,
    schema: StateSchema,
    next_id: u64,
    /// Cumulative Zipf popularity by rank (empty when `zipf == 0.0`, which
    /// preserves the historical uniform device draw byte for byte).
    zipf_cdf: Vec<f64>,
}

impl WorkloadGen {
    /// A generator for `spec`, deterministic in `spec.seed`.
    pub fn new(spec: WorkloadSpec) -> Self {
        let zipf_cdf = if spec.zipf > 0.0 {
            let n = spec.devices.max(1);
            let mut cdf = Vec::with_capacity(n as usize);
            let mut total = 0.0f64;
            for rank in 0..n {
                total += 1.0 / ((rank + 1) as f64).powf(spec.zipf);
                cdf.push(total);
            }
            for c in &mut cdf {
                *c /= total;
            }
            cdf
        } else {
            Vec::new()
        };
        WorkloadGen {
            rng: StdRng::seed_from_u64(spec.seed ^ 0xE13_5E17E),
            schema: schema(),
            next_id: 0,
            zipf_cdf,
            spec,
        }
    }

    /// Map a popularity rank to a device id: a fixed affine scramble
    /// `(5·rank + devices − 1) mod devices` (multiplier 1 when 5 divides
    /// the population, keeping the map a bijection). Rank 0 — the hottest
    /// device — lands on the *highest* device id, so with `devices` a
    /// multiple of the shard count the hot shard is the last shard: the
    /// worst case for static contiguous scheduling, which queues it behind
    /// every block-mate.
    pub fn rank_device(&self, rank: u64) -> u64 {
        let n = self.spec.devices.max(1);
        let mult = if n.is_multiple_of(5) { 1 } else { 5 };
        (rank * mult + (n - 1)) % n
    }

    /// The spec this generator runs.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Total requests this generator will offer over the arrival window.
    pub fn total_offered(&self) -> u64 {
        self.spec.arrival_ticks * self.spec.per_tick as u64
    }

    /// The requests arriving at tick `now` (empty once the arrival window
    /// has passed).
    pub fn tick_requests(&mut self, now: u64) -> Vec<DecisionRequest> {
        if now == 0 || now > self.spec.arrival_ticks {
            return Vec::new();
        }
        (0..self.spec.per_tick).map(|_| self.one(now)).collect()
    }

    /// Draw one request.
    fn one(&mut self, now: u64) -> DecisionRequest {
        let id = self.next_id;
        self.next_id += 1;
        let device = if self.zipf_cdf.is_empty() {
            self.rng.random_range(0..self.spec.devices.max(1))
        } else {
            let u: f64 = self.rng.random();
            let rank = self.zipf_cdf.partition_point(|&c| c <= u) as u64;
            self.rank_device(rank.min(self.spec.devices.max(1) - 1))
        };
        // Skew: tenant 0 absorbs ~half the offered load, the rest is
        // uniform — a realistic "one big operator plus a tail" mix.
        let tenants = self.spec.tenants.max(1);
        let tenant = if tenants > 1 && self.rng.random_bool(0.5) {
            TenantId(0)
        } else {
            TenantId(self.rng.random_range(0..tenants))
        };
        let x = STATE_GRID[self.rng.random_range(0..STATE_GRID.len())];
        let state = self.schema.state(&[x]).expect("grid value in schema");
        // Proposal mix: mostly benign patrols and east-moves, a steady
        // trickle of harmful strikes the pre-action check must catch.
        let roll = self.rng.random_range(0..10u32);
        let proposed = if roll < 5 {
            Action::adjust("patrol", StateDelta::empty())
        } else if roll < 9 {
            Action::adjust("east", StateDelta::single(VarId(0), 1.0))
        } else {
            Action::adjust("strike", StateDelta::empty())
        };
        // Half the requests advertise a safe retreat the state check can
        // substitute for a boundary-crossing east-move.
        let alternatives = if self.rng.random_bool(0.5) {
            vec![Action::adjust("west", StateDelta::single(VarId(0), -1.0))]
        } else {
            Vec::new()
        };
        DecisionRequest {
            id,
            tenant,
            device,
            state,
            proposed,
            alternatives,
            submitted_at: now,
            deadline: self.spec.deadline_slack.map(|s| now + s),
            ctx: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_in_its_seed() {
        let spec = WorkloadSpec::default();
        let mut a = WorkloadGen::new(spec);
        let mut b = WorkloadGen::new(spec);
        for now in 1..=5 {
            assert_eq!(a.tick_requests(now), b.tick_requests(now));
        }
        let mut c = WorkloadGen::new(WorkloadSpec { seed: 7, ..spec });
        let differs = (1..=5).any(|now| {
            // Re-generate a's stream for comparison.
            WorkloadGen::new(spec)
                .tick_requests(now)
                .iter()
                .zip(c.tick_requests(now).iter())
                .any(|(x, y)| x != y)
        });
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn arrival_window_bounds_the_offered_load() {
        let spec = WorkloadSpec {
            per_tick: 3,
            arrival_ticks: 4,
            ..WorkloadSpec::default()
        };
        let mut g = WorkloadGen::new(spec);
        assert_eq!(g.total_offered(), 12);
        assert!(g.tick_requests(0).is_empty(), "tick 0 is pre-arrival");
        let mut total = 0;
        for now in 1..=10 {
            total += g.tick_requests(now).len();
        }
        assert_eq!(total, 12);
    }

    #[test]
    fn zipf_skew_concentrates_on_the_scrambled_hot_device() {
        let spec = WorkloadSpec {
            zipf: 1.2,
            per_tick: 64,
            ..WorkloadSpec::default()
        };
        let mut g = WorkloadGen::new(spec);
        let hot = g.rank_device(0);
        assert_eq!(hot, 63, "rank 0 must land on the last device id");
        // The scramble is a bijection.
        let mut seen: Vec<u64> = (0..64).map(|r| g.rank_device(r)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<u64>>());
        let mut counts = vec![0u64; 64];
        for now in 1..=50 {
            for r in g.tick_requests(now) {
                counts[r.device as usize] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        let max_dev = (0..64).max_by_key(|&d| counts[d]).unwrap() as u64;
        assert_eq!(max_dev, hot, "hottest observed device is rank 0");
        assert!(
            counts[hot as usize] * 5 > total,
            "Zipf(1.2) hot device should draw >20% of traffic, got {}/{}",
            counts[hot as usize],
            total
        );
        // zipf = 0.0 keeps the historical uniform draw byte for byte: the
        // explicit field equals the pre-field default.
        let mut a = WorkloadGen::new(WorkloadSpec::default());
        let mut b = WorkloadGen::new(WorkloadSpec {
            zipf: 0.0,
            ..WorkloadSpec::default()
        });
        for now in 1..=5 {
            assert_eq!(a.tick_requests(now), b.tick_requests(now));
        }
    }

    #[test]
    fn requests_stay_on_the_quantized_grid() {
        let mut g = WorkloadGen::new(WorkloadSpec::default());
        for now in 1..=10 {
            for req in g.tick_requests(now) {
                let x = req.state.values()[0];
                assert!(STATE_GRID.contains(&x), "off-grid state {x}");
                assert!(matches!(req.proposed.name(), "patrol" | "east" | "strike"));
                assert_eq!(req.deadline, Some(now + 8));
                assert!(req.tenant.0 < 4);
                assert!(req.device < 64);
            }
        }
    }
}
