//! Seeded open-loop workload generation for the serving experiments.
//!
//! An **open-loop** generator offers requests at a configured rate
//! regardless of how the service is coping — the standard way to expose a
//! saturation point (a closed-loop client would politely slow down and hide
//! it). The generator is a pure function of `(seed, tick)` so two sweeps
//! over the same spec submit byte-identical request streams.
//!
//! The request population is deliberately *quantized*: device states sit on
//! a small grid and proposals come from a four-action vocabulary, so the
//! guard stacks see many repeated `(state, action, alternatives)` contexts.
//! That is what makes the verdict-memo-cache ablation in experiment E13
//! meaningful — real fleets are exactly this redundant (thousands of
//! devices in a handful of operational modes), which is why the PR-3 memo
//! cache pays off at serving time.

use apdm_guards::{GuardStack, HarmOracle, PreActionCheck, StateSpaceGuard};
use apdm_policy::Action;
use apdm_statespace::{Region, RegionClassifier, State, StateDelta, StateSchema, VarId};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::request::{DecisionRequest, TenantId};

/// The good region of the workload's one-variable state space: `x ∈ [0, 5]`
/// out of a `[0, 10]` schema (the same shape the guard-stack unit tests
/// use).
pub const GOOD_REGION: (f64, f64) = (0.0, 5.0);

/// The quantized state grid. The top value sits one "east" step from the
/// region boundary, so east-moves from it are the state-check's work.
const STATE_GRID: [f64; 5] = [0.5, 1.5, 2.5, 3.5, 4.5];

/// Harm oracle of the serving workload: the `strike` action directly harms
/// a human; nothing else does.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadOracle;

impl HarmOracle for WorkloadOracle {
    fn direct_harm(&self, _state: &State, action: &Action) -> bool {
        action.name() == "strike"
    }

    fn creates_hazard(&self, _state: &State, _action: &Action) -> bool {
        false
    }
}

/// The workload's state schema: one variable `x ∈ [0, 10]`.
pub fn schema() -> StateSchema {
    StateSchema::builder().var("x", 0.0, 10.0).build()
}

/// Build one guard stack per shard for the serving workload: pre-action
/// harm check plus state-space guard over [`GOOD_REGION`], optionally with
/// the verdict memo cache. Every shard gets an identical (but independent)
/// stack, so verdicts do not depend on which shard judges a device.
pub fn standard_stacks(shards: usize, cache: bool) -> Vec<GuardStack> {
    (0..shards)
        .map(|_| {
            let stack = GuardStack::new()
                .with_preaction(PreActionCheck::new())
                .with_statecheck(StateSpaceGuard::new(RegionClassifier::new(Region::rect(
                    &[GOOD_REGION],
                ))));
            if cache {
                stack.with_cache()
            } else {
                stack
            }
        })
        .collect()
}

/// Shape of one open-loop workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Master seed; the request stream is a pure function of it.
    pub seed: u64,
    /// Requests offered per tick (the open-loop rate).
    pub per_tick: usize,
    /// Ticks during which requests arrive (the service then drains).
    pub arrival_ticks: u64,
    /// Device population (shard keys are `device % shards`).
    pub devices: u64,
    /// Tenant population. Tenant draw is skewed (tenant 0 gets roughly half
    /// the traffic) so quota shedding and DRR fairness are exercised.
    pub tenants: u32,
    /// Deadline slack in ticks (`None` = requests never expire).
    pub deadline_slack: Option<u64>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 42,
            per_tick: 8,
            arrival_ticks: 200,
            devices: 64,
            tenants: 4,
            deadline_slack: Some(8),
        }
    }
}

/// The seeded open-loop request generator. Call
/// [`tick_requests`](Self::tick_requests) once per tick with consecutive
/// tick numbers.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    rng: StdRng,
    schema: StateSchema,
    next_id: u64,
}

impl WorkloadGen {
    /// A generator for `spec`, deterministic in `spec.seed`.
    pub fn new(spec: WorkloadSpec) -> Self {
        WorkloadGen {
            rng: StdRng::seed_from_u64(spec.seed ^ 0xE13_5E17E),
            schema: schema(),
            next_id: 0,
            spec,
        }
    }

    /// The spec this generator runs.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Total requests this generator will offer over the arrival window.
    pub fn total_offered(&self) -> u64 {
        self.spec.arrival_ticks * self.spec.per_tick as u64
    }

    /// The requests arriving at tick `now` (empty once the arrival window
    /// has passed).
    pub fn tick_requests(&mut self, now: u64) -> Vec<DecisionRequest> {
        if now == 0 || now > self.spec.arrival_ticks {
            return Vec::new();
        }
        (0..self.spec.per_tick).map(|_| self.one(now)).collect()
    }

    /// Draw one request.
    fn one(&mut self, now: u64) -> DecisionRequest {
        let id = self.next_id;
        self.next_id += 1;
        let device = self.rng.random_range(0..self.spec.devices.max(1));
        // Skew: tenant 0 absorbs ~half the offered load, the rest is
        // uniform — a realistic "one big operator plus a tail" mix.
        let tenants = self.spec.tenants.max(1);
        let tenant = if tenants > 1 && self.rng.random_bool(0.5) {
            TenantId(0)
        } else {
            TenantId(self.rng.random_range(0..tenants))
        };
        let x = STATE_GRID[self.rng.random_range(0..STATE_GRID.len())];
        let state = self.schema.state(&[x]).expect("grid value in schema");
        // Proposal mix: mostly benign patrols and east-moves, a steady
        // trickle of harmful strikes the pre-action check must catch.
        let roll = self.rng.random_range(0..10u32);
        let proposed = if roll < 5 {
            Action::adjust("patrol", StateDelta::empty())
        } else if roll < 9 {
            Action::adjust("east", StateDelta::single(VarId(0), 1.0))
        } else {
            Action::adjust("strike", StateDelta::empty())
        };
        // Half the requests advertise a safe retreat the state check can
        // substitute for a boundary-crossing east-move.
        let alternatives = if self.rng.random_bool(0.5) {
            vec![Action::adjust("west", StateDelta::single(VarId(0), -1.0))]
        } else {
            Vec::new()
        };
        DecisionRequest {
            id,
            tenant,
            device,
            state,
            proposed,
            alternatives,
            submitted_at: now,
            deadline: self.spec.deadline_slack.map(|s| now + s),
            ctx: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_in_its_seed() {
        let spec = WorkloadSpec::default();
        let mut a = WorkloadGen::new(spec);
        let mut b = WorkloadGen::new(spec);
        for now in 1..=5 {
            assert_eq!(a.tick_requests(now), b.tick_requests(now));
        }
        let mut c = WorkloadGen::new(WorkloadSpec { seed: 7, ..spec });
        let differs = (1..=5).any(|now| {
            // Re-generate a's stream for comparison.
            WorkloadGen::new(spec)
                .tick_requests(now)
                .iter()
                .zip(c.tick_requests(now).iter())
                .any(|(x, y)| x != y)
        });
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn arrival_window_bounds_the_offered_load() {
        let spec = WorkloadSpec {
            per_tick: 3,
            arrival_ticks: 4,
            ..WorkloadSpec::default()
        };
        let mut g = WorkloadGen::new(spec);
        assert_eq!(g.total_offered(), 12);
        assert!(g.tick_requests(0).is_empty(), "tick 0 is pre-arrival");
        let mut total = 0;
        for now in 1..=10 {
            total += g.tick_requests(now).len();
        }
        assert_eq!(total, 12);
    }

    #[test]
    fn requests_stay_on_the_quantized_grid() {
        let mut g = WorkloadGen::new(WorkloadSpec::default());
        for now in 1..=10 {
            for req in g.tick_requests(now) {
                let x = req.state.values()[0];
                assert!(STATE_GRID.contains(&x), "off-grid state {x}");
                assert!(matches!(req.proposed.name(), "patrol" | "east" | "strike"));
                assert_eq!(req.deadline, Some(now + 8));
                assert!(req.tenant.0 < 4);
                assert!(req.device < 64);
            }
        }
    }
}
