//! A sharded, micro-batching **policy decision service** with admission
//! control and fail-closed load shedding.
//!
//! The paper's guards (Section VI) assume every proposed action is checked
//! before it executes. At fleet scale that check is a *service*: thousands
//! of devices stream `(state, proposed action)` decision requests to a
//! shared decision point, and the decision point must stay correct — and
//! stay *safe* — under overload. This crate is that serving layer:
//!
//! - [`DecisionRequest`] / [`Decision`] — the request/verdict vocabulary,
//!   multi-tenant ([`TenantId`]) with per-request deadlines.
//! - [`AdmissionQueue`] — bounded per-tenant lanes drained by deficit
//!   round-robin; the bounds are the shed points ([`AdmissionConfig`]).
//! - [`BatchPolicy`] / [`CostModel`] / [`Meter`] — micro-batch close rules
//!   and a deterministic (virtual-cost) account of how much evaluation the
//!   backend absorbs per tick, so saturation is bit-reproducible.
//! - [`PolicyDecisionService`] — the assembled service: admission →
//!   micro-batch → shard by device across [`apdm_par`]'s pool → per-shard
//!   [`apdm_guards::GuardStack`] evaluation (reusing the verdict memo
//!   cache) → hash-chained [`apdm_ledger`] audit of **every** verdict.
//! - [`WorkloadGen`] / [`run_e13`] — seeded open-loop workload generation
//!   and experiment E13, the load sweep crossing batching × cache ×
//!   shedding.
//! - [`Scheduling`] / [`run_e15`] — skew-aware shard scheduling
//!   (deterministic work stealing via [`apdm_par::run_sharded_balanced`]),
//!   cross-shard admission backpressure, and experiment E15, the Zipf
//!   device-skew sweep crossing {static, balanced} × threads.
//! - [`run_calibration`] — fits the virtual [`CostModel`] to measured
//!   per-batch nanoseconds so shed curves track real hardware.
//! - [`ServeCheckpoint`] / [`run_e16`] — crash tolerance: the service
//!   checkpoints its full decision state into the ledger at segment
//!   rotation points ([`ServeConfig::rotation`]), a killed process
//!   restores from the latest valid frame and resumes bit-identically,
//!   and experiment E16 kill-and-resume-sweeps every crash point to
//!   prove it.
//!
//! The design rule throughout is the paper's safety bias applied to
//! serving: **overload may only make the service more conservative.** A
//! request the service cannot afford to evaluate is *denied* (shed), never
//! allowed through unevaluated — see `Decision::shed`, whose only
//! constructor produces a denial.
//!
//! ## Example
//!
//! Drive a seeded workload through a two-shard service to completion and
//! check the service's core invariant — every offered request ends in
//! exactly one audited decision:
//!
//! ```
//! use apdm_serve::{
//!     run_to_completion, standard_stacks, PolicyDecisionService, ServeConfig,
//!     WorkloadGen, WorkloadOracle, WorkloadSpec,
//! };
//!
//! let cfg = ServeConfig {
//!     shards: 2,
//!     ..ServeConfig::default()
//! };
//! let mut svc = PolicyDecisionService::new(
//!     cfg,
//!     standard_stacks(2, true),
//!     WorkloadOracle,
//!     "docs/quickstart",
//! );
//! let mut gen = WorkloadGen::new(WorkloadSpec {
//!     per_tick: 4,
//!     arrival_ticks: 3,
//!     ..WorkloadSpec::default()
//! });
//!
//! let (decisions, final_tick) =
//!     run_to_completion(&mut svc, &mut gen, 1, 3, 100, |_, _| {});
//! let (ledger, stats) = svc.finish_segmented(final_tick);
//!
//! assert_eq!(decisions.len() as u64, gen.total_offered());
//! assert_eq!(stats.decided + stats.shed_total(), gen.total_offered());
//! assert!(ledger.verify().is_ok(), "hash-chained audit trail seals");
//! ```
//!
//! Participates in experiments **E13**–**E17** (DESIGN.md §3): the load
//! sweep (E13), causal tracing (E14), skew scheduling (E15), crash
//! tolerance (E16), and — through the `apdm-net` transport in front of
//! this service — the networked byte-identity experiment (E17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod batcher;
mod calibrate;
mod checkpoint;
mod crash;
mod experiment;
mod request;
mod service;
mod skew;
mod traced;
mod workload;

pub use admission::{AdmissionConfig, AdmissionQueue};
pub use batcher::{BatchPolicy, CostModel, Meter};
pub use calibrate::{run_calibration, CalibrationReport};
pub use checkpoint::{CacheEntry, CacheSnap, CtxSnap, LaneSnap, ReqSnap, ServeCheckpoint};
pub use crash::{
    recover_segments, resume_run, run_e16, run_e16_cell, run_to_completion, segment_header,
    E16CellReport, E16Config, E16Report, Recovery, SimDisk,
};
pub use experiment::{run_e13, run_e13_cell, E13CellReport, E13Config, E13Report, Knobs};
pub use request::{Decision, DecisionRequest, ShedReason, TenantId};
pub use service::{
    standard_slos, PolicyDecisionService, SchedSummary, Scheduling, ServeConfig, ServeStats,
};
pub use skew::{run_e15, run_e15_cell, E15CellReport, E15Config, E15Report};
pub use traced::{run_e14, run_e14_mode, E14Config, E14ModeReport, E14Report, ServeMsg, TraceMode};
pub use workload::{schema, standard_stacks, WorkloadGen, WorkloadOracle, WorkloadSpec};
