//! Experiment E13: serving-layer load sweep.
//!
//! Drives the [`PolicyDecisionService`] with a seeded open-loop workload at
//! increasing offered loads and crosses the three serving knobs — batching,
//! the verdict memo cache, and load shedding — fully (2³ configurations per
//! load). Reports per cell: throughput (decided requests per tick of the
//! deterministic cost model), queue-latency percentiles (p50/p99/p99.9/max
//! in ticks), shed rates by reason, cache hit rates, and the sealed run
//! ledger's head digest.
//!
//! The claims E13 exists to demonstrate (asserted by `bench_e13_serve`):
//!
//! 1. Micro-batching raises sustained throughput at the highest offered
//!    load (amortized dispatch overhead).
//! 2. Shedding is inert at low load (rate 0) and engages monotonically as
//!    offered load crosses the service rate.
//! 3. Overload never weakens safety: every shed request resolves to a
//!    denial — the fail-closed property, checked over every cell.
//!
//! Everything except the `wall_ns` fields is deterministic in the seed;
//! [`E13Report::normalized`] strips those fields for run-to-run equality
//! checks.

use std::time::Instant;

use apdm_par::{par_map, resolve_threads, Watchdog};
use serde::{Deserialize, Serialize};

use crate::admission::AdmissionConfig;
use crate::batcher::BatchPolicy;
use crate::request::Decision;
use crate::service::{PolicyDecisionService, Scheduling, ServeConfig};
use crate::workload::{standard_stacks, WorkloadGen, WorkloadOracle, WorkloadSpec};

/// Sweep configuration for experiment E13.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E13Config {
    /// Master seed (workload streams derive from it).
    pub seed: u64,
    /// Ticks during which the generator offers requests; the service then
    /// drains its queue before the cell closes.
    pub arrival_ticks: u64,
    /// Offered loads (requests per tick), one sweep point each.
    pub loads: Vec<usize>,
    /// Threads for the cell fan-out (0 = auto). Cells themselves run their
    /// services single-threaded — results are thread-invariant either way.
    pub threads: usize,
    /// Shards (= guard stacks) per service instance.
    pub shards: usize,
    /// Watchdog budget in ticks per cell: a cell that cannot drain its
    /// queue within this many ticks fails loudly instead of hanging the
    /// sweep.
    pub max_ticks: u64,
}

impl Default for E13Config {
    fn default() -> Self {
        E13Config {
            seed: 42,
            arrival_ticks: 200,
            loads: vec![2, 8, 32, 64, 96, 128],
            threads: 0,
            shards: 8,
            max_ticks: 10_000,
        }
    }
}

impl E13Config {
    /// A fast configuration for CI smoke runs: short arrival window, one
    /// clearly-underloaded and one clearly-overloaded point.
    pub fn smoke() -> Self {
        E13Config {
            arrival_ticks: 40,
            loads: vec![2, 96],
            max_ticks: 4_000,
            ..E13Config::default()
        }
    }
}

/// One knob setting of the 2³ cross.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Knobs {
    /// Micro-batching on (16/2) or off (singleton batches).
    pub batching: bool,
    /// Verdict memo cache on the per-shard guard stacks.
    pub cache: bool,
    /// Admission bounds + deadlines on; off = nothing is ever refused.
    pub shedding: bool,
}

impl Knobs {
    /// All eight combinations, in a stable order.
    pub fn all() -> Vec<Knobs> {
        let mut out = Vec::with_capacity(8);
        for batching in [true, false] {
            for cache in [true, false] {
                for shedding in [true, false] {
                    out.push(Knobs {
                        batching,
                        cache,
                        shedding,
                    });
                }
            }
        }
        out
    }

    /// Stable cell label, e.g. `batch+cache+shed`.
    pub fn label(&self) -> String {
        format!(
            "{}+{}+{}",
            if self.batching { "batch" } else { "nobatch" },
            if self.cache { "cache" } else { "nocache" },
            if self.shedding { "shed" } else { "noshed" },
        )
    }
}

/// Measurements of one E13 cell (one load × one knob setting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E13CellReport {
    /// `<knobs>` label (see [`Knobs::label`]).
    pub label: String,
    /// Offered load (requests per tick).
    pub load: usize,
    /// Micro-batching on?
    pub batching: bool,
    /// Verdict cache on?
    pub cache: bool,
    /// Shedding on?
    pub shedding: bool,
    /// Requests offered by the generator.
    pub offered: u64,
    /// Requests evaluated by a guard stack.
    pub decided: u64,
    /// Requests refused (all reasons).
    pub shed: u64,
    /// Sheds: global queue at capacity.
    pub shed_capacity: u64,
    /// Sheds: tenant over quota.
    pub shed_quota: u64,
    /// Sheds: deadline expired in queue.
    pub shed_deadline: u64,
    /// Shed decisions whose verdict permitted execution — the fail-closed
    /// invariant demands this stays **zero**.
    pub shed_allows: u64,
    /// Evaluated allows (with or without obligations).
    pub allowed: u64,
    /// Evaluated guard denials.
    pub denied: u64,
    /// Evaluated substitutions.
    pub replaced: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch: f64,
    /// Verdict-cache hits across shards.
    pub cache_hits: u64,
    /// Verdict-cache misses across shards.
    pub cache_misses: u64,
    /// Ticks the cell ran (arrival window + drain).
    pub ticks: u64,
    /// Decided requests per tick of the deterministic cost model.
    pub throughput: f64,
    /// Shed requests / offered requests.
    pub shed_rate: f64,
    /// Median queue latency of decided requests, in ticks.
    pub p50_queue_ticks: u64,
    /// 99th-percentile queue latency, in ticks.
    pub p99_queue_ticks: u64,
    /// 99.9th-percentile queue latency, in ticks.
    pub p999_queue_ticks: u64,
    /// Worst queue latency, in ticks.
    pub max_queue_ticks: u64,
    /// Admission-queue high-water mark.
    pub max_queue_depth: u64,
    /// Cost-model units charged over the cell.
    pub cost_spent: u64,
    /// Records in the sealed run ledger.
    pub ledger_records: u64,
    /// Head digest of the sealed, verified run ledger.
    pub ledger_digest: u64,
    /// Set when the drain watchdog tripped (cell could not empty its queue
    /// within the tick budget).
    pub watchdog: Option<String>,
    /// Wall-clock for the cell. **Not** part of the determinism contract.
    pub wall_ns: u64,
}

/// The full E13 sweep report (serialized to `BENCH_e13_serve.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E13Report {
    /// The sweep configuration.
    pub config: E13Config,
    /// One report per (load × knobs) cell, loads outer, knobs inner (the
    /// order of [`E13Config::loads`] × [`Knobs::all`]).
    pub cells: Vec<E13CellReport>,
    /// Wall-clock for the whole sweep. Not deterministic.
    pub wall_ns: u64,
}

impl E13Report {
    /// A copy with every wall-clock field zeroed: two sweeps over the same
    /// config must compare equal under this projection.
    pub fn normalized(&self) -> E13Report {
        let mut report = self.clone();
        report.wall_ns = 0;
        for cell in &mut report.cells {
            cell.wall_ns = 0;
        }
        report
    }

    /// The cell for `(load, knobs)`, if present.
    pub fn cell(&self, load: usize, knobs: Knobs) -> Option<&E13CellReport> {
        self.cells
            .iter()
            .find(|c| c.load == load && c.label == knobs.label())
    }
}

/// `q`-quantile (0..=1) of an unsorted latency sample, by rank. Returns 0
/// for an empty sample.
pub(crate) fn percentile(latencies: &mut [u64], q: f64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = ((latencies.len() as f64) * q).ceil() as usize;
    latencies[rank.clamp(1, latencies.len()) - 1]
}

/// Run one E13 cell: one service instance, one workload, one knob setting.
pub fn run_e13_cell(cfg: &E13Config, load: usize, knobs: Knobs) -> E13CellReport {
    let started = Instant::now();
    let spec = WorkloadSpec {
        seed: cfg.seed ^ (load as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        per_tick: load,
        arrival_ticks: cfg.arrival_ticks,
        // With shedding off nothing may be refused, so deadlines are off
        // too — the unbounded queue absorbs the overload as latency.
        deadline_slack: if knobs.shedding { Some(8) } else { None },
        ..WorkloadSpec::default()
    };
    let serve_cfg = ServeConfig {
        seed: spec.seed,
        // Cells run single-threaded; the sweep parallelizes across cells.
        threads: 1,
        shards: cfg.shards,
        admission: if knobs.shedding {
            AdmissionConfig::default()
        } else {
            AdmissionConfig::unbounded()
        },
        batch: if knobs.batching {
            BatchPolicy::default()
        } else {
            BatchPolicy::unbatched()
        },
        cost: Default::default(),
        cache: knobs.cache,
        slo_every: 0,
        scheduling: Scheduling::Balanced,
        backpressure: false,
        rotation: None,
    };
    let label = knobs.label();
    let mut svc = PolicyDecisionService::new(
        serve_cfg,
        standard_stacks(cfg.shards, knobs.cache),
        WorkloadOracle,
        &format!("e13/{label}/load{load}"),
    );
    let mut gen = WorkloadGen::new(spec);
    let offered = gen.total_offered();

    let mut dog = Watchdog::new(cfg.max_ticks);
    let mut watchdog = None;
    let mut latencies: Vec<u64> = Vec::new();
    let mut shed_allows = 0u64;
    let mut collect = |d: Decision, latencies: &mut Vec<u64>| {
        if d.shed.is_some() {
            if d.verdict.permits_execution() {
                shed_allows += 1;
            }
        } else {
            latencies.push(d.queue_ticks());
        }
    };
    let mut now = 0u64;
    loop {
        now += 1;
        if let Err(trip) = dog.charge(1) {
            watchdog = Some(trip.to_string());
            break;
        }
        for req in gen.tick_requests(now) {
            if let Some(d) = svc.submit(req, now) {
                collect(d, &mut latencies);
            }
        }
        for d in svc.tick(now) {
            collect(d, &mut latencies);
        }
        if now >= cfg.arrival_ticks && svc.queue_depth() == 0 {
            break;
        }
    }
    let ticks = now;
    let (ledger, stats) = svc.finish(now);
    ledger.verify().expect("cell ledger must verify");

    let max_queue_ticks = latencies.iter().copied().max().unwrap_or(0);
    E13CellReport {
        label,
        load,
        batching: knobs.batching,
        cache: knobs.cache,
        shedding: knobs.shedding,
        offered,
        decided: stats.decided,
        shed: stats.shed_total(),
        shed_capacity: stats.shed_capacity,
        shed_quota: stats.shed_quota,
        shed_deadline: stats.shed_deadline,
        shed_allows,
        allowed: stats.allowed,
        denied: stats.denied,
        replaced: stats.replaced,
        batches: stats.batches,
        mean_batch: if stats.batches == 0 {
            0.0
        } else {
            stats.decided as f64 / stats.batches as f64
        },
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        ticks,
        throughput: stats.decided as f64 / ticks.max(1) as f64,
        shed_rate: stats.shed_total() as f64 / offered.max(1) as f64,
        p50_queue_ticks: percentile(&mut latencies, 0.50),
        p99_queue_ticks: percentile(&mut latencies, 0.99),
        p999_queue_ticks: percentile(&mut latencies, 0.999),
        max_queue_ticks,
        max_queue_depth: stats.max_queue_depth,
        cost_spent: stats.cost_spent,
        ledger_records: ledger.len() as u64,
        ledger_digest: ledger.head_digest(),
        watchdog,
        wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    }
}

/// Run the full E13 sweep: every load × every knob setting, fanned out
/// across the worker pool with order-preserving collection.
pub fn run_e13(cfg: &E13Config) -> E13Report {
    let started = Instant::now();
    let cells: Vec<(usize, Knobs)> = cfg
        .loads
        .iter()
        .flat_map(|&load| Knobs::all().into_iter().map(move |k| (load, k)))
        .collect();
    let threads = resolve_threads(cfg.threads);
    let cells = par_map(threads, cells, |_, (load, knobs)| {
        run_e13_cell(cfg, load, knobs)
    });
    E13Report {
        config: cfg.clone(),
        cells,
        wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> E13Config {
        E13Config {
            arrival_ticks: 12,
            loads: vec![2, 48],
            max_ticks: 2_000,
            ..E13Config::default()
        }
    }

    #[test]
    fn percentile_ranks_are_exact() {
        let mut sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&mut sample, 0.50), 50);
        assert_eq!(percentile(&mut sample, 0.99), 99);
        assert_eq!(percentile(&mut sample, 0.999), 100);
        assert_eq!(percentile(&mut [], 0.5), 0);
        assert_eq!(percentile(&mut [7], 0.999), 7);
    }

    #[test]
    fn knob_cross_is_complete_and_stable() {
        let all = Knobs::all();
        assert_eq!(all.len(), 8);
        let labels: std::collections::BTreeSet<String> = all.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 8, "labels must be distinct");
        assert!(labels.contains("batch+cache+shed"));
        assert!(labels.contains("nobatch+nocache+noshed"));
    }

    #[test]
    fn smoke_sweep_satisfies_the_headline_claims() {
        let report = run_e13(&tiny());
        assert_eq!(report.cells.len(), 16);
        for cell in &report.cells {
            assert_eq!(cell.watchdog, None, "{}: watchdog tripped", cell.label);
            assert_eq!(cell.shed_allows, 0, "{}: a shed allowed!", cell.label);
            assert_eq!(
                cell.decided + cell.shed,
                cell.offered,
                "{}: every offered request must resolve",
                cell.label
            );
            if !cell.shedding {
                assert_eq!(cell.shed, 0, "{}: noshed cell shed work", cell.label);
            }
        }
        // Low load sheds nothing; high load sheds (shedding cells only).
        let low = report
            .cell(
                2,
                Knobs {
                    batching: true,
                    cache: true,
                    shedding: true,
                },
            )
            .unwrap();
        assert_eq!(low.shed, 0);
        let high = report
            .cell(
                48,
                Knobs {
                    batching: true,
                    cache: true,
                    shedding: true,
                },
            )
            .unwrap();
        assert!(high.shed > 0, "overloaded cell must shed");
        // Batching beats unbatched at the highest load.
        let unbatched = report
            .cell(
                48,
                Knobs {
                    batching: false,
                    cache: true,
                    shedding: true,
                },
            )
            .unwrap();
        assert!(
            high.throughput > unbatched.throughput,
            "batched {} <= unbatched {}",
            high.throughput,
            unbatched.throughput
        );
    }

    #[test]
    fn sweep_is_deterministic_modulo_wall_clock() {
        let cfg = E13Config {
            arrival_ticks: 8,
            loads: vec![2, 32],
            max_ticks: 1_000,
            ..E13Config::default()
        };
        let a = run_e13(&cfg).normalized();
        let b = run_e13(&cfg).normalized();
        assert_eq!(a, b);
        let json_a = serde_json::to_string(&a).unwrap();
        let json_b = serde_json::to_string(&b).unwrap();
        assert_eq!(
            json_a, json_b,
            "normalized reports must serialize identically"
        );
    }
}
