//! Bounded multi-tenant admission: per-tenant lanes drained by deficit
//! round-robin, with a global capacity bound and per-tenant quotas.
//!
//! The queue is the service's only buffer, so its bounds are the load-shed
//! points: a submit that would exceed the global capacity or the tenant's
//! quota is refused *at admission* (cheap — no guard work wasted on a
//! request that would be dropped later), and the service turns the refusal
//! into a fail-closed denial.
//!
//! Fairness is deficit round-robin (DRR): each backlogged tenant gets a
//! fresh `quantum` of credit when its lane reaches the head of the
//! rotation, spends one credit per dequeued request, and rotates to the
//! back when the credit is spent. A tenant flooding the service can fill
//! its own quota, but cannot starve another tenant's lane — each round
//! serves every backlogged tenant `quantum` requests.
//!
//! Everything is in deterministic order (`BTreeMap` lanes, explicit
//! rotation queue): the dequeue stream is a pure function of the submit
//! stream, never of wall-clock or thread timing.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::request::{DecisionRequest, ShedReason, TenantId};

/// Bounds and fairness knobs of an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Total queued requests across all tenants before capacity shedding.
    pub capacity: usize,
    /// Queued requests a single tenant may hold before quota shedding.
    pub tenant_quota: usize,
    /// DRR credit granted per rotation visit (requests per tenant per
    /// round).
    pub quantum: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 128,
            tenant_quota: 40,
            quantum: 8,
        }
    }
}

impl AdmissionConfig {
    /// An effectively unbounded configuration (the shedding-off ablation in
    /// experiment E13: nothing is refused, latency absorbs the overload).
    pub fn unbounded() -> Self {
        AdmissionConfig {
            capacity: usize::MAX / 2,
            tenant_quota: usize::MAX / 2,
            quantum: 8,
        }
    }
}

/// One tenant's FIFO lane plus its current DRR credit.
#[derive(Debug, Default)]
struct TenantLane {
    queue: VecDeque<DecisionRequest>,
    deficit: u32,
}

/// The bounded, fair admission queue. See the module docs for semantics.
#[derive(Debug)]
pub struct AdmissionQueue {
    cfg: AdmissionConfig,
    lanes: BTreeMap<TenantId, TenantLane>,
    /// Backlogged tenants in DRR rotation order (front is being served).
    rotation: VecDeque<TenantId>,
    pending: usize,
}

impl AdmissionQueue {
    /// An empty queue with the given bounds.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionQueue {
            cfg,
            lanes: BTreeMap::new(),
            rotation: VecDeque::new(),
            pending: 0,
        }
    }

    /// Requests currently queued across all tenants.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Is nothing queued?
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Requests currently queued for one tenant.
    pub fn tenant_backlog(&self, tenant: TenantId) -> usize {
        self.lanes.get(&tenant).map_or(0, |l| l.queue.len())
    }

    /// Submit tick of the oldest queued request (each lane is FIFO, so the
    /// minimum over lane heads is the global minimum).
    pub fn oldest_submitted(&self) -> Option<u64> {
        self.lanes
            .values()
            .filter_map(|l| l.queue.front().map(|r| r.submitted_at))
            .min()
    }

    /// Admit a request (`None`), or hand it back with the shed reason.
    /// Quota is checked before capacity so a single over-quota tenant is
    /// named as such even when the whole queue is also full.
    pub fn submit(&mut self, req: DecisionRequest) -> Option<(DecisionRequest, ShedReason)> {
        let backlog = self.tenant_backlog(req.tenant);
        if backlog >= self.cfg.tenant_quota {
            return Some((req, ShedReason::Quota));
        }
        if self.pending >= self.cfg.capacity {
            return Some((req, ShedReason::Capacity));
        }
        let lane = self.lanes.entry(req.tenant).or_default();
        if lane.queue.is_empty() {
            self.rotation.push_back(req.tenant);
        }
        lane.queue.push_back(req);
        self.pending += 1;
        None
    }

    /// Return requests the dispatcher dequeued but chose not to serve yet
    /// (cross-shard backpressure deferrals) to the *front* of their lanes,
    /// preserving their relative order, so they are re-examined first on
    /// the next batch. A tenant whose lane was empty re-enters the rotation
    /// at the front. DRR credit already spent on the original dequeue is
    /// not refunded — deferral consumes the tenant's turn, which keeps a
    /// tenant flooding one hot shard from re-winning every round.
    pub fn requeue_front(&mut self, deferred: Vec<DecisionRequest>) {
        for req in deferred.into_iter().rev() {
            let lane = self.lanes.entry(req.tenant).or_default();
            if lane.queue.is_empty() {
                self.rotation.push_front(req.tenant);
            }
            lane.queue.push_front(req);
            self.pending += 1;
        }
    }

    /// Freeze the queue for a checkpoint: every lane as `(tenant, DRR
    /// deficit, queued requests front-to-back)` in tenant order — empty
    /// lanes included, so a restored queue is structurally identical, not
    /// just behaviorally — plus the DRR rotation order. Together with
    /// [`restore`](AdmissionQueue::restore) this round-trips the queue
    /// exactly, which crash recovery needs: dequeue order is a pure
    /// function of this state.
    #[allow(clippy::type_complexity)]
    pub fn export(&self) -> (Vec<(TenantId, u32, Vec<DecisionRequest>)>, Vec<TenantId>) {
        let lanes = self
            .lanes
            .iter()
            .map(|(&tenant, lane)| {
                (
                    tenant,
                    lane.deficit,
                    lane.queue.iter().cloned().collect::<Vec<_>>(),
                )
            })
            .collect();
        (lanes, self.rotation.iter().copied().collect())
    }

    /// Rebuild a queue from an [`export`](AdmissionQueue::export) under the
    /// same bounds.
    pub fn restore(
        cfg: AdmissionConfig,
        lanes: Vec<(TenantId, u32, Vec<DecisionRequest>)>,
        rotation: Vec<TenantId>,
    ) -> Self {
        let mut pending = 0;
        let lanes: BTreeMap<TenantId, TenantLane> = lanes
            .into_iter()
            .map(|(tenant, deficit, queue)| {
                pending += queue.len();
                (
                    tenant,
                    TenantLane {
                        queue: queue.into(),
                        deficit,
                    },
                )
            })
            .collect();
        AdmissionQueue {
            cfg,
            lanes,
            rotation: rotation.into(),
            pending,
        }
    }

    /// Dequeue the next request under DRR. Within a lane, FIFO order;
    /// across lanes, `quantum`-sized runs in rotation order.
    pub fn dequeue(&mut self) -> Option<DecisionRequest> {
        loop {
            let tenant = *self.rotation.front()?;
            let lane = self.lanes.get_mut(&tenant).expect("rotated lane exists");
            if lane.queue.is_empty() {
                // Lane drained earlier in this visit: unused credit is
                // forfeited (standard DRR — idle tenants bank nothing).
                lane.deficit = 0;
                self.rotation.pop_front();
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = self.cfg.quantum.max(1);
            }
            let req = lane.queue.pop_front().expect("checked non-empty");
            lane.deficit -= 1;
            self.pending -= 1;
            if lane.queue.is_empty() {
                lane.deficit = 0;
                self.rotation.pop_front();
            } else if lane.deficit == 0 {
                let t = self.rotation.pop_front().expect("front exists");
                self.rotation.push_back(t);
            }
            return Some(req);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_policy::Action;
    use apdm_statespace::StateSchema;

    fn req(id: u64, tenant: u32) -> DecisionRequest {
        let schema = StateSchema::builder().var("x", 0.0, 10.0).build();
        DecisionRequest {
            id,
            tenant: TenantId(tenant),
            device: id,
            state: schema.state(&[1.0]).unwrap(),
            proposed: Action::adjust("patrol", Default::default()),
            alternatives: Vec::new(),
            submitted_at: 0,
            deadline: None,
            ctx: None,
        }
    }

    #[test]
    fn capacity_and_quota_bounds_shed() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            capacity: 3,
            tenant_quota: 2,
            quantum: 1,
        });
        assert!(q.submit(req(0, 0)).is_none());
        assert!(q.submit(req(1, 0)).is_none());
        // Tenant 0 is at quota.
        let (_, reason) = q.submit(req(2, 0)).unwrap();
        assert_eq!(reason, ShedReason::Quota);
        assert!(q.submit(req(3, 1)).is_none());
        // The whole queue is at capacity; tenant 1 is under quota.
        let (_, reason) = q.submit(req(4, 1)).unwrap();
        assert_eq!(reason, ShedReason::Capacity);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn drr_serves_backlogged_tenants_in_quantum_runs() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            capacity: 100,
            tenant_quota: 100,
            quantum: 2,
        });
        // Tenant 0 floods; tenant 1 trickles.
        for id in 0..6 {
            assert!(q.submit(req(id, 0)).is_none());
        }
        for id in 10..13 {
            assert!(q.submit(req(id, 1)).is_none());
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue()).map(|r| r.id).collect();
        // Quantum-2 runs alternate: the flood cannot starve the trickle.
        assert_eq!(order, vec![0, 1, 10, 11, 2, 3, 12, 4, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn flooding_tenant_cannot_starve_others() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            capacity: 1000,
            tenant_quota: 1000,
            quantum: 4,
        });
        for id in 0..100 {
            assert!(q.submit(req(id, 0)).is_none());
        }
        for id in 100..104 {
            assert!(q.submit(req(id, 1)).is_none());
        }
        // Within the first two quantum rounds every tenant-1 request is out,
        // despite tenant 0 holding 25x the backlog.
        let first_sixteen: Vec<u64> = (0..16).filter_map(|_| q.dequeue()).map(|r| r.id).collect();
        let t1_served = first_sixteen.iter().filter(|&&id| id >= 100).count();
        assert_eq!(t1_served, 4, "order: {first_sixteen:?}");
    }

    #[test]
    fn requeue_front_restores_order_and_rotation() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            capacity: 100,
            tenant_quota: 100,
            quantum: 4,
        });
        for id in 0..3 {
            assert!(q.submit(req(id, 0)).is_none());
        }
        assert!(q.submit(req(10, 1)).is_none());
        // Drain tenant 0's first two and tenant 1's only request...
        let a = q.dequeue().unwrap();
        let b = q.dequeue().unwrap();
        assert_eq!((a.id, b.id), (0, 1));
        let c = q.dequeue().unwrap();
        assert_eq!(c.id, 2);
        let d = q.dequeue().unwrap();
        assert_eq!(d.id, 10);
        assert!(q.is_empty());
        // ...then defer all four: they come back out first, in the same
        // relative order they were deferred in.
        q.requeue_front(vec![a, b, c, d]);
        assert_eq!(q.len(), 4);
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue()).map(|r| r.id).collect();
        assert_eq!(order, vec![0, 1, 2, 10]);
    }

    #[test]
    fn oldest_submitted_tracks_lane_heads() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        assert_eq!(q.oldest_submitted(), None);
        let mut a = req(0, 0);
        a.submitted_at = 5;
        let mut b = req(1, 1);
        b.submitted_at = 3;
        assert!(q.submit(a).is_none());
        assert!(q.submit(b).is_none());
        assert_eq!(q.oldest_submitted(), Some(3));
        // Dequeue order is DRR, but the minimum stays correct.
        let _ = q.dequeue().unwrap();
        assert!(q.oldest_submitted().is_some());
    }
}
