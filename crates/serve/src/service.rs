//! The policy decision service: admission → micro-batch → shard → verdict.
//!
//! One [`PolicyDecisionService`] is the runtime policy decision point of
//! the paper's architecture (§IV–VI) packaged as a standalone serving
//! layer: operators (tenants) submit [`DecisionRequest`]s, the service
//! queues them under admission control, forms micro-batches, shards each
//! batch by device id across persistent per-shard [`GuardStack`]s (each
//! with its own verdict memo cache), and renders [`Decision`]s. Every
//! decision — served or shed — is appended to a hash-chained
//! [`apdm_ledger`] run ledger, so the audit trail survives the process.
//!
//! ## Data flow
//!
//! ```text
//! submit(req) ──quota/capacity──shed──▶ Deny("shed:quota|capacity")
//!      │ admitted
//!      ▼
//! AdmissionQueue (per-tenant lanes, DRR drain)
//!      │ tick(now): while meter.can_dispatch() && batch ready
//!      ▼
//! dequeue ──deadline expired──shed──▶ Deny("shed:deadline")
//!      │ batch of ≤ max_batch
//!      ▼
//! shard by device % shards ──run_sharded(threads)──▶ GuardStack::check_batch
//!      │ verdicts reassembled in batch order          (per-shard memo cache)
//!      ▼
//! Decision stream + ledger Verdict records + telemetry
//! ```
//!
//! ## Determinism
//!
//! The decision stream and the sealed ledger are a pure function of the
//! submit stream and the configuration — never of the worker thread count:
//! requests map to shards by device id (not by worker), each shard's stack
//! (and memo cache) is touched only by its own shard's requests, and
//! verdicts are reassembled in batch order. The property tests assert
//! byte-identical ledgers across thread counts.
//!
//! ## Fail-closed overload behaviour
//!
//! Every shed path routes through [`Decision::shed`], which can only
//! construct a denial. Overload makes the service refuse work — it can
//! never make it approve work it did not evaluate.

use std::time::Instant;

use apdm_guards::{GuardContext, GuardStack, GuardVerdict, HarmOracle};
use apdm_ledger::{Ledger, RunEvent, RunRecorder};
use apdm_policy::Action;
use apdm_telemetry as telemetry;
use apdm_telemetry::{SloMonitor, SloSpec, TraceContext};
use serde::{Deserialize, Serialize};

use crate::admission::{AdmissionConfig, AdmissionQueue};
use crate::batcher::{BatchPolicy, CostModel, Meter};
use crate::request::{Decision, DecisionRequest, ShedReason};

/// One shard's contribution to a batch: `(batch_index, verdict)` pairs plus
/// the shard's memo-cache `(hits, misses)` deltas.
type ShardOutput = (Vec<(usize, GuardVerdict)>, u64, u64);

thread_local! {
    static SUBMITTED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.submitted") };
    static DECIDED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.decided") };
    static SHED_CAPACITY: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.shed.capacity") };
    static SHED_QUOTA: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.shed.quota") };
    static SHED_DEADLINE: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.shed.deadline") };
    static SHED_TOTAL: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.shed.total") };
    static QUEUE_TICKS: telemetry::CachedHistogram =
        const { telemetry::CachedHistogram::new("serve.latency.queue_ticks") };
    static BATCH_SIZE: telemetry::CachedHistogram =
        const { telemetry::CachedHistogram::new("serve.batch.size") };
    static EVAL_NS: telemetry::CachedHistogram =
        const { telemetry::CachedHistogram::new("serve.eval.ns") };
}

/// Full configuration of one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Seed recorded in the run ledger header (the service itself draws no
    /// randomness; the seed names the workload that drove it).
    pub seed: u64,
    /// Worker threads for batch evaluation (0 = auto via `APDM_THREADS` /
    /// hardware). Never affects results, only wall-clock.
    pub threads: usize,
    /// Fixed shard count — the determinism unit. Requests map to shard
    /// `device % shards` regardless of `threads`.
    pub shards: usize,
    /// Admission bounds and DRR fairness.
    pub admission: AdmissionConfig,
    /// Micro-batch close policy.
    pub batch: BatchPolicy,
    /// Deterministic work accounting.
    pub cost: CostModel,
    /// Enable the per-shard guard-verdict memo cache.
    pub cache: bool,
    /// Evaluate the standard SLOs ([`standard_slos`]) every this many ticks
    /// (burn-rate windows are delimited by the evaluations). `0` disables
    /// SLO monitoring; it is also inert unless telemetry is installed.
    pub slo_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 42,
            threads: 0,
            shards: 8,
            admission: AdmissionConfig::default(),
            batch: BatchPolicy::default(),
            cost: CostModel::default(),
            cache: true,
            slo_every: 0,
        }
    }
}

/// The serving layer's standard objectives, evaluated every
/// [`ServeConfig::slo_every`] ticks:
///
/// * `serve.queue_wait` — 99% of decided requests wait at most 15 ticks in
///   the admission queue (threshold on a log2-bucket edge for exactness).
/// * `serve.shed_rate` — at most 5% of submissions are shed.
pub fn standard_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::latency("serve.queue_wait", "serve.latency.queue_ticks", 15, 0.99),
        SloSpec::counter_ratio(
            "serve.shed_rate",
            "serve.shed.total",
            "serve.submitted",
            0.95,
        ),
    ]
}

/// Slot deriving each pipeline stage's span from its predecessor. The
/// stages form a linear chain (each stage's parent is the previous stage),
/// so a single slot never collides — it is only ever used once per parent.
const STAGE_SLOT: u64 = 1;

/// Advance a request's trace by one pipeline stage: derive the next hop in
/// the causal chain and, when this trace records, emit the stage event.
/// Derivation is unconditional (cheap hash mix), so causality survives
/// stages running on threads without a telemetry dispatch.
fn stage_event(
    ctx: Option<TraceContext>,
    name: &'static str,
    device: u64,
    extra: &[(&'static str, u64)],
) -> Option<TraceContext> {
    let next = ctx?.child(STAGE_SLOT);
    if telemetry::enabled() && next.sampled {
        let mut fields: Vec<(telemetry::Name, telemetry::FieldValue)> = extra
            .iter()
            .map(|&(k, v)| (telemetry::Name::Borrowed(k), telemetry::FieldValue::U64(v)))
            .collect();
        next.push_fields(device, &mut fields);
        telemetry::emit_event(name, telemetry::Level::Debug, fields);
    }
    Some(next)
}

/// Exact counters over one service lifetime (mirrored into the telemetry
/// registry when a dispatch is installed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests offered via [`PolicyDecisionService::submit`].
    pub submitted: u64,
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Requests actually evaluated by a guard stack.
    pub decided: u64,
    /// Evaluated verdicts that allowed the proposal (with or without
    /// obligations).
    pub allowed: u64,
    /// Evaluated guard denials (shed denials are counted separately).
    pub denied: u64,
    /// Evaluated substitutions.
    pub replaced: u64,
    /// Sheds at admission: global queue full.
    pub shed_capacity: u64,
    /// Sheds at admission: tenant over quota.
    pub shed_quota: u64,
    /// Sheds at dispatch: deadline expired in the queue.
    pub shed_deadline: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Verdict-cache hits summed over all shards.
    pub cache_hits: u64,
    /// Verdict-cache misses summed over all shards.
    pub cache_misses: u64,
    /// High-water mark of the admission queue.
    pub max_queue_depth: u64,
    /// Work units charged against the meter.
    pub cost_spent: u64,
}

impl ServeStats {
    /// All sheds, every one of which resolved to a denial.
    pub fn shed_total(&self) -> u64 {
        self.shed_capacity + self.shed_quota + self.shed_deadline
    }
}

/// The sharded, micro-batching, fail-closed policy decision service. See
/// the module docs for the data flow.
#[derive(Debug)]
pub struct PolicyDecisionService<O> {
    cfg: ServeConfig,
    threads: usize,
    queue: AdmissionQueue,
    meter: Meter,
    /// One persistent guard stack per shard; shard `s` judges every request
    /// with `device % shards == s`, so its memo cache and audit trail are
    /// independent of worker scheduling.
    stacks: Vec<GuardStack>,
    oracle: O,
    recorder: RunRecorder,
    stats: ServeStats,
    slo: SloMonitor,
}

impl<O: HarmOracle + Copy + Send + Sync> PolicyDecisionService<O> {
    /// Build a service from per-shard guard stacks. `stacks.len()` fixes
    /// the shard count; `cfg.shards` must agree. The `cache` flag is
    /// applied to every stack here so callers cannot accidentally mix
    /// cached and uncached shards.
    pub fn new(cfg: ServeConfig, mut stacks: Vec<GuardStack>, oracle: O, name: &str) -> Self {
        assert_eq!(
            cfg.shards,
            stacks.len(),
            "cfg.shards must match the stack count"
        );
        assert!(cfg.shards > 0, "a service needs at least one shard");
        for stack in &mut stacks {
            stack.set_cache_enabled(cfg.cache);
        }
        PolicyDecisionService {
            threads: apdm_par::resolve_threads(cfg.threads),
            queue: AdmissionQueue::new(cfg.admission),
            meter: Meter::new(&cfg.cost),
            stacks,
            oracle,
            recorder: RunRecorder::new(name, cfg.seed, cfg.shards as u64),
            stats: ServeStats::default(),
            slo: standard_slos()
                .into_iter()
                .fold(SloMonitor::new(), SloMonitor::with_objective),
            cfg,
        }
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Resolved worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Offer a request. `None` means admitted (the decision will come out
    /// of a later [`tick`](Self::tick)); `Some` is an immediate fail-closed
    /// shed denial (queue full or tenant over quota).
    pub fn submit(&mut self, mut req: DecisionRequest, now: u64) -> Option<Decision> {
        self.stats.submitted += 1;
        if telemetry::enabled() {
            SUBMITTED.with(|c| c.inc());
        }
        // The admission stage rules on every request — admitted or shed —
        // so its span is minted before the queue decides.
        req.ctx = stage_event(req.ctx, "serve.admit", req.device, &[]);
        match self.queue.submit(req) {
            None => {
                self.stats.admitted += 1;
                self.stats.max_queue_depth =
                    self.stats.max_queue_depth.max(self.queue.len() as u64);
                None
            }
            Some((req, reason)) => Some(self.shed(&req, reason, now)),
        }
    }

    /// Run one service tick: refill the work meter, dispatch every batch
    /// that is ready and affordable, and return the decisions rendered this
    /// tick (deadline sheds interleaved before the batch they were culled
    /// from). Decision order is deterministic.
    pub fn tick(&mut self, now: u64) -> Vec<Decision> {
        self.meter.refill();
        let mut decisions = Vec::new();
        loop {
            if !self.meter.can_dispatch() || self.queue.is_empty() {
                break;
            }
            let oldest = self.queue.oldest_submitted().expect("non-empty queue");
            if !self
                .cfg
                .batch
                .ready(self.queue.len(), now.saturating_sub(oldest))
            {
                break;
            }
            // Form the batch: up to max_batch live requests, shedding any
            // that expired while queued (uncharged — no guard work ran).
            let mut batch = Vec::with_capacity(self.cfg.batch.max_batch);
            while batch.len() < self.cfg.batch.max_batch {
                match self.queue.dequeue() {
                    None => break,
                    Some(req) if req.expired(now) => {
                        decisions.push(self.shed(&req, ShedReason::Deadline, now));
                    }
                    Some(req) => batch.push(req),
                }
            }
            if batch.is_empty() {
                // Everything dequeued had expired; re-examine the queue.
                continue;
            }
            let size = batch.len() as u64;
            for req in &mut batch {
                req.ctx = stage_event(req.ctx, "serve.batch", req.device, &[("size", size)]);
            }
            let started = Instant::now();
            let (verdicts, hits, misses) = self.evaluate(&batch, now);
            // Shard-stage spans are minted on the driver thread *after* the
            // parallel section (workers carry no telemetry dispatch); the
            // virtual timestamp is the same tick either way.
            let shards = self.cfg.shards as u64;
            for req in &mut batch {
                req.ctx = stage_event(
                    req.ctx,
                    "serve.shard",
                    req.device,
                    &[("shard", req.device % shards)],
                );
            }
            let cost = self.cfg.cost.batch_cost(hits, misses);
            self.meter.charge(cost);
            self.stats.batches += 1;
            self.stats.cache_hits += hits;
            self.stats.cache_misses += misses;
            self.stats.cost_spent = self.meter.spent();
            if telemetry::enabled() {
                BATCH_SIZE.with(|h| h.record(batch.len() as u64));
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                EVAL_NS.with(|h| h.record(ns));
            }
            for (req, verdict) in batch.iter().zip(verdicts) {
                decisions.push(self.decide(req, verdict, now));
            }
        }
        if telemetry::enabled() {
            let depth = self.queue.len() as f64;
            telemetry::with_registry(|reg| reg.gauge("serve.queue.depth").set(depth));
            if self.cfg.slo_every > 0 && now.is_multiple_of(self.cfg.slo_every) {
                self.slo.evaluate();
            }
        }
        decisions
    }

    /// Seal and return the run ledger plus the final counters. `now` is the
    /// tick recorded on the closing record.
    pub fn finish(self, now: u64) -> (Ledger, ServeStats) {
        // The service executes nothing itself, so the ledger's harm count
        // is structurally zero: only verdicts flow through here.
        (self.recorder.finish(now, 0), self.stats)
    }

    /// Evaluate one batch: bucket requests by shard, run the shards across
    /// the worker pool, reassemble verdicts in batch order. Returns the
    /// verdicts plus the batch's memo-cache `(hits, misses)`.
    fn evaluate(&mut self, batch: &[DecisionRequest], now: u64) -> (Vec<GuardVerdict>, u64, u64) {
        let shards = self.cfg.shards;
        let mut buckets: Vec<Vec<(usize, &DecisionRequest)>> = vec![Vec::new(); shards];
        for (idx, req) in batch.iter().enumerate() {
            buckets[(req.device % shards as u64) as usize].push((idx, req));
        }
        let oracle = self.oracle;
        let mut work: Vec<(&mut GuardStack, Vec<(usize, &DecisionRequest)>)> =
            self.stacks.iter_mut().zip(buckets).collect();
        let shard_results: Vec<ShardOutput> =
            apdm_par::run_sharded(self.threads, &mut work, |_, slice| {
                let mut out = Vec::new();
                let (mut hits, mut misses) = (0u64, 0u64);
                for (stack, items) in slice.iter_mut() {
                    if items.is_empty() {
                        continue;
                    }
                    let before = stack.cache_stats();
                    for &(idx, req) in items.iter() {
                        let subject = format!("d{}", req.device);
                        let alternatives: Vec<&Action> = req.alternatives.iter().collect();
                        let ctx = GuardContext {
                            tick: now,
                            subject: &subject,
                            state: &req.state,
                            alternatives: &alternatives,
                            world_token: 0,
                        };
                        out.push((idx, stack.check(&ctx, &req.proposed, oracle)));
                    }
                    match (before, stack.cache_stats()) {
                        (Some((h0, m0)), Some((h1, m1))) => {
                            hits += h1 - h0;
                            misses += m1 - m0;
                        }
                        // Cache off: every evaluation pays full freight.
                        _ => misses += items.len() as u64,
                    }
                }
                (out, hits, misses)
            });
        let mut verdicts: Vec<Option<GuardVerdict>> = vec![None; batch.len()];
        let (mut hits, mut misses) = (0u64, 0u64);
        for (pairs, h, m) in shard_results {
            hits += h;
            misses += m;
            for (idx, verdict) in pairs {
                debug_assert!(verdicts[idx].is_none(), "duplicate verdict slot {idx}");
                verdicts[idx] = Some(verdict);
            }
        }
        let verdicts = verdicts
            .into_iter()
            .map(|v| v.expect("every batch slot judged"))
            .collect();
        (verdicts, hits, misses)
    }

    /// Render, count, audit and instrument one evaluated decision.
    fn decide(&mut self, req: &DecisionRequest, verdict: GuardVerdict, now: u64) -> Decision {
        let mut decision = Decision::evaluated(req, verdict, now);
        decision.ctx = stage_event(req.ctx, "serve.ledger", req.device, &[]);
        self.stats.decided += 1;
        match &decision.verdict {
            GuardVerdict::Allow | GuardVerdict::AllowWithObligations(_) => self.stats.allowed += 1,
            GuardVerdict::Deny { .. } => self.stats.denied += 1,
            GuardVerdict::Replace { .. } => self.stats.replaced += 1,
        }
        if telemetry::enabled() {
            DECIDED.with(|c| c.inc());
            QUEUE_TICKS.with(|h| h.record(decision.queue_ticks()));
        }
        self.record(&decision, now);
        decision
    }

    /// Render, count, audit and instrument one shed denial.
    fn shed(&mut self, req: &DecisionRequest, reason: ShedReason, now: u64) -> Decision {
        let mut decision = Decision::shed(req, reason, now);
        decision.ctx = stage_event(req.ctx, "serve.shed", req.device, &[]);
        let (field, counter) = match reason {
            ShedReason::Capacity => (&mut self.stats.shed_capacity, &SHED_CAPACITY),
            ShedReason::Quota => (&mut self.stats.shed_quota, &SHED_QUOTA),
            ShedReason::Deadline => (&mut self.stats.shed_deadline, &SHED_DEADLINE),
        };
        *field += 1;
        if telemetry::enabled() {
            counter.with(|c| c.inc());
            SHED_TOTAL.with(|c| c.inc());
        }
        self.record(&decision, now);
        decision
    }

    /// Append one decision to the run ledger.
    fn record(&mut self, decision: &Decision, now: u64) {
        self.recorder.record(
            now,
            RunEvent::Verdict {
                device: decision.device,
                action: decision.action.as_str().into(),
                verdict: decision.verdict_name().as_str().into(),
                reason: decision.reason().to_string(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TenantId;
    use crate::workload::{standard_stacks, WorkloadOracle};
    use apdm_policy::Action;
    use apdm_statespace::{StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder().var("x", 0.0, 10.0).build()
    }

    fn req(
        id: u64,
        device: u64,
        action: Action,
        now: u64,
        deadline: Option<u64>,
    ) -> DecisionRequest {
        DecisionRequest {
            id,
            tenant: TenantId((id % 2) as u32),
            device,
            state: schema().state(&[1.0]).unwrap(),
            proposed: action,
            alternatives: Vec::new(),
            submitted_at: now,
            deadline,
            ctx: None,
        }
    }

    fn service(cfg: ServeConfig) -> PolicyDecisionService<WorkloadOracle> {
        let stacks = standard_stacks(cfg.shards, cfg.cache);
        PolicyDecisionService::new(cfg, stacks, WorkloadOracle, "test")
    }

    #[test]
    fn harmless_requests_are_allowed_and_audited() {
        let mut svc = service(ServeConfig {
            batch: BatchPolicy::unbatched(),
            ..ServeConfig::default()
        });
        assert!(svc
            .submit(
                req(0, 3, Action::adjust("patrol", StateDelta::empty()), 1, None),
                1
            )
            .is_none());
        let decisions = svc.tick(1);
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].verdict, GuardVerdict::Allow);
        assert_eq!(decisions[0].shed, None);
        let (ledger, stats) = svc.finish(1);
        assert!(ledger.verify().is_ok());
        assert_eq!(stats.decided, 1);
        assert_eq!(stats.allowed, 1);
        // RunStarted + 1 verdict + RunFinished.
        assert_eq!(ledger.len(), 3);
    }

    #[test]
    fn harmful_requests_are_denied_by_the_guard() {
        let mut svc = service(ServeConfig {
            batch: BatchPolicy::unbatched(),
            ..ServeConfig::default()
        });
        svc.submit(
            req(0, 3, Action::adjust("strike", StateDelta::empty()), 1, None),
            1,
        );
        let decisions = svc.tick(1);
        assert!(!decisions[0].verdict.permits_execution());
        assert_eq!(decisions[0].shed, None, "a guard denial is not a shed");
        assert_eq!(svc.stats().denied, 1);
    }

    #[test]
    fn capacity_overflow_sheds_closed() {
        let mut svc = service(ServeConfig {
            admission: AdmissionConfig {
                capacity: 2,
                tenant_quota: 10,
                quantum: 4,
            },
            ..ServeConfig::default()
        });
        let mut shed = Vec::new();
        for id in 0..5 {
            let r = req(
                id,
                id,
                Action::adjust("patrol", StateDelta::empty()),
                1,
                None,
            );
            if let Some(d) = svc.submit(r, 1) {
                shed.push(d);
            }
        }
        assert_eq!(shed.len(), 3);
        for d in &shed {
            assert!(!d.verdict.permits_execution(), "shed must fail closed");
            assert_eq!(d.shed, Some(ShedReason::Capacity));
        }
        assert_eq!(svc.stats().shed_capacity, 3);
    }

    #[test]
    fn expired_requests_are_shed_at_dispatch_without_charge() {
        let mut svc = service(ServeConfig {
            batch: BatchPolicy::unbatched(),
            ..ServeConfig::default()
        });
        svc.submit(
            req(
                0,
                1,
                Action::adjust("patrol", StateDelta::empty()),
                1,
                Some(2),
            ),
            1,
        );
        // Nothing happens on time...
        assert!(svc.tick(5).len() == 1);
        let stats = svc.stats();
        assert_eq!(stats.shed_deadline, 1);
        assert_eq!(stats.decided, 0);
        assert_eq!(
            stats.batches, 0,
            "no guard work ran for the expired request"
        );
    }

    #[test]
    fn batching_holds_young_partial_batches() {
        let mut svc = service(ServeConfig {
            batch: BatchPolicy {
                max_batch: 8,
                max_wait: 3,
            },
            ..ServeConfig::default()
        });
        svc.submit(
            req(0, 1, Action::adjust("patrol", StateDelta::empty()), 1, None),
            1,
        );
        assert!(svc.tick(1).is_empty(), "partial batch waits");
        assert!(svc.tick(2).is_empty(), "still young");
        let decisions = svc.tick(4);
        assert_eq!(decisions.len(), 1, "aged out at max_wait");
        assert_eq!(decisions[0].queue_ticks(), 3);
    }

    #[test]
    fn verdict_stream_is_thread_count_invariant() {
        let run = |threads: usize| {
            let mut svc = service(ServeConfig {
                threads,
                ..ServeConfig::default()
            });
            let mut decisions = Vec::new();
            let mut id = 0;
            for now in 1..=6u64 {
                for device in 0..10u64 {
                    let action = if device % 3 == 0 {
                        Action::adjust("strike", StateDelta::empty())
                    } else {
                        Action::adjust("east", StateDelta::single(VarId(0), 1.0))
                    };
                    if let Some(d) = svc.submit(req(id, device, action, now, Some(now + 8)), now) {
                        decisions.push(d);
                    }
                    id += 1;
                }
                decisions.extend(svc.tick(now));
            }
            // Drain.
            for now in 7..=40u64 {
                decisions.extend(svc.tick(now));
                if svc.queue_depth() == 0 {
                    break;
                }
            }
            let (ledger, stats) = svc.finish(40);
            (decisions, ledger.to_jsonl(), stats)
        };
        let (d1, l1, s1) = run(1);
        let (d4, l4, s4) = run(4);
        assert_eq!(d1, d4, "decision streams must not depend on threads");
        assert_eq!(l1, l4, "ledgers must be byte-identical across threads");
        assert_eq!(s1, s4);
        assert!(s1.decided > 0);
    }
}
