//! The policy decision service: admission → micro-batch → shard → verdict.
//!
//! One [`PolicyDecisionService`] is the runtime policy decision point of
//! the paper's architecture (§IV–VI) packaged as a standalone serving
//! layer: operators (tenants) submit [`DecisionRequest`]s, the service
//! queues them under admission control, forms micro-batches, shards each
//! batch by device id across persistent per-shard [`GuardStack`]s (each
//! with its own verdict memo cache), and renders [`Decision`]s. Every
//! decision — served or shed — is appended to a hash-chained
//! [`apdm_ledger`] run ledger, so the audit trail survives the process.
//!
//! ## Data flow
//!
//! ```text
//! submit(req) ──quota/capacity──shed──▶ Deny("shed:quota|capacity")
//!      │ admitted
//!      ▼
//! AdmissionQueue (per-tenant lanes, DRR drain)
//!      │ tick(now): while meter.can_dispatch() && batch ready
//!      ▼
//! dequeue ──deadline expired──shed──▶ Deny("shed:deadline")
//!      │ batch of ≤ max_batch
//!      ▼
//! shard by device % shards ──run_sharded(threads)──▶ GuardStack::check_batch
//!      │ verdicts reassembled in batch order          (per-shard memo cache)
//!      ▼
//! Decision stream + ledger Verdict records + telemetry
//! ```
//!
//! ## Determinism
//!
//! The decision stream and the sealed ledger are a pure function of the
//! submit stream and the configuration — never of the worker thread count:
//! requests map to shards by device id (not by worker), each shard's stack
//! (and memo cache) is touched only by its own shard's requests, and
//! verdicts are reassembled in batch order. The property tests assert
//! byte-identical ledgers across thread counts.
//!
//! ## Fail-closed overload behaviour
//!
//! Every shed path routes through [`Decision::shed`], which can only
//! construct a denial. Overload makes the service refuse work — it can
//! never make it approve work it did not evaluate.

use std::time::Instant;

use apdm_guards::{GuardContext, GuardStack, GuardVerdict, HarmOracle};
use apdm_ledger::{Ledger, RotationPolicy, RunEvent, SegmentedLedger, SegmentedRecorder};
use apdm_policy::Action;
use apdm_telemetry as telemetry;
use apdm_telemetry::{SloMonitor, SloSpec, TraceContext};
use serde::{Deserialize, Serialize};

use crate::admission::{AdmissionConfig, AdmissionQueue};
use crate::batcher::{BatchPolicy, CostModel, Meter};
use crate::checkpoint::{CacheEntry, CacheSnap, LaneSnap, ReqSnap, ServeCheckpoint};
use crate::request::{Decision, DecisionRequest, ShedReason, TenantId};

/// One shard's contribution to a batch: `(batch_index, verdict)` pairs plus
/// the shard's memo-cache `(hits, misses)` deltas.
type ShardOutput = (Vec<(usize, GuardVerdict)>, u64, u64);

/// Everything [`PolicyDecisionService::evaluate`] learns about one batch.
struct EvalOutcome {
    /// Verdicts in batch order.
    verdicts: Vec<GuardVerdict>,
    /// Memo-cache hits across all shards.
    hits: u64,
    /// Memo-cache misses across all shards.
    misses: u64,
    /// Virtual makespan of the batch, in cost units (deterministic).
    makespan: u64,
    /// Chunks the virtual schedule moved off their home worker.
    virtual_steals: u64,
    /// Chunks that actually ran elsewhere (wall-timing dependent).
    actual_steals: u64,
    /// Per-request virtual start offset (shard start + within-shard
    /// prefix), indexed by batch position.
    offsets: Vec<u64>,
}

thread_local! {
    static SUBMITTED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.submitted") };
    static DECIDED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.decided") };
    static SHED_CAPACITY: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.shed.capacity") };
    static SHED_QUOTA: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.shed.quota") };
    static SHED_DEADLINE: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.shed.deadline") };
    static SHED_TOTAL: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.shed.total") };
    static QUEUE_TICKS: telemetry::CachedHistogram =
        const { telemetry::CachedHistogram::new("serve.latency.queue_ticks") };
    static BATCH_SIZE: telemetry::CachedHistogram =
        const { telemetry::CachedHistogram::new("serve.batch.size") };
    static EVAL_NS: telemetry::CachedHistogram =
        const { telemetry::CachedHistogram::new("serve.eval.ns") };
    static DEFERRED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("serve.deferred") };
}

/// Seed mixed into the per-batch steal order so the claim sequence differs
/// from the fleet's while staying a pure function of the service seed and
/// the batch counter.
const SERVE_STEAL_SEED: u64 = 0x5E4E_57EA;

/// How batch evaluation distributes shards across worker threads.
///
/// Either way the decision stream and the sealed ledger are byte-identical
/// — scheduling decides *which worker* evaluates a shard and the virtual
/// wait accounting, never the verdicts or their order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheduling {
    /// Contiguous static partition: worker `w` owns a fixed block of
    /// shards, hot shards queue behind their block-mates (the pre-E15
    /// behaviour).
    Static,
    /// Deterministic work-stealing ([`apdm_par::run_sharded_balanced`]):
    /// shards are claimed heaviest-first in a seeded order, so a hot shard
    /// starts immediately instead of waiting out its block.
    Balanced,
}

/// Full configuration of one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Seed recorded in the run ledger header (the service itself draws no
    /// randomness; the seed names the workload that drove it).
    pub seed: u64,
    /// Worker threads for batch evaluation (0 = auto via `APDM_THREADS` /
    /// hardware). Never affects results, only wall-clock.
    pub threads: usize,
    /// Fixed shard count — the determinism unit. Requests map to shard
    /// `device % shards` regardless of `threads`.
    pub shards: usize,
    /// Admission bounds and DRR fairness.
    pub admission: AdmissionConfig,
    /// Micro-batch close policy.
    pub batch: BatchPolicy,
    /// Deterministic work accounting.
    pub cost: CostModel,
    /// Enable the per-shard guard-verdict memo cache.
    pub cache: bool,
    /// Evaluate the standard SLOs ([`standard_slos`]) every this many ticks
    /// (burn-rate windows are delimited by the evaluations). `0` disables
    /// SLO monitoring; it is also inert unless telemetry is installed.
    pub slo_every: u64,
    /// Shard scheduling strategy for batch evaluation. Never affects the
    /// decision stream or the ledger.
    pub scheduling: Scheduling,
    /// Cross-shard admission backpressure: cap each batch's intake from
    /// shards whose estimated in-flight cost exceeds twice their fair
    /// share of the tick capacity, deferring the excess to the front of
    /// its lane. Changes *which* requests share a batch (deterministically,
    /// identically at every thread count), not any verdict.
    pub backpressure: bool,
    /// Segment rotation for the run ledger. `None` records one unbounded
    /// segment (the pre-E16 behaviour, and what [`finish`] expects —
    /// see [`finish_segmented`]). When set, the service checks the budget
    /// at the end of every tick's dispatch work and rolls to a new
    /// anchored segment headed by a checkpoint frame, so a crashed
    /// process can resume from the last rotation point.
    ///
    /// [`finish`]: PolicyDecisionService::finish
    /// [`finish_segmented`]: PolicyDecisionService::finish_segmented
    pub rotation: Option<RotationPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 42,
            threads: 0,
            shards: 8,
            admission: AdmissionConfig::default(),
            batch: BatchPolicy::default(),
            cost: CostModel::default(),
            cache: true,
            slo_every: 0,
            scheduling: Scheduling::Balanced,
            backpressure: false,
            rotation: None,
        }
    }
}

/// The serving layer's standard objectives, evaluated every
/// [`ServeConfig::slo_every`] ticks:
///
/// * `serve.queue_wait` — 99% of decided requests wait at most 15 ticks in
///   the admission queue (threshold on a log2-bucket edge for exactness).
/// * `serve.shed_rate` — at most 5% of submissions are shed.
pub fn standard_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::latency("serve.queue_wait", "serve.latency.queue_ticks", 15, 0.99),
        SloSpec::counter_ratio(
            "serve.shed_rate",
            "serve.shed.total",
            "serve.submitted",
            0.95,
        ),
    ]
}

/// Slot deriving each pipeline stage's span from its predecessor. The
/// stages form a linear chain (each stage's parent is the previous stage),
/// so a single slot never collides — it is only ever used once per parent.
const STAGE_SLOT: u64 = 1;

/// Advance a request's trace by one pipeline stage: derive the next hop in
/// the causal chain and, when this trace records, emit the stage event.
/// Derivation is unconditional (cheap hash mix), so causality survives
/// stages running on threads without a telemetry dispatch.
fn stage_event(
    ctx: Option<TraceContext>,
    name: &'static str,
    device: u64,
    extra: &[(&'static str, u64)],
) -> Option<TraceContext> {
    let next = ctx?.child(STAGE_SLOT);
    if telemetry::enabled() && next.sampled {
        let mut fields: Vec<(telemetry::Name, telemetry::FieldValue)> = extra
            .iter()
            .map(|&(k, v)| (telemetry::Name::Borrowed(k), telemetry::FieldValue::U64(v)))
            .collect();
        next.push_fields(device, &mut fields);
        telemetry::emit_event(name, telemetry::Level::Debug, fields);
    }
    Some(next)
}

/// Exact counters over one service lifetime (mirrored into the telemetry
/// registry when a dispatch is installed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests offered via [`PolicyDecisionService::submit`].
    pub submitted: u64,
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Requests actually evaluated by a guard stack.
    pub decided: u64,
    /// Evaluated verdicts that allowed the proposal (with or without
    /// obligations).
    pub allowed: u64,
    /// Evaluated guard denials (shed denials are counted separately).
    pub denied: u64,
    /// Evaluated substitutions.
    pub replaced: u64,
    /// Sheds at admission: global queue full.
    pub shed_capacity: u64,
    /// Sheds at admission: tenant over quota.
    pub shed_quota: u64,
    /// Sheds at dispatch: deadline expired in the queue.
    pub shed_deadline: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Verdict-cache hits summed over all shards.
    pub cache_hits: u64,
    /// Verdict-cache misses summed over all shards.
    pub cache_misses: u64,
    /// High-water mark of the admission queue.
    pub max_queue_depth: u64,
    /// Work units charged against the meter.
    pub cost_spent: u64,
    /// Requests pushed to a later batch by cross-shard backpressure (each
    /// one re-queued at the front of its lane). Computed from cost
    /// *estimates*, so the count is identical at every thread count and
    /// scheduling mode.
    pub deferrals: u64,
}

impl ServeStats {
    /// All sheds, every one of which resolved to a denial.
    pub fn shed_total(&self) -> u64 {
        self.shed_capacity + self.shed_quota + self.shed_deadline
    }
}

/// Aggregate scheduling telemetry over one service lifetime.
///
/// `makespan_units` and `virtual_steals` come from the deterministic
/// virtual schedule and are bit-reproducible for a given thread count.
/// `actual_steals` observes real thread timing and may vary run to run —
/// report it, never assert on it, and never let it near the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchedSummary {
    /// Sum of per-batch virtual makespans, in cost units.
    pub makespan_units: u64,
    /// Chunks the virtual schedule assigned away from their static home
    /// worker.
    pub virtual_steals: u64,
    /// Chunks that actually ran on a different worker than the virtual
    /// schedule predicted (wall-timing dependent).
    pub actual_steals: u64,
}

/// The sharded, micro-batching, fail-closed policy decision service. See
/// the module docs for the data flow.
#[derive(Debug)]
pub struct PolicyDecisionService<O> {
    cfg: ServeConfig,
    threads: usize,
    queue: AdmissionQueue,
    meter: Meter,
    /// One persistent guard stack per shard; shard `s` judges every request
    /// with `device % shards == s`, so its memo cache and audit trail are
    /// independent of worker scheduling.
    stacks: Vec<GuardStack>,
    oracle: O,
    recorder: SegmentedRecorder,
    stats: ServeStats,
    slo: SloMonitor,
    /// Estimated in-flight cost per shard, decayed by the shard's fair
    /// share each tick — the backpressure signal.
    shard_inflight: Vec<u64>,
    /// Per-shard virtual queue-wait samples (cost units) since the last
    /// [`drain_shard_waits`](Self::drain_shard_waits). Grows until drained;
    /// experiment drivers drain per run, long-lived embedders should drain
    /// periodically.
    shard_waits: Vec<Vec<u64>>,
    sched: SchedSummary,
}

impl<O: HarmOracle + Copy + Send + Sync> PolicyDecisionService<O> {
    /// Build a service from per-shard guard stacks. `stacks.len()` fixes
    /// the shard count; `cfg.shards` must agree. The `cache` flag is
    /// applied to every stack here so callers cannot accidentally mix
    /// cached and uncached shards.
    pub fn new(cfg: ServeConfig, mut stacks: Vec<GuardStack>, oracle: O, name: &str) -> Self {
        assert_eq!(
            cfg.shards,
            stacks.len(),
            "cfg.shards must match the stack count"
        );
        assert!(cfg.shards > 0, "a service needs at least one shard");
        for stack in &mut stacks {
            stack.set_cache_enabled(cfg.cache);
        }
        PolicyDecisionService {
            threads: apdm_par::resolve_threads(cfg.threads),
            queue: AdmissionQueue::new(cfg.admission),
            meter: Meter::new(&cfg.cost),
            stacks,
            oracle,
            recorder: SegmentedRecorder::new(
                name,
                cfg.seed,
                cfg.shards as u64,
                cfg.rotation.unwrap_or_default(),
            ),
            stats: ServeStats::default(),
            slo: standard_slos()
                .into_iter()
                .fold(SloMonitor::new(), SloMonitor::with_objective),
            shard_inflight: vec![0; cfg.shards],
            shard_waits: vec![Vec::new(); cfg.shards],
            sched: SchedSummary::default(),
            cfg,
        }
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Resolved worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Scheduling telemetry so far (see [`SchedSummary`] for what is safe
    /// to assert on).
    pub fn sched_summary(&self) -> SchedSummary {
        self.sched
    }

    /// Take the per-shard virtual queue-wait samples accumulated since the
    /// last drain. Each sample is one decided request's wait in cost
    /// units: `queue ticks × capacity_per_tick` + the virtual offset of
    /// its batch within the tick + its shard's virtual start + its
    /// position within the shard. Deterministic for a fixed thread count
    /// and scheduling mode.
    pub fn drain_shard_waits(&mut self) -> Vec<Vec<u64>> {
        std::mem::replace(&mut self.shard_waits, vec![Vec::new(); self.cfg.shards])
    }

    /// Offer a request. `None` means admitted (the decision will come out
    /// of a later [`tick`](Self::tick)); `Some` is an immediate fail-closed
    /// shed denial (queue full or tenant over quota).
    pub fn submit(&mut self, mut req: DecisionRequest, now: u64) -> Option<Decision> {
        self.stats.submitted += 1;
        if telemetry::enabled() {
            SUBMITTED.with(|c| c.inc());
        }
        // The admission stage rules on every request — admitted or shed —
        // so its span is minted before the queue decides.
        req.ctx = stage_event(req.ctx, "serve.admit", req.device, &[]);
        match self.queue.submit(req) {
            None => {
                self.stats.admitted += 1;
                self.stats.max_queue_depth =
                    self.stats.max_queue_depth.max(self.queue.len() as u64);
                None
            }
            Some((req, reason)) => Some(self.shed(&req, reason, now)),
        }
    }

    /// Run one service tick: refill the work meter, dispatch every batch
    /// that is ready and affordable, and return the decisions rendered this
    /// tick (deadline sheds interleaved before the batch they were culled
    /// from). Decision order is deterministic.
    pub fn tick(&mut self, now: u64) -> Vec<Decision> {
        self.meter.refill();
        // Backpressure bookkeeping: each shard drains its fair share of
        // the tick capacity; a shard holding more than twice that share of
        // estimated in-flight work is saturated, and its intake per batch
        // is capped at roughly twice its fair slice of the batch.
        let shards = self.cfg.shards;
        let fair_share = (self.cfg.cost.capacity_per_tick / shards as u64).max(1);
        let saturation = 2 * fair_share;
        let shard_cap = (2 * self.cfg.batch.max_batch / shards).max(1);
        for inflight in &mut self.shard_inflight {
            *inflight = inflight.saturating_sub(fair_share);
        }
        let mut decisions = Vec::new();
        // Virtual time already consumed by earlier batches this tick: the
        // wait overlay's per-tick base offset.
        let mut tick_offset = 0u64;
        loop {
            if !self.meter.can_dispatch() || self.queue.is_empty() {
                break;
            }
            let oldest = self.queue.oldest_submitted().expect("non-empty queue");
            if !self
                .cfg
                .batch
                .ready(self.queue.len(), now.saturating_sub(oldest))
            {
                break;
            }
            // Form the batch: up to max_batch live requests, shedding any
            // that expired while queued (uncharged — no guard work ran)
            // and deferring the overflow of saturated shards. The scan is
            // bounded by the deferral count so a queue full of hot-shard
            // requests cannot make batch formation quadratic.
            let mut batch = Vec::with_capacity(self.cfg.batch.max_batch);
            let mut deferred: Vec<DecisionRequest> = Vec::new();
            let mut shard_take = vec![0usize; shards];
            while batch.len() < self.cfg.batch.max_batch
                && deferred.len() < self.cfg.batch.max_batch
            {
                match self.queue.dequeue() {
                    None => break,
                    Some(req) if req.expired(now) => {
                        decisions.push(self.shed(&req, ShedReason::Deadline, now));
                    }
                    Some(req) => {
                        let s = (req.device % shards as u64) as usize;
                        if self.cfg.backpressure
                            && self.shard_inflight[s] >= saturation
                            && shard_take[s] >= shard_cap
                        {
                            deferred.push(req);
                        } else {
                            shard_take[s] += 1;
                            batch.push(req);
                        }
                    }
                }
            }
            let deferrals = deferred.len() as u64;
            if deferrals > 0 {
                self.stats.deferrals += deferrals;
                if telemetry::enabled() {
                    DEFERRED.with(|c| c.add(deferrals));
                }
                self.queue.requeue_front(deferred);
            }
            if batch.is_empty() {
                if deferrals > 0 {
                    // Everything dispatchable is behind a saturated shard;
                    // give the decay a tick rather than spinning.
                    break;
                }
                // Everything dequeued had expired; re-examine the queue.
                continue;
            }
            let size = batch.len() as u64;
            for req in &mut batch {
                req.ctx = stage_event(req.ctx, "serve.batch", req.device, &[("size", size)]);
            }
            let started = Instant::now();
            let eval = self.evaluate(&batch, now);
            // Shard-stage spans are minted on the driver thread *after* the
            // parallel section (workers carry no telemetry dispatch); the
            // virtual timestamp is the same tick either way.
            for req in &mut batch {
                req.ctx = stage_event(
                    req.ctx,
                    "serve.shard",
                    req.device,
                    &[("shard", req.device % shards as u64)],
                );
            }
            let cost = self.cfg.cost.batch_cost(eval.hits, eval.misses);
            self.meter.charge(cost);
            self.stats.batches += 1;
            self.stats.cache_hits += eval.hits;
            self.stats.cache_misses += eval.misses;
            self.stats.cost_spent = self.meter.spent();
            self.sched.makespan_units += eval.makespan;
            self.sched.virtual_steals += eval.virtual_steals;
            self.sched.actual_steals += eval.actual_steals;
            if telemetry::enabled() {
                BATCH_SIZE.with(|h| h.record(batch.len() as u64));
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                EVAL_NS.with(|h| h.record(ns));
            }
            for ((req, verdict), offset) in batch.iter().zip(eval.verdicts).zip(eval.offsets) {
                let s = (req.device % shards as u64) as usize;
                self.shard_inflight[s] += self.cfg.cost.estimate(1);
                let queue_ticks = now.saturating_sub(req.submitted_at);
                self.shard_waits[s]
                    .push(queue_ticks * self.cfg.cost.capacity_per_tick + tick_offset + offset);
                decisions.push(self.decide(req, verdict, now));
            }
            tick_offset += eval.makespan;
        }
        // Rotation is checked once per tick, after all of the tick's
        // dispatch work — a deterministic point, so an uninterrupted run
        // and a crash-resumed run see identical segment boundaries and
        // write identical checkpoint frames. The frame follows the anchor
        // as part of the new segment's header (it describes state, not an
        // occurrence), so it never re-triggers the budget by itself.
        if self.recorder.should_rotate() {
            self.recorder.rotate(now);
            let frame = self.checkpoint(now).to_frame();
            self.recorder.record(now, RunEvent::Snapshot(frame));
            self.recorder.mark_header();
        }
        if telemetry::enabled() {
            let depth = self.queue.len() as f64;
            let sched = self.sched;
            telemetry::with_registry(|reg| {
                reg.gauge("serve.queue.depth").set(depth);
                for (s, &inflight) in self.shard_inflight.iter().enumerate() {
                    reg.gauge(&format!("serve.shard.inflight.{s:02}"))
                        .set(inflight as f64);
                }
                reg.gauge("serve.sched.virtual_steals")
                    .set(sched.virtual_steals as f64);
                reg.gauge("serve.sched.actual_steals")
                    .set(sched.actual_steals as f64);
            });
            if self.cfg.slo_every > 0 && now.is_multiple_of(self.cfg.slo_every) {
                self.slo.evaluate();
            }
        }
        decisions
    }

    /// Seal and return the run ledger plus the final counters. `now` is the
    /// tick recorded on the closing record. Only valid with rotation off
    /// (the default) — a rotated run holds several segments, so callers
    /// that enable [`ServeConfig::rotation`] must use
    /// [`finish_segmented`](Self::finish_segmented) instead.
    pub fn finish(self, now: u64) -> (Ledger, ServeStats) {
        let (segments, stats) = self.finish_segmented(now);
        let ledger = segments
            .into_single()
            .expect("finish() requires rotation off; use finish_segmented()");
        (ledger, stats)
    }

    /// Seal the run and return every retained ledger segment plus the
    /// final counters. With rotation off this is one segment and
    /// [`SegmentedLedger::into_single`] recovers the plain ledger.
    pub fn finish_segmented(self, now: u64) -> (SegmentedLedger, ServeStats) {
        // The service executes nothing itself, so the ledger's harm count
        // is structurally zero: only verdicts flow through here.
        (self.recorder.finish(now, 0), self.stats)
    }

    /// The run recorder: the open ledger segment and any retained sealed
    /// segments. Crash-tolerant embedders persist these after every tick.
    pub fn recorder(&self) -> &SegmentedRecorder {
        &self.recorder
    }

    /// Freeze everything the decision stream depends on — admission lanes
    /// and deficits, the DRR rotation, the work meter, per-shard
    /// backpressure costs, the batch cursor and the per-shard verdict memo
    /// caches — as of the end of tick `now`. A service
    /// [`restore`](Self::restore)d from the result resumes at `now + 1`
    /// with a bit-identical decision and ledger future. Thread count,
    /// scheduling telemetry and SLO state are deliberately excluded: they
    /// must not influence results, so they must not ride the checkpoint.
    pub fn checkpoint(&self, now: u64) -> ServeCheckpoint {
        let (lanes, rotation) = self.queue.export();
        let (meter_credit, meter_spent) = self.meter.export();
        ServeCheckpoint {
            tick: now,
            lanes: lanes
                .into_iter()
                .map(|(tenant, deficit, queue)| LaneSnap {
                    tenant: tenant.0,
                    deficit,
                    queue: queue.iter().map(ReqSnap::from).collect(),
                })
                .collect(),
            rotation: rotation.into_iter().map(|t| t.0).collect(),
            meter_credit,
            meter_spent,
            shard_inflight: self.shard_inflight.clone(),
            stats: self.stats,
            caches: self
                .stacks
                .iter()
                .map(|stack| {
                    stack
                        .export_cache()
                        .map(|(entries, hits, misses)| CacheSnap {
                            entries: entries
                                .into_iter()
                                .map(|(fp, verdict)| CacheEntry { fp, verdict })
                                .collect(),
                            hits,
                            misses,
                        })
                })
                .collect(),
        }
    }

    /// Rebuild a service mid-run from a [`ServeCheckpoint`] and a resumed
    /// recorder (see [`SegmentedRecorder::resume`]). `cfg` and `stacks`
    /// must match the crashed process's configuration; `cfg.threads` and
    /// `cfg.scheduling` are free to differ — the restored service still
    /// produces the identical decision stream. Telemetry-side state
    /// (scheduling summary, wait samples, SLO windows) restarts fresh: it
    /// was never part of the determinism contract.
    pub fn restore(
        cfg: ServeConfig,
        mut stacks: Vec<GuardStack>,
        oracle: O,
        checkpoint: &ServeCheckpoint,
        recorder: SegmentedRecorder,
    ) -> Self {
        assert_eq!(
            cfg.shards,
            stacks.len(),
            "cfg.shards must match the stack count"
        );
        assert_eq!(
            cfg.shards,
            checkpoint.shard_inflight.len(),
            "checkpoint shard count must match the configuration"
        );
        for stack in &mut stacks {
            stack.set_cache_enabled(cfg.cache);
        }
        for (stack, cache) in stacks.iter_mut().zip(&checkpoint.caches) {
            if let Some(snap) = cache {
                stack.restore_cache(
                    snap.entries
                        .iter()
                        .map(|e| (e.fp, e.verdict.clone()))
                        .collect(),
                    snap.hits,
                    snap.misses,
                );
            }
        }
        let lanes = checkpoint
            .lanes
            .iter()
            .map(|lane| {
                (
                    TenantId(lane.tenant),
                    lane.deficit,
                    lane.queue
                        .iter()
                        .cloned()
                        .map(DecisionRequest::from)
                        .collect(),
                )
            })
            .collect();
        let rotation = checkpoint.rotation.iter().map(|&t| TenantId(t)).collect();
        PolicyDecisionService {
            threads: apdm_par::resolve_threads(cfg.threads),
            queue: AdmissionQueue::restore(cfg.admission, lanes, rotation),
            meter: Meter::restore(&cfg.cost, checkpoint.meter_credit, checkpoint.meter_spent),
            stacks,
            oracle,
            recorder,
            stats: checkpoint.stats,
            slo: standard_slos()
                .into_iter()
                .fold(SloMonitor::new(), SloMonitor::with_objective),
            shard_inflight: checkpoint.shard_inflight.clone(),
            shard_waits: vec![Vec::new(); cfg.shards],
            sched: SchedSummary::default(),
            cfg,
        }
    }

    /// Evaluate one batch: bucket requests by shard, run the shards across
    /// the worker pool under the configured [`Scheduling`], reassemble
    /// verdicts in batch order. Alongside the verdicts and the memo-cache
    /// `(hits, misses)`, returns the batch's deterministic virtual
    /// schedule (makespan, steals) and each request's virtual start offset
    /// for the wait overlay.
    fn evaluate(&mut self, batch: &[DecisionRequest], now: u64) -> EvalOutcome {
        let shards = self.cfg.shards;
        let cost_model = self.cfg.cost;
        let mut buckets: Vec<Vec<(usize, &DecisionRequest)>> = vec![Vec::new(); shards];
        // A request's within-shard virtual offset is the estimated cost of
        // the same-shard requests queued ahead of it in this batch.
        let mut offsets = vec![0u64; batch.len()];
        for (idx, req) in batch.iter().enumerate() {
            let bucket = &mut buckets[(req.device % shards as u64) as usize];
            offsets[idx] = cost_model.estimate(bucket.len() as u64);
            bucket.push((idx, req));
        }
        let shard_costs: Vec<u64> = buckets
            .iter()
            .map(|b| cost_model.estimate(b.len() as u64))
            .collect();
        let oracle = self.oracle;
        let mut work: Vec<(&mut GuardStack, Vec<(usize, &DecisionRequest)>)> =
            self.stacks.iter_mut().zip(buckets).collect();
        let run_slice = |_: usize,
                         slice: &mut [(&mut GuardStack, Vec<(usize, &DecisionRequest)>)]|
         -> ShardOutput {
            let mut out = Vec::new();
            let (mut hits, mut misses) = (0u64, 0u64);
            for (stack, items) in slice.iter_mut() {
                if items.is_empty() {
                    continue;
                }
                let before = stack.cache_stats();
                for &(idx, req) in items.iter() {
                    let subject = format!("d{}", req.device);
                    let alternatives: Vec<&Action> = req.alternatives.iter().collect();
                    let ctx = GuardContext {
                        tick: now,
                        subject: &subject,
                        state: &req.state,
                        alternatives: &alternatives,
                        world_token: 0,
                    };
                    out.push((idx, stack.check(&ctx, &req.proposed, oracle)));
                }
                match (before, stack.cache_stats()) {
                    (Some((h0, m0)), Some((h1, m1))) => {
                        hits += h1 - h0;
                        misses += m1 - m0;
                    }
                    // Cache off: every evaluation pays full freight.
                    _ => misses += items.len() as u64,
                }
            }
            (out, hits, misses)
        };
        let (shard_results, makespan, virtual_steals, actual_steals, shard_starts) = match self
            .cfg
            .scheduling
        {
            Scheduling::Static => {
                // run_sharded hands worker w a contiguous block of
                // shards — exactly the virtual schedule's home
                // assignment, so its start times describe this run.
                let ranges: Vec<(usize, usize)> = (0..shards).map(|i| (i, i + 1)).collect();
                let schedule = apdm_par::static_schedule(self.threads, &ranges, &shard_costs);
                let results = apdm_par::run_sharded(self.threads, &mut work, run_slice);
                let starts = schedule.chunks.iter().map(|c| c.start).collect();
                (results, schedule.makespan, 0, 0, starts)
            }
            Scheduling::Balanced => {
                let plan =
                    apdm_par::StealPlan::new(self.cfg.seed ^ SERVE_STEAL_SEED, self.stats.batches);
                let run = apdm_par::run_sharded_balanced(
                    self.threads,
                    plan,
                    &mut work,
                    |(_, items)| cost_model.estimate(items.len() as u64),
                    run_slice,
                );
                // A chunk may span several shards; shards inside it
                // start back to back from the chunk's virtual start.
                let mut starts = vec![0u64; shards];
                for chunk in &run.schedule.chunks {
                    let mut t = chunk.start;
                    for s in chunk.range.0..chunk.range.1 {
                        starts[s] = t;
                        t += shard_costs[s];
                    }
                }
                (
                    run.results,
                    run.schedule.makespan,
                    run.schedule.steals,
                    run.actual_steals,
                    starts,
                )
            }
        };
        for (idx, req) in batch.iter().enumerate() {
            offsets[idx] += shard_starts[(req.device % shards as u64) as usize];
        }
        let mut verdicts: Vec<Option<GuardVerdict>> = vec![None; batch.len()];
        let (mut hits, mut misses) = (0u64, 0u64);
        for (pairs, h, m) in shard_results {
            hits += h;
            misses += m;
            for (idx, verdict) in pairs {
                debug_assert!(verdicts[idx].is_none(), "duplicate verdict slot {idx}");
                verdicts[idx] = Some(verdict);
            }
        }
        let verdicts = verdicts
            .into_iter()
            .map(|v| v.expect("every batch slot judged"))
            .collect();
        EvalOutcome {
            verdicts,
            hits,
            misses,
            makespan,
            virtual_steals,
            actual_steals,
            offsets,
        }
    }

    /// Render, count, audit and instrument one evaluated decision.
    fn decide(&mut self, req: &DecisionRequest, verdict: GuardVerdict, now: u64) -> Decision {
        let mut decision = Decision::evaluated(req, verdict, now);
        decision.ctx = stage_event(req.ctx, "serve.ledger", req.device, &[]);
        self.stats.decided += 1;
        match &decision.verdict {
            GuardVerdict::Allow | GuardVerdict::AllowWithObligations(_) => self.stats.allowed += 1,
            GuardVerdict::Deny { .. } => self.stats.denied += 1,
            GuardVerdict::Replace { .. } => self.stats.replaced += 1,
        }
        if telemetry::enabled() {
            DECIDED.with(|c| c.inc());
            QUEUE_TICKS.with(|h| h.record(decision.queue_ticks()));
        }
        self.record(&decision, now);
        decision
    }

    /// Render, count, audit and instrument one shed denial.
    fn shed(&mut self, req: &DecisionRequest, reason: ShedReason, now: u64) -> Decision {
        let mut decision = Decision::shed(req, reason, now);
        decision.ctx = stage_event(req.ctx, "serve.shed", req.device, &[]);
        let (field, counter) = match reason {
            ShedReason::Capacity => (&mut self.stats.shed_capacity, &SHED_CAPACITY),
            ShedReason::Quota => (&mut self.stats.shed_quota, &SHED_QUOTA),
            ShedReason::Deadline => (&mut self.stats.shed_deadline, &SHED_DEADLINE),
        };
        *field += 1;
        if telemetry::enabled() {
            counter.with(|c| c.inc());
            SHED_TOTAL.with(|c| c.inc());
        }
        self.record(&decision, now);
        decision
    }

    /// Append one decision to the run ledger.
    fn record(&mut self, decision: &Decision, now: u64) {
        self.recorder.record(
            now,
            RunEvent::Verdict {
                device: decision.device,
                action: decision.action.as_str().into(),
                verdict: decision.verdict_name().as_str().into(),
                reason: decision.reason().to_string(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TenantId;
    use crate::workload::{standard_stacks, WorkloadOracle};
    use apdm_policy::Action;
    use apdm_statespace::{StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder().var("x", 0.0, 10.0).build()
    }

    fn req(
        id: u64,
        device: u64,
        action: Action,
        now: u64,
        deadline: Option<u64>,
    ) -> DecisionRequest {
        DecisionRequest {
            id,
            tenant: TenantId((id % 2) as u32),
            device,
            state: schema().state(&[1.0]).unwrap(),
            proposed: action,
            alternatives: Vec::new(),
            submitted_at: now,
            deadline,
            ctx: None,
        }
    }

    fn service(cfg: ServeConfig) -> PolicyDecisionService<WorkloadOracle> {
        let stacks = standard_stacks(cfg.shards, cfg.cache);
        PolicyDecisionService::new(cfg, stacks, WorkloadOracle, "test")
    }

    #[test]
    fn harmless_requests_are_allowed_and_audited() {
        let mut svc = service(ServeConfig {
            batch: BatchPolicy::unbatched(),
            ..ServeConfig::default()
        });
        assert!(svc
            .submit(
                req(0, 3, Action::adjust("patrol", StateDelta::empty()), 1, None),
                1
            )
            .is_none());
        let decisions = svc.tick(1);
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].verdict, GuardVerdict::Allow);
        assert_eq!(decisions[0].shed, None);
        let (ledger, stats) = svc.finish(1);
        assert!(ledger.verify().is_ok());
        assert_eq!(stats.decided, 1);
        assert_eq!(stats.allowed, 1);
        // RunStarted + 1 verdict + RunFinished.
        assert_eq!(ledger.len(), 3);
    }

    #[test]
    fn harmful_requests_are_denied_by_the_guard() {
        let mut svc = service(ServeConfig {
            batch: BatchPolicy::unbatched(),
            ..ServeConfig::default()
        });
        svc.submit(
            req(0, 3, Action::adjust("strike", StateDelta::empty()), 1, None),
            1,
        );
        let decisions = svc.tick(1);
        assert!(!decisions[0].verdict.permits_execution());
        assert_eq!(decisions[0].shed, None, "a guard denial is not a shed");
        assert_eq!(svc.stats().denied, 1);
    }

    #[test]
    fn capacity_overflow_sheds_closed() {
        let mut svc = service(ServeConfig {
            admission: AdmissionConfig {
                capacity: 2,
                tenant_quota: 10,
                quantum: 4,
            },
            ..ServeConfig::default()
        });
        let mut shed = Vec::new();
        for id in 0..5 {
            let r = req(
                id,
                id,
                Action::adjust("patrol", StateDelta::empty()),
                1,
                None,
            );
            if let Some(d) = svc.submit(r, 1) {
                shed.push(d);
            }
        }
        assert_eq!(shed.len(), 3);
        for d in &shed {
            assert!(!d.verdict.permits_execution(), "shed must fail closed");
            assert_eq!(d.shed, Some(ShedReason::Capacity));
        }
        assert_eq!(svc.stats().shed_capacity, 3);
    }

    #[test]
    fn expired_requests_are_shed_at_dispatch_without_charge() {
        let mut svc = service(ServeConfig {
            batch: BatchPolicy::unbatched(),
            ..ServeConfig::default()
        });
        svc.submit(
            req(
                0,
                1,
                Action::adjust("patrol", StateDelta::empty()),
                1,
                Some(2),
            ),
            1,
        );
        // Nothing happens on time...
        assert!(svc.tick(5).len() == 1);
        let stats = svc.stats();
        assert_eq!(stats.shed_deadline, 1);
        assert_eq!(stats.decided, 0);
        assert_eq!(
            stats.batches, 0,
            "no guard work ran for the expired request"
        );
    }

    #[test]
    fn batching_holds_young_partial_batches() {
        let mut svc = service(ServeConfig {
            batch: BatchPolicy {
                max_batch: 8,
                max_wait: 3,
            },
            ..ServeConfig::default()
        });
        svc.submit(
            req(0, 1, Action::adjust("patrol", StateDelta::empty()), 1, None),
            1,
        );
        assert!(svc.tick(1).is_empty(), "partial batch waits");
        assert!(svc.tick(2).is_empty(), "still young");
        let decisions = svc.tick(4);
        assert_eq!(decisions.len(), 1, "aged out at max_wait");
        assert_eq!(decisions[0].queue_ticks(), 3);
    }

    #[test]
    fn backpressure_defers_hot_shard_overflow_without_losing_requests() {
        let run = |scheduling: Scheduling, threads: usize| {
            let mut svc = service(ServeConfig {
                threads,
                scheduling,
                backpressure: true,
                ..ServeConfig::default()
            });
            let mut decisions = Vec::new();
            let mut id = 0;
            for now in 1..=8u64 {
                for _ in 0..12 {
                    // Every request hits device 3 → one hot shard.
                    let r = req(
                        id,
                        3,
                        Action::adjust("patrol", StateDelta::empty()),
                        now,
                        None,
                    );
                    if let Some(d) = svc.submit(r, now) {
                        decisions.push(d);
                    }
                    id += 1;
                }
                decisions.extend(svc.tick(now));
            }
            for now in 9..=200u64 {
                decisions.extend(svc.tick(now));
                if svc.queue_depth() == 0 {
                    break;
                }
            }
            let stats = svc.stats();
            let waits = svc.drain_shard_waits();
            let (ledger, _) = svc.finish(200);
            (decisions, ledger.to_jsonl(), stats, waits)
        };
        let (d_bal, l_bal, s_bal, _) = run(Scheduling::Balanced, 1);
        let (d_stat, l_stat, s_stat, _) = run(Scheduling::Static, 4);
        assert!(s_bal.deferrals > 0, "a single hot shard must defer");
        assert_eq!(
            s_bal.decided + s_bal.shed_total(),
            s_bal.submitted,
            "no request may be lost to deferral"
        );
        // Scheduling mode and thread count change neither the decision
        // stream, the ledger bytes, nor the (estimate-based) stats.
        assert_eq!(d_bal, d_stat);
        assert_eq!(l_bal, l_stat);
        assert_eq!(s_bal, s_stat);
    }

    #[test]
    fn wait_overlay_samples_every_decided_request() {
        let mut svc = service(ServeConfig::default());
        let mut decided = 0u64;
        for now in 1..=20u64 {
            for i in 0..6u64 {
                let r = req(
                    now * 10 + i,
                    i * 7 + now,
                    Action::adjust("patrol", StateDelta::empty()),
                    now,
                    None,
                );
                svc.submit(r, now);
            }
            decided += svc.tick(now).len() as u64;
        }
        let waits = svc.drain_shard_waits();
        let samples: usize = waits.iter().map(Vec::len).sum();
        assert_eq!(samples as u64, decided, "one wait sample per decision");
        assert!(svc.sched_summary().makespan_units > 0);
        // Drained: a second drain is empty.
        let again = svc.drain_shard_waits();
        assert_eq!(again.iter().map(Vec::len).sum::<usize>(), 0);
    }

    #[test]
    fn verdict_stream_is_thread_count_invariant() {
        let run = |threads: usize| {
            let mut svc = service(ServeConfig {
                threads,
                ..ServeConfig::default()
            });
            let mut decisions = Vec::new();
            let mut id = 0;
            for now in 1..=6u64 {
                for device in 0..10u64 {
                    let action = if device % 3 == 0 {
                        Action::adjust("strike", StateDelta::empty())
                    } else {
                        Action::adjust("east", StateDelta::single(VarId(0), 1.0))
                    };
                    if let Some(d) = svc.submit(req(id, device, action, now, Some(now + 8)), now) {
                        decisions.push(d);
                    }
                    id += 1;
                }
                decisions.extend(svc.tick(now));
            }
            // Drain.
            for now in 7..=40u64 {
                decisions.extend(svc.tick(now));
                if svc.queue_depth() == 0 {
                    break;
                }
            }
            let (ledger, stats) = svc.finish(40);
            (decisions, ledger.to_jsonl(), stats)
        };
        let (d1, l1, s1) = run(1);
        let (d4, l4, s4) = run(4);
        assert_eq!(d1, d4, "decision streams must not depend on threads");
        assert_eq!(l1, l4, "ledgers must be byte-identical across threads");
        assert_eq!(s1, s4);
        assert!(s1.decided > 0);
    }
}
