//! Micro-batching policy and the deterministic work meter.
//!
//! The serving layer amortizes per-dispatch overhead (shard fan-out, pool
//! hand-off, memo-cache plumbing) across a batch of requests, exactly as a
//! production inference service amortizes kernel-launch and weight-load
//! cost. [`BatchPolicy`] decides *when* a batch closes (size or age
//! threshold, the classic tension: bigger batches raise throughput, the
//! wait raises tail latency); [`CostModel`] + [`Meter`] account *how much*
//! evaluation work the backend can absorb per tick.
//!
//! The cost model is deliberately virtual — fixed unit charges per batch
//! and per request, not wall-clock — so saturation, shedding and the
//! batching advantage are all bit-reproducible under a fixed seed and
//! assertable in CI. Wall-clock timings are still measured (telemetry
//! histograms, `wall_ns` report fields) but live outside the determinism
//! contract, mirroring how `apdm-telemetry` treats span durations.

use serde::{Deserialize, Serialize};

/// When to close a micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Maximum requests per batch (1 = unbatched: every request pays the
    /// full dispatch overhead alone).
    pub max_batch: usize,
    /// Dispatch a partial batch once its oldest member has waited this many
    /// ticks (0 = never hold: whatever is pending goes immediately).
    pub max_wait: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            max_wait: 2,
        }
    }
}

impl BatchPolicy {
    /// The no-batching ablation: singleton batches, no holding.
    pub fn unbatched() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_wait: 0,
        }
    }

    /// Is batching actually on?
    pub fn batching(&self) -> bool {
        self.max_batch > 1
    }

    /// Should a batch be dispatched now, given the queue depth and how long
    /// the oldest queued request has waited?
    pub fn ready(&self, pending: usize, oldest_wait: u64) -> bool {
        pending >= self.max_batch || (pending > 0 && oldest_wait >= self.max_wait)
    }
}

/// Unit charges for the deterministic work meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Work units the evaluation backend absorbs per tick.
    pub capacity_per_tick: u64,
    /// Fixed dispatch cost per batch — the overhead batching amortizes.
    pub batch_overhead: u64,
    /// Cost of a full guard-stack evaluation (verdict-cache miss).
    pub cost_miss: u64,
    /// Cost of replaying a memoized verdict (verdict-cache hit).
    pub cost_hit: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            capacity_per_tick: 64,
            batch_overhead: 4,
            cost_miss: 2,
            cost_hit: 1,
        }
    }
}

impl CostModel {
    /// Charge for one evaluated batch.
    pub fn batch_cost(&self, hits: u64, misses: u64) -> u64 {
        self.batch_overhead + hits * self.cost_hit + misses * self.cost_miss
    }

    /// *A-priori* estimate for `n` not-yet-evaluated requests, used by the
    /// scheduler and the backpressure tracker before hit/miss outcomes are
    /// known. Conservatively assumes every request misses the verdict
    /// cache, so the estimate — unlike [`batch_cost`](Self::batch_cost) —
    /// never depends on cache state and stays identical across scheduling
    /// modes and thread counts.
    pub fn estimate(&self, n: u64) -> u64 {
        n * self.cost_miss
    }
}

/// Work-conserving budget meter. Credit refills by `capacity_per_tick`
/// each tick (idle capacity is not banked across ticks), a batch may
/// dispatch whenever credit is positive, and its actual cost is charged
/// afterwards — a batch may overdraw, carrying the debt into the next
/// tick. Saturation therefore emerges as: queue grows → admission bound
/// binds → capacity sheds. All integer arithmetic; fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meter {
    credit: i64,
    capacity: i64,
    spent: u64,
}

impl Meter {
    /// A meter refilling `capacity_per_tick` units per tick.
    pub fn new(model: &CostModel) -> Self {
        Meter {
            credit: 0,
            capacity: i64::try_from(model.capacity_per_tick).unwrap_or(i64::MAX),
            spent: 0,
        }
    }

    /// Start-of-tick refill: credit climbs by one tick's capacity but never
    /// banks above it (an idle service cannot burst later).
    pub fn refill(&mut self) {
        self.credit = self.credit.saturating_add(self.capacity).min(self.capacity);
    }

    /// May another batch dispatch this tick?
    pub fn can_dispatch(&self) -> bool {
        self.credit > 0
    }

    /// Charge an executed batch (may push credit negative — the debt
    /// shortens the next tick's budget).
    pub fn charge(&mut self, cost: u64) {
        self.credit = self
            .credit
            .saturating_sub(i64::try_from(cost).unwrap_or(i64::MAX));
        self.spent += cost;
    }

    /// Total units charged over the meter's lifetime.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Freeze the meter for a checkpoint: `(credit, spent)`. Credit carries
    /// outstanding debt, so a restored meter sheds exactly when an
    /// uninterrupted one would.
    pub fn export(&self) -> (i64, u64) {
        (self.credit, self.spent)
    }

    /// Rebuild a meter from an [`export`](Meter::export) under the same
    /// cost model.
    pub fn restore(model: &CostModel, credit: i64, spent: u64) -> Self {
        let mut meter = Meter::new(model);
        meter.credit = credit;
        meter.spent = spent;
        meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_closes_on_size_or_age() {
        let p = BatchPolicy {
            max_batch: 4,
            max_wait: 2,
        };
        assert!(!p.ready(0, 99), "nothing pending, nothing to dispatch");
        assert!(!p.ready(3, 1), "young partial batch keeps waiting");
        assert!(p.ready(4, 0), "full batch goes immediately");
        assert!(p.ready(1, 2), "aged partial batch goes");
        assert!(
            BatchPolicy::unbatched().ready(1, 0),
            "unbatched never holds"
        );
        assert!(!BatchPolicy::unbatched().batching());
    }

    #[test]
    fn batch_cost_amortizes_overhead() {
        let m = CostModel::default();
        // 16 misses in one batch vs 16 singleton batches.
        let batched = m.batch_cost(0, 16);
        let unbatched = 16 * m.batch_cost(0, 1);
        assert!(batched < unbatched);
        assert_eq!(unbatched - batched, 15 * m.batch_overhead);
        // Cache hits are strictly cheaper than misses.
        assert!(m.batch_cost(16, 0) < m.batch_cost(0, 16));
    }

    #[test]
    fn meter_refills_without_banking_and_carries_debt() {
        let model = CostModel {
            capacity_per_tick: 10,
            ..CostModel::default()
        };
        let mut meter = Meter::new(&model);
        assert!(!meter.can_dispatch(), "no credit before the first tick");
        meter.refill();
        meter.refill();
        // Two idle refills do not bank 20 units.
        meter.charge(10);
        assert!(!meter.can_dispatch());
        // Overdraw: a 25-unit batch on 10 credit leaves 15 of debt...
        meter.refill();
        assert!(meter.can_dispatch());
        meter.charge(25);
        meter.refill();
        assert!(!meter.can_dispatch(), "debt eats the whole next refill");
        meter.refill();
        assert!(meter.can_dispatch(), "and is paid off the tick after");
        assert_eq!(meter.spent(), 35);
    }
}
