//! The request/decision vocabulary of the serving layer.

use apdm_guards::GuardVerdict;
use apdm_policy::Action;
use apdm_statespace::State;
use apdm_telemetry::TraceContext;
use serde::{Deserialize, Serialize};

/// Identifies a tenant: one operator organization multiplexed onto a shared
/// decision service, with its own quota and fairness lane.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One policy decision request: a device's perceived state plus a proposed
/// action (and the alternatives its logic could take instead), to be ruled
/// on by the guard stack before anything executes. This is the unit the
/// serving layer queues, batches and shards.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRequest {
    /// Caller-assigned request id, echoed on the [`Decision`].
    pub id: u64,
    /// The tenant this request is billed to.
    pub tenant: TenantId,
    /// Subject device; also the shard key (`device % shards`).
    pub device: u64,
    /// The device's current (perceived) state.
    pub state: State,
    /// The action the device proposes to take.
    pub proposed: Action,
    /// Alternative actions the device's logic could take this step.
    pub alternatives: Vec<Action>,
    /// Tick at which the request entered the service.
    pub submitted_at: u64,
    /// Absolute tick after which the answer is useless to the caller; the
    /// service sheds (denies) the request rather than serving it late.
    /// `None` = never expires.
    pub deadline: Option<u64>,
    /// Causal trace context of the request. The service advances it through
    /// each pipeline stage (admit → batch → shard → ledger) and hands the
    /// final hop back on the [`Decision`], so a caller can keep the chain
    /// going (e.g. into a traced response). `None` = untraced.
    pub ctx: Option<TraceContext>,
}

impl DecisionRequest {
    /// Has this request's deadline passed at tick `now`?
    pub fn expired(&self, now: u64) -> bool {
        self.deadline.is_some_and(|d| d < now)
    }
}

/// Why the service refused to evaluate a request. Every shed resolves to a
/// [`GuardVerdict::Deny`] — the service fails closed under overload, never
/// silently open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The global admission queue was at capacity.
    Capacity,
    /// The tenant was over its pending-request quota.
    Quota,
    /// The request's deadline expired while it waited in the queue.
    Deadline,
}

impl ShedReason {
    /// Stable lowercase tag for ledgers and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::Capacity => "capacity",
            ShedReason::Quota => "quota",
            ShedReason::Deadline => "deadline",
        }
    }
}

/// The service's answer to one [`DecisionRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The request this answers.
    pub request_id: u64,
    /// Billed tenant.
    pub tenant: TenantId,
    /// Subject device.
    pub device: u64,
    /// Name of the proposed action the verdict concerns.
    pub action: String,
    /// The guard verdict (always a `Deny` when `shed` is set).
    pub verdict: GuardVerdict,
    /// Set when the service refused to evaluate the request; the verdict is
    /// then the fail-closed denial, not a guard ruling.
    pub shed: Option<ShedReason>,
    /// Tick the request entered the service.
    pub submitted_at: u64,
    /// Tick the decision was rendered.
    pub decided_at: u64,
    /// The last pipeline-stage span of the request's trace (the ledger
    /// append for evaluated decisions, the shed event for sheds). `None`
    /// when the request was untraced.
    pub ctx: Option<TraceContext>,
}

impl Decision {
    /// The fail-closed constructor: shedding a request *is* denying it.
    /// There is no code path that sheds without denying — overload can only
    /// make the service more conservative, never less (the paper's safety
    /// bias, applied to the serving layer).
    pub(crate) fn shed(req: &DecisionRequest, reason: ShedReason, now: u64) -> Self {
        Decision {
            request_id: req.id,
            tenant: req.tenant,
            device: req.device,
            action: req.proposed.name().to_string(),
            verdict: GuardVerdict::Deny {
                reason: format!("shed:{}", reason.name()),
            },
            shed: Some(reason),
            submitted_at: req.submitted_at,
            decided_at: now,
            ctx: req.ctx,
        }
    }

    /// A decision rendered by actually running the guard stack.
    pub(crate) fn evaluated(req: &DecisionRequest, verdict: GuardVerdict, now: u64) -> Self {
        Decision {
            request_id: req.id,
            tenant: req.tenant,
            device: req.device,
            action: req.proposed.name().to_string(),
            verdict,
            shed: None,
            submitted_at: req.submitted_at,
            decided_at: now,
            ctx: req.ctx,
        }
    }

    /// Ticks the request spent queued (admission to decision).
    pub fn queue_ticks(&self) -> u64 {
        self.decided_at.saturating_sub(self.submitted_at)
    }

    /// Stable verdict tag for ledgers and reports: `allow`, `deny`,
    /// `replace:<substitute>`, or `allow+obligations`.
    pub fn verdict_name(&self) -> String {
        match &self.verdict {
            GuardVerdict::Allow => "allow".to_string(),
            GuardVerdict::AllowWithObligations(_) => "allow+obligations".to_string(),
            GuardVerdict::Deny { .. } => "deny".to_string(),
            GuardVerdict::Replace { action, .. } => format!("replace:{}", action.name()),
        }
    }

    /// The guard's (or shed path's) reason string, empty for plain allows.
    pub fn reason(&self) -> &str {
        match &self.verdict {
            GuardVerdict::Deny { reason } | GuardVerdict::Replace { reason, .. } => reason,
            _ => "",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::StateSchema;

    fn request() -> DecisionRequest {
        let schema = StateSchema::builder().var("x", 0.0, 10.0).build();
        DecisionRequest {
            id: 7,
            tenant: TenantId(2),
            device: 11,
            state: schema.state(&[1.0]).unwrap(),
            proposed: Action::adjust("patrol", Default::default()),
            alternatives: Vec::new(),
            submitted_at: 5,
            deadline: Some(9),
            ctx: None,
        }
    }

    #[test]
    fn shed_decisions_always_deny() {
        let req = request();
        for reason in [
            ShedReason::Capacity,
            ShedReason::Quota,
            ShedReason::Deadline,
        ] {
            let d = Decision::shed(&req, reason, 6);
            assert!(!d.verdict.permits_execution(), "{reason:?} must deny");
            assert_eq!(d.shed, Some(reason));
            assert_eq!(d.verdict_name(), "deny");
            assert!(d.reason().starts_with("shed:"));
        }
    }

    #[test]
    fn deadline_expiry_is_strict() {
        let req = request();
        assert!(!req.expired(9));
        assert!(req.expired(10));
        let mut eternal = request();
        eternal.deadline = None;
        assert!(!eternal.expired(u64::MAX));
    }

    #[test]
    fn queue_ticks_measure_admission_to_decision() {
        let d = Decision::evaluated(&request(), GuardVerdict::Allow, 8);
        assert_eq!(d.queue_ticks(), 3);
        assert_eq!(d.verdict_name(), "allow");
        assert_eq!(d.reason(), "");
    }
}
