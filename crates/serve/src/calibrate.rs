//! Wall-clock calibration of the virtual [`CostModel`].
//!
//! The serving layer's saturation and shed curves are driven by a *virtual*
//! cost model so they stay bit-reproducible. That model is only honest if
//! its unit charges track real hardware: this module measures actual
//! per-batch guard-stack nanoseconds over the standard workload and fits
//!
//! ```text
//! batch_ns ≈ overhead_ns + hit_ns · hits + miss_ns · misses
//! ```
//!
//! by ordinary least squares (3×3 normal equations, solved exactly by
//! Cramer's rule), then rescales the fit into [`CostModel`] units with one
//! cache hit as the unit charge. The residual error is reported so a
//! calibration that fits badly (noisy machine, degenerate sample) is
//! visible instead of silently trusted.
//!
//! Measurements are wall-clock and therefore *not* deterministic — the
//! fitted constants are an input an operator reviews and pins in
//! configuration, not something experiments derive on the fly.

use std::time::Instant;

use apdm_guards::GuardContext;
use apdm_policy::Action;
use serde::{Deserialize, Serialize};

use crate::batcher::CostModel;
use crate::workload::{standard_stacks, WorkloadGen, WorkloadOracle, WorkloadSpec};

/// Batch sizes cycled through while sampling (mixed sizes keep the design
/// matrix well-conditioned: overhead separates from per-request cost).
const BATCH_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// One fitted calibration. All `*_ns` fields are wall-clock derived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Measured `(hits, misses, ns)` batches that entered the fit.
    pub samples: usize,
    /// Fitted fixed dispatch overhead per batch, in nanoseconds.
    pub overhead_ns: f64,
    /// Fitted cost of one verdict-cache hit, in nanoseconds.
    pub hit_ns: f64,
    /// Fitted cost of one full evaluation (cache miss), in nanoseconds.
    pub miss_ns: f64,
    /// Root-mean-square residual of the fit, in nanoseconds per batch.
    pub residual_rms_ns: f64,
    /// `residual_rms_ns` relative to the mean measured batch time.
    pub residual_rel: f64,
    /// The tick budget the capacity was derived from, in nanoseconds.
    pub tick_budget_ns: u64,
    /// The fitted model in [`CostModel`] units (one cache hit = 1 unit).
    pub fitted: CostModel,
}

/// Solve the 3×3 system `m · x = v` by Cramer's rule. `None` when the
/// matrix is (numerically) singular.
fn solve3(m: [[f64; 3]; 3], v: [f64; 3]) -> Option<[f64; 3]> {
    let det = |a: [[f64; 3]; 3]| -> f64 {
        a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1])
            - a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0])
            + a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0])
    };
    let d = det(m);
    if d.abs() < 1e-9 {
        return None;
    }
    let mut out = [0.0; 3];
    for (col, slot) in out.iter_mut().enumerate() {
        let mut mc = m;
        for row in 0..3 {
            mc[row][col] = v[row];
        }
        *slot = det(mc) / d;
    }
    Some(out)
}

/// Measure per-batch guard-stack nanoseconds over the standard workload
/// and fit the cost model. `rounds` cycles of `BATCH_SIZES` are sampled
/// twice each — the first pass is miss-heavy, the replay hit-heavy — so
/// the fit sees both regimes. `tick_budget_ns` is the wall-clock budget
/// one service tick is meant to absorb (it sets `capacity_per_tick`).
pub fn run_calibration(seed: u64, rounds: usize, tick_budget_ns: u64) -> CalibrationReport {
    let mut stack = standard_stacks(1, true).pop().expect("one stack");
    let mut gen = WorkloadGen::new(WorkloadSpec {
        seed,
        per_tick: 32,
        arrival_ticks: u64::MAX / 2,
        ..WorkloadSpec::default()
    });
    let oracle = WorkloadOracle;
    let mut samples: Vec<(f64, f64, f64)> = Vec::new();
    let mut now = 0u64;
    for _ in 0..rounds.max(1) {
        for &size in &BATCH_SIZES {
            now += 1;
            let batch: Vec<_> = gen.tick_requests(now).into_iter().take(size).collect();
            // Two passes over the identical batch: cold (miss-heavy) then
            // warm (hit-heavy). Both are timed and fitted.
            for _pass in 0..2 {
                let before = stack.cache_stats().expect("calibration stack is cached");
                let started = Instant::now();
                for req in &batch {
                    let subject = format!("d{}", req.device);
                    let alternatives: Vec<&Action> = req.alternatives.iter().collect();
                    let ctx = GuardContext {
                        tick: now,
                        subject: &subject,
                        state: &req.state,
                        alternatives: &alternatives,
                        world_token: 0,
                    };
                    let _ = stack.check(&ctx, &req.proposed, oracle);
                }
                let ns = started.elapsed().as_nanos() as f64;
                let after = stack.cache_stats().expect("calibration stack is cached");
                samples.push(((after.0 - before.0) as f64, (after.1 - before.1) as f64, ns));
            }
        }
    }
    // Normal equations for rows [1, hits, misses] against measured ns.
    let mut ata = [[0.0f64; 3]; 3];
    let mut aty = [0.0f64; 3];
    for &(h, m, y) in &samples {
        let row = [1.0, h, m];
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += row[i] * row[j];
            }
            aty[i] += row[i] * y;
        }
    }
    let (overhead_ns, hit_ns, miss_ns) = match solve3(ata, aty) {
        Some([o, h, m]) => (o, h, m),
        None => {
            // Degenerate sample (e.g. no hits ever): charge everything to
            // misses and split the conventional 2:1 miss:hit ratio.
            let total_ns: f64 = samples.iter().map(|s| s.2).sum();
            let total_misses: f64 = samples.iter().map(|s| s.1).sum::<f64>().max(1.0);
            let m = total_ns / total_misses;
            (0.0, m / 2.0, m)
        }
    };
    let mean_ns = samples.iter().map(|s| s.2).sum::<f64>() / samples.len().max(1) as f64;
    let residual_sq: f64 = samples
        .iter()
        .map(|&(h, m, y)| {
            let fit = overhead_ns + hit_ns * h + miss_ns * m;
            (y - fit) * (y - fit)
        })
        .sum();
    let residual_rms_ns = (residual_sq / samples.len().max(1) as f64).sqrt();

    // Rescale to CostModel units: one cache hit = 1 unit. Clamp the unit
    // away from zero so a noisy fit cannot produce a divide-by-zero or a
    // zero-capacity model.
    let unit_ns = if hit_ns > 1.0 {
        hit_ns
    } else {
        miss_ns.max(2.0) / 2.0
    };
    let to_units = |ns: f64| -> u64 { (ns / unit_ns).round().max(0.0) as u64 };
    let fitted = CostModel {
        capacity_per_tick: to_units(tick_budget_ns as f64).max(1),
        batch_overhead: to_units(overhead_ns),
        cost_miss: to_units(miss_ns).max(1),
        cost_hit: 1,
    };
    CalibrationReport {
        samples: samples.len(),
        overhead_ns,
        hit_ns,
        miss_ns,
        residual_rms_ns,
        residual_rel: if mean_ns > 0.0 {
            residual_rms_ns / mean_ns
        } else {
            0.0
        },
        tick_budget_ns,
        fitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve3_inverts_a_known_system() {
        // x = 2, y = -1, z = 3.
        let m = [[1.0, 1.0, 1.0], [2.0, 0.0, 1.0], [0.0, 1.0, 2.0]];
        let v = [4.0, 7.0, 5.0];
        let x = solve3(m, v).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9, "{x:?}");
        assert!((x[1] + 1.0).abs() < 1e-9, "{x:?}");
        assert!((x[2] - 3.0).abs() < 1e-9, "{x:?}");
        assert!(solve3([[0.0; 3]; 3], [1.0; 3]).is_none());
    }

    #[test]
    fn calibration_fits_a_sane_positive_model() {
        let report = run_calibration(42, 4, 1_000_000);
        assert!(report.samples >= BATCH_SIZES.len() * 2);
        // Wall-clock magnitudes vary wildly across machines; the shape
        // must not: a miss costs at least as much as a hit, everything is
        // finite, and the fitted model is usable.
        assert!(report.miss_ns.is_finite() && report.hit_ns.is_finite());
        assert!(report.fitted.cost_miss >= report.fitted.cost_hit);
        assert_eq!(report.fitted.cost_hit, 1);
        assert!(report.fitted.capacity_per_tick >= 1);
        assert!(report.residual_rms_ns.is_finite());
    }
}
