use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use apdm_policy::{Action, Cmp, Condition, EcaRule, Event};
use apdm_statespace::{StateDelta, VarId};

/// A production for the condition part of a generated rule.
///
/// The grammar is deliberately a *restricted* generative space — a finite
/// event × condition × action product — rather than an unrestricted term
/// grammar: Section IV's generator grammars direct "what kinds of policies
/// [the device] should generate", and bounding the space is itself a safety
/// property (an unbounded grammar is how a device invents behaviours nobody
/// anticipated; see experiment E7's "mistakes in learning" pathway).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConditionForm {
    /// No condition: fire on every matching event.
    Always,
    /// `state[var] >= t` for each threshold choice `t`.
    VarAtLeast(VarId, Vec<f64>),
    /// `state[var] <= t` for each threshold choice `t`.
    VarAtMost(VarId, Vec<f64>),
    /// `event[key] == value` for each value choice.
    EventEquals(String, Vec<String>),
}

impl ConditionForm {
    /// Number of concrete conditions this form expands to.
    pub fn arity(&self) -> usize {
        match self {
            ConditionForm::Always => 1,
            ConditionForm::VarAtLeast(_, ts) | ConditionForm::VarAtMost(_, ts) => ts.len(),
            ConditionForm::EventEquals(_, vs) => vs.len(),
        }
    }

    /// The `i`-th concrete condition (i < arity).
    fn expand(&self, i: usize) -> Condition {
        match self {
            ConditionForm::Always => Condition::True,
            ConditionForm::VarAtLeast(var, ts) => Condition::StateCmp {
                var: *var,
                op: Cmp::Ge,
                value: ts[i],
            },
            ConditionForm::VarAtMost(var, ts) => Condition::StateCmp {
                var: *var,
                op: Cmp::Le,
                value: ts[i],
            },
            ConditionForm::EventEquals(key, vs) => {
                Condition::event_text(key.clone(), vs[i].clone())
            }
        }
    }
}

/// A production for the action part of a generated rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActionForm {
    /// Invoke `actuator`, moving `var` by each step choice.
    Invoke {
        /// Actuator name.
        actuator: String,
        /// Variable the delta moves.
        var: VarId,
        /// Step-size choices.
        steps: Vec<f64>,
        /// Does the action touch the physical world?
        physical: bool,
    },
    /// Emit a named signal (delta-free action, e.g. "radio-report").
    Signal(String),
}

impl ActionForm {
    /// Number of concrete actions this form expands to.
    pub fn arity(&self) -> usize {
        match self {
            ActionForm::Invoke { steps, .. } => steps.len(),
            ActionForm::Signal(_) => 1,
        }
    }

    fn expand(&self, i: usize) -> Action {
        match self {
            ActionForm::Invoke {
                actuator,
                var,
                steps,
                physical,
            } => {
                let a = Action::adjust(actuator.clone(), StateDelta::single(*var, steps[i]));
                if *physical {
                    a.physical()
                } else {
                    a
                }
            }
            ActionForm::Signal(name) => Action::adjust(name.clone(), StateDelta::empty()),
        }
    }
}

/// A policy generator grammar: the cross product of event patterns,
/// condition forms and action forms.
///
/// # Example
///
/// ```
/// use apdm_genpolicy::{ActionForm, ConditionForm, PolicyGrammar};
///
/// let grammar = PolicyGrammar::new()
///     .event("overheat")
///     .condition(ConditionForm::VarAtLeast(0.into(), vec![70.0, 80.0, 90.0]))
///     .action(ActionForm::Invoke {
///         actuator: "vent".into(),
///         var: 0.into(),
///         steps: vec![-5.0, -10.0],
///         physical: false,
///     });
/// assert_eq!(grammar.space_size(), 6);
/// let all = grammar.enumerate();
/// assert_eq!(all.len(), 6);
/// assert!(all.iter().all(|r| r.is_generated()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyGrammar {
    events: Vec<String>,
    conditions: Vec<ConditionForm>,
    actions: Vec<ActionForm>,
}

impl PolicyGrammar {
    /// An empty grammar (generates nothing).
    pub fn new() -> Self {
        PolicyGrammar::default()
    }

    /// Add an event pattern (builder style).
    pub fn event(mut self, name: impl Into<String>) -> Self {
        self.events.push(name.into());
        self
    }

    /// Add a condition form (builder style).
    pub fn condition(mut self, form: ConditionForm) -> Self {
        self.conditions.push(form);
        self
    }

    /// Add an action form (builder style).
    pub fn action(mut self, form: ActionForm) -> Self {
        self.actions.push(form);
        self
    }

    /// Total number of concrete rules the grammar can produce.
    pub fn space_size(&self) -> usize {
        let conds: usize = self.conditions.iter().map(ConditionForm::arity).sum();
        let acts: usize = self.actions.iter().map(ActionForm::arity).sum();
        self.events.len() * conds * acts
    }

    /// The `idx`-th rule of the enumeration (None past the end). The mapping
    /// is stable: identical grammars produce identical enumerations.
    pub fn derive(&self, idx: usize) -> Option<EcaRule> {
        let conds: Vec<Condition> = self
            .conditions
            .iter()
            .flat_map(|f| (0..f.arity()).map(move |i| f.expand(i)))
            .collect();
        let acts: Vec<Action> = self
            .actions
            .iter()
            .flat_map(|f| (0..f.arity()).map(move |i| f.expand(i)))
            .collect();
        if self.events.is_empty() || conds.is_empty() || acts.is_empty() {
            return None;
        }
        let per_event = conds.len() * acts.len();
        let event_idx = idx / per_event;
        if event_idx >= self.events.len() {
            return None;
        }
        let rem = idx % per_event;
        let cond_idx = rem / acts.len();
        let act_idx = rem % acts.len();
        let event = &self.events[event_idx];
        Some(
            EcaRule::new(
                format!("gen-{event}-{idx}"),
                Event::pattern(event.clone()),
                conds[cond_idx].clone(),
                acts[act_idx].clone(),
            )
            .generated(),
        )
    }

    /// Every rule in the grammar's space, in enumeration order.
    pub fn enumerate(&self) -> Vec<EcaRule> {
        (0..self.space_size())
            .filter_map(|i| self.derive(i))
            .collect()
    }

    /// Sample `n` rules (with replacement) with a seeded RNG — how a device
    /// explores a large generative space it cannot enumerate.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<EcaRule> {
        let size = self.space_size();
        if size == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .filter_map(|_| self.derive(rng.random_range(0..size)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grammar() -> PolicyGrammar {
        PolicyGrammar::new()
            .event("overheat")
            .event("smoke")
            .condition(ConditionForm::Always)
            .condition(ConditionForm::VarAtLeast(VarId(0), vec![70.0, 90.0]))
            .action(ActionForm::Invoke {
                actuator: "vent".into(),
                var: VarId(0),
                steps: vec![-5.0, -10.0],
                physical: false,
            })
            .action(ActionForm::Signal("radio-report".into()))
    }

    #[test]
    fn space_size_is_cross_product() {
        // 2 events * (1 + 2) conditions * (2 + 1) actions = 18.
        assert_eq!(grammar().space_size(), 18);
    }

    #[test]
    fn enumerate_yields_distinct_rules() {
        let rules = grammar().enumerate();
        assert_eq!(rules.len(), 18);
        for i in 0..rules.len() {
            for j in (i + 1)..rules.len() {
                assert!(
                    !rules[i].equivalent(&rules[j]),
                    "rules {i} and {j} are duplicates"
                );
            }
        }
    }

    #[test]
    fn derive_is_stable_and_bounded() {
        let g = grammar();
        assert_eq!(g.derive(3), g.derive(3));
        assert!(g.derive(18).is_none());
        assert!(g.derive(usize::MAX).is_none());
    }

    #[test]
    fn empty_grammar_generates_nothing() {
        let g = PolicyGrammar::new();
        assert_eq!(g.space_size(), 0);
        assert!(g.enumerate().is_empty());
        assert!(g.derive(0).is_none());
        assert!(g.sample(5, 1).is_empty());
    }

    #[test]
    fn sample_is_seed_deterministic() {
        let g = grammar();
        let a: Vec<String> = g
            .sample(10, 42)
            .iter()
            .map(|r| r.name().to_string())
            .collect();
        let b: Vec<String> = g
            .sample(10, 42)
            .iter()
            .map(|r| r.name().to_string())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn all_generated_rules_carry_provenance() {
        assert!(grammar().enumerate().iter().all(|r| r.is_generated()));
    }

    #[test]
    fn signal_actions_have_empty_deltas() {
        let g = PolicyGrammar::new()
            .event("e")
            .condition(ConditionForm::Always)
            .action(ActionForm::Signal("ping".into()));
        let rules = g.enumerate();
        assert_eq!(rules.len(), 1);
        assert!(rules[0].action().delta().is_empty());
        assert_eq!(rules[0].action().name(), "ping");
    }

    #[test]
    fn event_equals_condition_form() {
        let g = PolicyGrammar::new()
            .event("sighting")
            .condition(ConditionForm::EventEquals(
                "object".into(),
                vec!["convoy".into(), "smoke".into()],
            ))
            .action(ActionForm::Signal("report".into()));
        assert_eq!(g.space_size(), 2);
        let rules = g.enumerate();
        let ev = Event::named("sighting").with_text("object", "convoy");
        let schema = apdm_statespace::StateSchema::builder()
            .var("x", 0.0, 1.0)
            .build();
        let st = schema.state(&[0.0]).unwrap();
        assert!(rules[0].condition().eval(&ev, &st));
        assert!(!rules[1].condition().eval(&ev, &st));
    }
}
