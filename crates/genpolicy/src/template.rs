use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use apdm_policy::{Action, Condition, EcaRule, Event};
use apdm_statespace::StateDelta;

/// Bindings available when instantiating a [`PolicyTemplate`]: the discovered
/// peer's identity and any numeric parameters.
///
/// String fields substitute into `{peer}`, `{org}`, `{interaction}` and
/// `{observer}` placeholders; numeric parameters substitute into condition
/// thresholds registered by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TemplateContext {
    /// Kind name of the observing (generating) device.
    pub observer: String,
    /// Kind name of the discovered peer.
    pub peer: String,
    /// Organization of the discovered peer.
    pub org: String,
    /// Interaction this policy implements.
    pub interaction: String,
    /// Named numeric parameters (thresholds, step sizes).
    pub params: BTreeMap<String, f64>,
}

impl TemplateContext {
    /// Context for `observer` discovering `peer`.
    pub fn new(
        observer: impl Into<String>,
        peer: impl Into<String>,
        org: impl Into<String>,
        interaction: impl Into<String>,
    ) -> Self {
        TemplateContext {
            observer: observer.into(),
            peer: peer.into(),
            org: org.into(),
            interaction: interaction.into(),
            params: BTreeMap::new(),
        }
    }

    /// Set a numeric parameter (builder style).
    pub fn with_param(mut self, key: impl Into<String>, value: f64) -> Self {
        self.params.insert(key.into(), value);
        self
    }

    fn substitute(&self, text: &str) -> String {
        text.replace("{observer}", &self.observer)
            .replace("{peer}", &self.peer)
            .replace("{org}", &self.org)
            .replace("{interaction}", &self.interaction)
    }
}

/// A parameterized ECA rule: the "policy template" of Section IV.
///
/// Placeholders in the rule name, event pattern, action name and action
/// parameters are substituted from a [`TemplateContext`]; the condition is a
/// fixed shape whose numeric thresholds may be overridden by named context
/// parameters (registered with [`with_threshold_param`]).
///
/// [`with_threshold_param`]: PolicyTemplate::with_threshold_param
///
/// # Example
///
/// ```
/// use apdm_genpolicy::{PolicyTemplate, TemplateContext};
/// use apdm_policy::{Action, Condition, Event};
///
/// let template = PolicyTemplate::new(
///     "dispatch-{peer}",
///     "smoke-detected",
///     Condition::True,
///     Action::adjust("radio-dispatch-{peer}", Default::default()),
/// );
/// let ctx = TemplateContext::new("drone", "chem-drone", "us", "dispatch");
/// let rule = template.instantiate(&ctx);
/// assert_eq!(rule.name(), "dispatch-chem-drone");
/// assert_eq!(rule.action().name(), "radio-dispatch-chem-drone");
/// assert!(rule.is_generated());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTemplate {
    name: String,
    event: String,
    condition: Condition,
    action_name: String,
    action_delta: StateDelta,
    action_physical: bool,
    priority: i32,
    /// `(param name, index of the StateCmp atom to override, default)`.
    threshold_params: Vec<(String, usize)>,
}

impl PolicyTemplate {
    /// A template from a (possibly placeholder-bearing) name, event pattern,
    /// condition shape and action.
    pub fn new(
        name: impl Into<String>,
        event: impl Into<String>,
        condition: Condition,
        action: Action,
    ) -> Self {
        PolicyTemplate {
            name: name.into(),
            event: event.into(),
            condition,
            action_name: action.name().to_string(),
            action_delta: action.delta().clone(),
            action_physical: action.is_physical(),
            priority: 0,
            threshold_params: Vec::new(),
        }
    }

    /// Set the generated rule's priority (builder style).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Declare that context parameter `param` overrides the value of the
    /// `atom_index`-th `StateCmp` atom (in depth-first order) of the
    /// condition (builder style).
    pub fn with_threshold_param(mut self, param: impl Into<String>, atom_index: usize) -> Self {
        self.threshold_params.push((param.into(), atom_index));
        self
    }

    /// The template's (uninstantiated) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instantiate into a concrete, machine-provenance rule.
    pub fn instantiate(&self, ctx: &TemplateContext) -> EcaRule {
        let mut condition = self.condition.clone();
        for (param, atom_index) in &self.threshold_params {
            if let Some(value) = ctx.params.get(param) {
                override_nth_state_cmp(&mut condition, *atom_index, *value);
            }
        }
        let mut action =
            Action::adjust(ctx.substitute(&self.action_name), self.action_delta.clone());
        if self.action_physical {
            action = action.physical();
        }
        EcaRule::new(
            ctx.substitute(&self.name),
            Event::pattern(ctx.substitute(&self.event)),
            condition,
            action,
        )
        .with_priority(self.priority)
        .generated()
    }
}

/// Replace the value of the `n`-th `StateCmp` atom (depth-first); returns
/// how many atoms were seen so far (internal helper).
fn override_nth_state_cmp(cond: &mut Condition, n: usize, value: f64) {
    fn walk(cond: &mut Condition, seen: &mut usize, n: usize, value: f64) {
        match cond {
            Condition::StateCmp { value: v, .. } => {
                if *seen == n {
                    *v = value;
                }
                *seen += 1;
            }
            Condition::Not(inner) => walk(inner, seen, n, value),
            Condition::All(cs) | Condition::Any(cs) => {
                for c in cs {
                    walk(c, seen, n, value);
                }
            }
            _ => {}
        }
    }
    let mut seen = 0;
    walk(cond, &mut seen, n, value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::{StateSchema, VarId};

    #[test]
    fn placeholders_substitute_everywhere() {
        let t = PolicyTemplate::new(
            "{interaction}-{peer}-for-{observer}",
            "sighting-{peer}",
            Condition::True,
            Action::adjust("call-{peer}@{org}", Default::default()),
        );
        let ctx = TemplateContext::new("drone", "mule", "uk", "dispatch");
        let rule = t.instantiate(&ctx);
        assert_eq!(rule.name(), "dispatch-mule-for-drone");
        assert_eq!(rule.event().name(), "sighting-mule");
        assert_eq!(rule.action().name(), "call-mule@uk");
    }

    #[test]
    fn threshold_params_override_condition_atoms() {
        let cond =
            Condition::state_at_least(VarId(0), 0.5).and(Condition::state_at_most(VarId(1), 0.9));
        let t = PolicyTemplate::new("r", "e", cond, Action::noop())
            .with_threshold_param("min_level", 0)
            .with_threshold_param("max_level", 1);
        let ctx = TemplateContext::new("a", "b", "o", "i")
            .with_param("min_level", 0.7)
            .with_param("max_level", 0.8);
        let rule = t.instantiate(&ctx);
        let schema = StateSchema::builder()
            .var("x", 0.0, 1.0)
            .var("y", 0.0, 1.0)
            .build();
        let ev = Event::named("e");
        assert!(rule
            .condition()
            .eval(&ev, &schema.state(&[0.75, 0.5]).unwrap()));
        assert!(!rule
            .condition()
            .eval(&ev, &schema.state(&[0.6, 0.5]).unwrap()));
        assert!(!rule
            .condition()
            .eval(&ev, &schema.state(&[0.75, 0.85]).unwrap()));
    }

    #[test]
    fn missing_params_keep_defaults() {
        let t = PolicyTemplate::new(
            "r",
            "e",
            Condition::state_at_least(VarId(0), 0.5),
            Action::noop(),
        )
        .with_threshold_param("missing", 0);
        let rule = t.instantiate(&TemplateContext::new("a", "b", "o", "i"));
        let schema = StateSchema::builder().var("x", 0.0, 1.0).build();
        assert!(rule
            .condition()
            .eval(&Event::named("e"), &schema.state(&[0.6]).unwrap()));
    }

    #[test]
    fn instantiated_rules_carry_machine_provenance_and_priority() {
        let t = PolicyTemplate::new("r", "e", Condition::True, Action::noop()).with_priority(9);
        let rule = t.instantiate(&TemplateContext::new("a", "b", "o", "i"));
        assert!(rule.is_generated());
        assert_eq!(rule.priority(), 9);
    }

    #[test]
    fn physical_actions_stay_physical() {
        let t = PolicyTemplate::new(
            "r",
            "e",
            Condition::True,
            Action::adjust("dig", Default::default()).physical(),
        );
        let rule = t.instantiate(&TemplateContext::new("a", "b", "o", "i"));
        assert!(rule.action().is_physical());
    }
}
