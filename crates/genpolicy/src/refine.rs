use apdm_policy::{Cmp, Condition, EcaRule};
use apdm_statespace::VarId;

/// Feedback about one firing (or non-firing) of a generated rule.
///
/// Section IV: the generative system will "use machine learning techniques to
/// improve its ability to generate effective management policies" — here a
/// deliberately simple threshold hill-climber, because what the reproduction
/// must capture is the *loop* (generate → observe → adjust), which is also
/// the loop through which learning mistakes enter the system (Section IV's
/// "Mistakes in Learning" pathway).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The rule fired and the action was appropriate.
    TruePositive,
    /// The rule fired but should not have (threshold too loose).
    FalsePositive,
    /// The rule did not fire but should have (threshold too tight).
    FalseNegative,
    /// The rule correctly stayed quiet.
    TrueNegative,
}

/// Online refinement of the numeric thresholds inside a rule's condition.
///
/// For `>=` atoms: false positives raise the threshold, false negatives lower
/// it. For `<=` atoms the directions flip. The step size decays with each
/// adjustment so thresholds converge instead of oscillating.
///
/// # Example
///
/// ```
/// use apdm_genpolicy::{Outcome, ThresholdRefiner};
/// use apdm_policy::{Action, Cmp, Condition, EcaRule, Event};
///
/// let rule = EcaRule::new(
///     "vent",
///     Event::pattern("tick"),
///     Condition::state_at_least(0.into(), 50.0),
///     Action::noop(),
/// );
/// let mut refiner = ThresholdRefiner::new(rule, 8.0);
/// refiner.feedback(Outcome::FalsePositive); // fired too eagerly
/// let t = refiner.threshold(0).unwrap();
/// assert!(t > 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdRefiner {
    rule: EcaRule,
    step: f64,
    decay: f64,
    adjustments: u32,
}

impl ThresholdRefiner {
    /// Wrap a rule for refinement with an initial adjustment step.
    ///
    /// # Panics
    ///
    /// Panics when `step` is not finite and positive.
    pub fn new(rule: EcaRule, step: f64) -> Self {
        assert!(
            step.is_finite() && step > 0.0,
            "step must be finite and positive"
        );
        ThresholdRefiner {
            rule,
            step,
            decay: 0.9,
            adjustments: 0,
        }
    }

    /// The current (refined) rule.
    pub fn rule(&self) -> &EcaRule {
        &self.rule
    }

    /// Number of adjustments applied so far.
    pub fn adjustments(&self) -> u32 {
        self.adjustments
    }

    /// The current value of the `n`-th `StateCmp` atom, if any.
    pub fn threshold(&self, n: usize) -> Option<f64> {
        fn walk(cond: &Condition, seen: &mut usize, n: usize) -> Option<f64> {
            match cond {
                Condition::StateCmp { value, .. } => {
                    let hit = *seen == n;
                    *seen += 1;
                    if hit {
                        Some(*value)
                    } else {
                        None
                    }
                }
                Condition::Not(inner) => walk(inner, seen, n),
                Condition::All(cs) | Condition::Any(cs) => cs.iter().find_map(|c| walk(c, seen, n)),
                _ => None,
            }
        }
        let mut seen = 0;
        walk(self.rule.condition(), &mut seen, n)
    }

    /// Apply one outcome: every `StateCmp` atom is nudged in the direction
    /// that would have avoided the error. Correct outcomes shrink the step
    /// (confidence) without moving thresholds.
    pub fn feedback(&mut self, outcome: Outcome) {
        let direction = match outcome {
            Outcome::FalsePositive => 1.0,  // tighten: fire less
            Outcome::FalseNegative => -1.0, // loosen: fire more
            Outcome::TruePositive | Outcome::TrueNegative => {
                self.step *= self.decay;
                return;
            }
        };
        let step = self.step;
        let mut condition = self.rule.condition().clone();
        adjust_atoms(&mut condition, direction, step);
        self.rule = EcaRule::new(
            self.rule.name().to_string(),
            self.rule.event().clone(),
            condition,
            self.rule.action().clone(),
        )
        .with_priority(self.rule.priority())
        .generated();
        self.step *= self.decay;
        self.adjustments += 1;
    }

    /// Simulate a *poisoned* feedback channel: an adversary flips the sense
    /// of every outcome (Section IV, "Adversarial Machine Learning" /
    /// "Malicious Actors"). Returns the outcome actually applied.
    pub fn feedback_poisoned(&mut self, outcome: Outcome) -> Outcome {
        let flipped = match outcome {
            Outcome::FalsePositive => Outcome::FalseNegative,
            Outcome::FalseNegative => Outcome::FalsePositive,
            Outcome::TruePositive => Outcome::TrueNegative,
            Outcome::TrueNegative => Outcome::TruePositive,
        };
        self.feedback(flipped);
        flipped
    }
}

/// Nudge every `StateCmp` atom: `>=`/`>` atoms move by `direction * step`,
/// `<=`/`<` atoms by the opposite (both mean "tighten" for positive
/// direction).
fn adjust_atoms(cond: &mut Condition, direction: f64, step: f64) {
    match cond {
        Condition::StateCmp { op, value, .. } => {
            let sign = match op {
                Cmp::Ge | Cmp::Gt => 1.0,
                Cmp::Le | Cmp::Lt => -1.0,
                Cmp::Eq | Cmp::Ne => 0.0,
            };
            *value += sign * direction * step;
        }
        Condition::Not(inner) => adjust_atoms(inner, direction, step),
        Condition::All(cs) | Condition::Any(cs) => {
            for c in cs {
                adjust_atoms(c, direction, step);
            }
        }
        _ => {}
    }
}

/// Convenience: the thresholds of all `StateCmp` atoms over `var` in a rule.
pub fn thresholds_for(rule: &EcaRule, var: VarId) -> Vec<f64> {
    fn walk(cond: &Condition, var: VarId, out: &mut Vec<f64>) {
        match cond {
            Condition::StateCmp { var: v, value, .. } if *v == var => out.push(*value),
            Condition::Not(inner) => walk(inner, var, out),
            Condition::All(cs) | Condition::Any(cs) => {
                for c in cs {
                    walk(c, var, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(rule.condition(), var, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_policy::{Action, Event};

    fn rule_ge(threshold: f64) -> EcaRule {
        EcaRule::new(
            "r",
            Event::pattern("tick"),
            Condition::state_at_least(VarId(0), threshold),
            Action::noop(),
        )
    }

    #[test]
    fn false_positive_tightens_ge_threshold() {
        let mut r = ThresholdRefiner::new(rule_ge(50.0), 10.0);
        r.feedback(Outcome::FalsePositive);
        assert!((r.threshold(0).unwrap() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn false_negative_loosens_ge_threshold() {
        let mut r = ThresholdRefiner::new(rule_ge(50.0), 10.0);
        r.feedback(Outcome::FalseNegative);
        assert!((r.threshold(0).unwrap() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn le_atoms_move_the_other_way() {
        let rule = EcaRule::new(
            "r",
            Event::pattern("tick"),
            Condition::state_at_most(VarId(0), 50.0),
            Action::noop(),
        );
        let mut r = ThresholdRefiner::new(rule, 10.0);
        r.feedback(Outcome::FalsePositive); // tighten a <= means lowering it
        assert!((r.threshold(0).unwrap() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn step_decays_and_converges() {
        let mut r = ThresholdRefiner::new(rule_ge(50.0), 10.0);
        for _ in 0..200 {
            r.feedback(Outcome::FalsePositive);
        }
        let t1 = r.threshold(0).unwrap();
        r.feedback(Outcome::FalsePositive);
        let t2 = r.threshold(0).unwrap();
        assert!((t2 - t1).abs() < 1e-6, "steps should have decayed to ~0");
        // Geometric series bound: 50 + 10/(1-0.9) = 150.
        assert!(t1 <= 150.0 + 1e-9);
    }

    #[test]
    fn correct_outcomes_do_not_move_thresholds() {
        let mut r = ThresholdRefiner::new(rule_ge(50.0), 10.0);
        r.feedback(Outcome::TruePositive);
        r.feedback(Outcome::TrueNegative);
        assert_eq!(r.threshold(0), Some(50.0));
        assert_eq!(r.adjustments(), 0);
    }

    #[test]
    fn alternating_feedback_oscillates_but_dampens() {
        let mut r = ThresholdRefiner::new(rule_ge(50.0), 10.0);
        r.feedback(Outcome::FalsePositive);
        r.feedback(Outcome::FalseNegative);
        // 50 + 10 - 9 = 51.
        assert!((r.threshold(0).unwrap() - 51.0).abs() < 1e-12);
        assert_eq!(r.adjustments(), 2);
    }

    #[test]
    fn poisoned_feedback_moves_the_wrong_way() {
        let mut clean = ThresholdRefiner::new(rule_ge(50.0), 10.0);
        let mut poisoned = ThresholdRefiner::new(rule_ge(50.0), 10.0);
        clean.feedback(Outcome::FalsePositive);
        poisoned.feedback_poisoned(Outcome::FalsePositive);
        assert!(clean.threshold(0).unwrap() > 50.0);
        assert!(
            poisoned.threshold(0).unwrap() < 50.0,
            "poison inverts learning"
        );
    }

    #[test]
    fn refined_rules_keep_provenance_and_priority() {
        let mut r = ThresholdRefiner::new(rule_ge(50.0).with_priority(5), 1.0);
        r.feedback(Outcome::FalsePositive);
        assert!(r.rule().is_generated());
        assert_eq!(r.rule().priority(), 5);
    }

    #[test]
    fn thresholds_for_filters_by_var() {
        let rule = EcaRule::new(
            "r",
            Event::pattern("t"),
            Condition::state_at_least(VarId(0), 1.0)
                .and(Condition::state_at_most(VarId(1), 2.0))
                .and(Condition::state_at_least(VarId(0), 3.0)),
            Action::noop(),
        );
        assert_eq!(thresholds_for(&rule, VarId(0)), vec![1.0, 3.0]);
        assert_eq!(thresholds_for(&rule, VarId(1)), vec![2.0]);
        assert!(thresholds_for(&rule, VarId(2)).is_empty());
    }

    #[test]
    #[should_panic(expected = "step")]
    fn non_positive_step_rejected() {
        let _ = ThresholdRefiner::new(rule_ge(1.0), 0.0);
    }
}
