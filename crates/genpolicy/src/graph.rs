use serde::{Deserialize, Serialize};
use std::fmt;

use apdm_device::Attributes;

/// A device kind the human manager expects to appear in the environment,
/// with the attributes that identify it.
///
/// Section IV: the interaction graph tells each device "the other types of
/// devices that would be encountered and their attributes".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindSpec {
    kind: String,
    required: Vec<(String, String)>,
}

impl KindSpec {
    /// A kind with no attribute requirements.
    pub fn new(kind: impl Into<String>) -> Self {
        KindSpec {
            kind: kind.into(),
            required: Vec::new(),
        }
    }

    /// Require an attribute (builder style).
    pub fn requires(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.required.push((key.into(), value.into()));
        self
    }

    /// The kind name.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The required attributes.
    pub fn required(&self) -> &[(String, String)] {
        &self.required
    }

    /// Does a discovered device with this kind name and attributes match?
    pub fn matches(&self, kind: &str, attrs: &Attributes) -> bool {
        self.kind == kind
            && self
                .required
                .iter()
                .all(|(k, v)| attrs.get(k) == Some(v.as_str()))
    }
}

impl fmt::Display for KindSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if !self.required.is_empty() {
            write!(f, " (requires {} attrs)", self.required.len())?;
        }
        Ok(())
    }
}

/// An expected interaction between two device kinds, e.g. a drone may
/// `dispatch` a mule, or `report-to` a command post.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionEdge {
    /// Kind that initiates the interaction.
    pub from: String,
    /// Kind on the receiving end.
    pub to: String,
    /// Interaction name ("dispatch", "report-to", "repair", ...).
    pub interaction: String,
}

/// The interaction graph: expected kinds and the interactions among them.
///
/// # Example
///
/// ```
/// use apdm_genpolicy::{InteractionGraph, KindSpec};
/// use apdm_device::Attributes;
///
/// let mut graph = InteractionGraph::new();
/// graph.add_kind(KindSpec::new("drone"));
/// graph.add_kind(KindSpec::new("chem-drone").requires("sensor", "chemical"));
/// graph.add_interaction("drone", "chem-drone", "dispatch");
///
/// let mut attrs = Attributes::new();
/// attrs.set("sensor", "chemical");
/// assert!(graph.recognize("chem-drone", &attrs).is_some());
/// assert_eq!(graph.interactions_from("drone").len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InteractionGraph {
    kinds: Vec<KindSpec>,
    edges: Vec<InteractionEdge>,
}

impl InteractionGraph {
    /// An empty graph.
    pub fn new() -> Self {
        InteractionGraph::default()
    }

    /// Declare an expected kind.
    pub fn add_kind(&mut self, spec: KindSpec) {
        self.kinds.push(spec);
    }

    /// Declare an expected interaction between two kinds.
    ///
    /// # Panics
    ///
    /// Panics when either kind has not been declared — the graph is the
    /// human's complete statement of expectations, so dangling edges are
    /// programming errors.
    pub fn add_interaction(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        interaction: impl Into<String>,
    ) {
        let (from, to) = (from.into(), to.into());
        assert!(self.has_kind(&from), "unknown kind `{from}`");
        assert!(self.has_kind(&to), "unknown kind `{to}`");
        self.edges.push(InteractionEdge {
            from,
            to,
            interaction: interaction.into(),
        });
    }

    /// Is a kind declared?
    pub fn has_kind(&self, kind: &str) -> bool {
        self.kinds.iter().any(|k| k.kind() == kind)
    }

    /// Declared kinds in order.
    pub fn kinds(&self) -> &[KindSpec] {
        &self.kinds
    }

    /// Declared interactions in order.
    pub fn edges(&self) -> &[InteractionEdge] {
        &self.edges
    }

    /// Match a discovered device against the expected kinds; returns the
    /// first matching spec. Devices that match no spec are *unexpected* —
    /// exactly the situation where Section IV warns the device might "augment
    /// the information provided by the human manager on their own".
    pub fn recognize(&self, kind: &str, attrs: &Attributes) -> Option<&KindSpec> {
        self.kinds.iter().find(|k| k.matches(kind, attrs))
    }

    /// Interactions a device of `kind` may initiate.
    pub fn interactions_from(&self, kind: &str) -> Vec<&InteractionEdge> {
        self.edges.iter().filter(|e| e.from == kind).collect()
    }

    /// Interactions a device of `kind` may receive.
    pub fn interactions_to(&self, kind: &str) -> Vec<&InteractionEdge> {
        self.edges.iter().filter(|e| e.to == kind).collect()
    }

    /// The interactions `observer_kind` should set up with a newly
    /// discovered `peer_kind` (both directions are relevant to policy
    /// generation: what I may ask of them, what they may ask of me).
    pub fn relevant_interactions(
        &self,
        observer_kind: &str,
        peer_kind: &str,
    ) -> Vec<&InteractionEdge> {
        self.edges
            .iter()
            .filter(|e| {
                (e.from == observer_kind && e.to == peer_kind)
                    || (e.from == peer_kind && e.to == observer_kind)
            })
            .collect()
    }
}

impl fmt::Display for InteractionGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interaction graph ({} kinds, {} interactions)",
            self.kinds.len(),
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> InteractionGraph {
        let mut g = InteractionGraph::new();
        g.add_kind(KindSpec::new("drone"));
        g.add_kind(KindSpec::new("chem-drone").requires("sensor", "chemical"));
        g.add_kind(KindSpec::new("mule"));
        g.add_interaction("drone", "chem-drone", "dispatch");
        g.add_interaction("drone", "mule", "dispatch");
        g.add_interaction("mule", "drone", "report-to");
        g
    }

    #[test]
    fn recognize_by_kind_and_attrs() {
        let g = graph();
        let mut attrs = Attributes::new();
        assert!(g.recognize("drone", &attrs).is_some());
        // chem-drone requires the sensor attribute.
        assert!(g.recognize("chem-drone", &attrs).is_none());
        attrs.set("sensor", "chemical");
        assert!(g.recognize("chem-drone", &attrs).is_some());
        // Unexpected kind.
        assert!(g.recognize("submarine", &attrs).is_none());
    }

    #[test]
    fn interactions_from_and_to() {
        let g = graph();
        assert_eq!(g.interactions_from("drone").len(), 2);
        assert_eq!(g.interactions_to("drone").len(), 1);
        assert!(g.interactions_from("chem-drone").is_empty());
    }

    #[test]
    fn relevant_interactions_are_bidirectional() {
        let g = graph();
        let rel = g.relevant_interactions("drone", "mule");
        assert_eq!(rel.len(), 2);
        let names: Vec<&str> = rel.iter().map(|e| e.interaction.as_str()).collect();
        assert!(names.contains(&"dispatch"));
        assert!(names.contains(&"report-to"));
    }

    #[test]
    #[should_panic(expected = "unknown kind")]
    fn dangling_edge_rejected() {
        let mut g = InteractionGraph::new();
        g.add_kind(KindSpec::new("drone"));
        g.add_interaction("drone", "ghost", "dispatch");
    }

    #[test]
    fn extra_attrs_do_not_block_matching() {
        let spec = KindSpec::new("drone").requires("payload", "none");
        let mut attrs = Attributes::new();
        attrs.set("payload", "none");
        attrs.set("color", "grey");
        assert!(spec.matches("drone", &attrs));
        assert!(!spec.matches("mule", &attrs));
    }
}
