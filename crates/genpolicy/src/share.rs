use std::fmt;

use apdm_policy::PolicySet;

/// The acceptance rule a device applies to policies offered by peers.
///
/// Section IV: devices "share the information and policies they generate with
/// other devices" — which is also how "a reprogrammed device may turn
/// malevolent and convert other devices into following the same behaviors"
/// (Section IV, Attacks). The exchange rule is the seam where that spread is
/// throttled.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeRule {
    /// Organizations whose policies may be accepted.
    accept_orgs: Vec<String>,
    /// Require a human acknowledgement before installing (separation of
    /// privilege, Section VI.D).
    require_human_ack: bool,
    /// Refuse sets containing physically acting rules from other orgs.
    block_foreign_physical: bool,
}

impl ExchangeRule {
    /// Accept from the listed organizations, machine-automatically.
    pub fn accept_from<I, S>(orgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ExchangeRule {
            accept_orgs: orgs.into_iter().map(Into::into).collect(),
            require_human_ack: false,
            block_foreign_physical: false,
        }
    }

    /// Require a human acknowledgement before any installation (builder
    /// style).
    pub fn with_human_ack(mut self) -> Self {
        self.require_human_ack = true;
        self
    }

    /// Refuse physically acting rules from organizations other than `own`
    /// (builder style; pass the device's own org at evaluation time).
    pub fn blocking_foreign_physical(mut self) -> Self {
        self.block_foreign_physical = true;
        self
    }

    /// Is an org on the accept list?
    pub fn accepts_org(&self, org: &str) -> bool {
        self.accept_orgs.iter().any(|o| o == org)
    }

    /// Does this rule require human acknowledgement?
    pub fn requires_human_ack(&self) -> bool {
        self.require_human_ack
    }
}

/// The verdict on an offered policy set.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeDecision {
    /// Installed; contains how many rules were actually added after dedup.
    Accepted {
        /// Rules added (equivalents were skipped).
        added: usize,
    },
    /// Waiting for a human acknowledgement; nothing installed yet.
    PendingHumanAck,
    /// Refused.
    Rejected {
        /// Why.
        reason: String,
    },
}

impl ExchangeDecision {
    /// Was the set installed?
    pub fn is_accepted(&self) -> bool {
        matches!(self, ExchangeDecision::Accepted { .. })
    }
}

impl fmt::Display for ExchangeDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeDecision::Accepted { added } => write!(f, "accepted ({added} rules added)"),
            ExchangeDecision::PendingHumanAck => write!(f, "pending human acknowledgement"),
            ExchangeDecision::Rejected { reason } => write!(f, "rejected: {reason}"),
        }
    }
}

/// A device-side policy exchange endpoint: offers arrive, the exchange rule
/// gates them, accepted rules merge into the local set.
///
/// # Example
///
/// ```
/// use apdm_genpolicy::{ExchangeRule, PolicyExchange};
/// use apdm_policy::{Action, Condition, EcaRule, Event, PolicySet};
///
/// let mut exchange = PolicyExchange::new(
///     "us",
///     PolicySet::new("local"),
///     ExchangeRule::accept_from(["us", "uk"]),
/// );
/// let mut offer = PolicySet::new("shared");
/// offer.push(EcaRule::new("r", Event::pattern("e"), Condition::True, Action::noop()));
/// assert!(exchange.offer("uk", &offer).is_accepted());
/// assert!(!exchange.offer("insurgent", &offer).is_accepted());
/// ```
#[derive(Debug, Clone)]
pub struct PolicyExchange {
    own_org: String,
    local: PolicySet,
    rule: ExchangeRule,
    pending: Vec<(String, PolicySet)>,
    offers_seen: u64,
    offers_rejected: u64,
}

impl PolicyExchange {
    /// An exchange for a device of `own_org` holding `local` policies.
    pub fn new(own_org: impl Into<String>, local: PolicySet, rule: ExchangeRule) -> Self {
        PolicyExchange {
            own_org: own_org.into(),
            local,
            rule,
            pending: Vec::new(),
            offers_seen: 0,
            offers_rejected: 0,
        }
    }

    /// The local policy set.
    pub fn local(&self) -> &PolicySet {
        &self.local
    }

    /// Offers awaiting human acknowledgement.
    pub fn pending(&self) -> &[(String, PolicySet)] {
        &self.pending
    }

    /// Statistics: `(offers seen, offers rejected)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.offers_seen, self.offers_rejected)
    }

    /// Handle an offered policy set from a peer in `from_org`.
    pub fn offer(&mut self, from_org: &str, set: &PolicySet) -> ExchangeDecision {
        self.offers_seen += 1;
        if !self.rule.accepts_org(from_org) {
            self.offers_rejected += 1;
            return ExchangeDecision::Rejected {
                reason: format!("organization `{from_org}` is not trusted"),
            };
        }
        if self.rule.block_foreign_physical
            && from_org != self.own_org
            && set.rules().iter().any(|r| r.action().is_physical())
        {
            self.offers_rejected += 1;
            return ExchangeDecision::Rejected {
                reason: "physically acting rules from a foreign organization".to_string(),
            };
        }
        if self.rule.require_human_ack {
            self.pending.push((from_org.to_string(), set.clone()));
            return ExchangeDecision::PendingHumanAck;
        }
        let added = self.local.merge(set);
        ExchangeDecision::Accepted { added }
    }

    /// A human resolves the `idx`-th pending offer. Approval merges it;
    /// denial drops it. Returns the decision, or `None` for a bad index.
    pub fn resolve_pending(&mut self, idx: usize, approve: bool) -> Option<ExchangeDecision> {
        if idx >= self.pending.len() {
            return None;
        }
        let (_, set) = self.pending.remove(idx);
        if approve {
            let added = self.local.merge(&set);
            Some(ExchangeDecision::Accepted { added })
        } else {
            self.offers_rejected += 1;
            Some(ExchangeDecision::Rejected {
                reason: "denied by human".to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_policy::{Action, Condition, EcaRule, Event};

    fn offer_set(physical: bool) -> PolicySet {
        let mut s = PolicySet::new("offer");
        let action = if physical {
            Action::adjust("dig", Default::default()).physical()
        } else {
            Action::noop()
        };
        s.push(EcaRule::new(
            "r",
            Event::pattern("e"),
            Condition::True,
            action,
        ));
        s
    }

    fn exchange(rule: ExchangeRule) -> PolicyExchange {
        PolicyExchange::new("us", PolicySet::new("local"), rule)
    }

    #[test]
    fn accepts_trusted_org_and_merges() {
        let mut ex = exchange(ExchangeRule::accept_from(["us", "uk"]));
        let d = ex.offer("uk", &offer_set(false));
        assert_eq!(d, ExchangeDecision::Accepted { added: 1 });
        assert_eq!(ex.local().len(), 1);
        // Re-offering the same set adds nothing.
        assert_eq!(
            ex.offer("uk", &offer_set(false)),
            ExchangeDecision::Accepted { added: 0 }
        );
    }

    #[test]
    fn rejects_untrusted_org() {
        let mut ex = exchange(ExchangeRule::accept_from(["us"]));
        let d = ex.offer("insurgent", &offer_set(false));
        assert!(!d.is_accepted());
        assert_eq!(ex.local().len(), 0);
        assert_eq!(ex.stats(), (1, 1));
    }

    #[test]
    fn blocks_foreign_physical_rules() {
        let mut ex = exchange(ExchangeRule::accept_from(["us", "uk"]).blocking_foreign_physical());
        assert!(!ex.offer("uk", &offer_set(true)).is_accepted());
        // Own-org physical rules pass.
        assert!(ex.offer("us", &offer_set(true)).is_accepted());
        // Foreign non-physical rules pass.
        assert!(ex.offer("uk", &offer_set(false)).is_accepted());
    }

    #[test]
    fn human_ack_gates_installation() {
        let mut ex = exchange(ExchangeRule::accept_from(["uk"]).with_human_ack());
        assert_eq!(
            ex.offer("uk", &offer_set(false)),
            ExchangeDecision::PendingHumanAck
        );
        assert_eq!(ex.local().len(), 0);
        assert_eq!(ex.pending().len(), 1);
        let d = ex.resolve_pending(0, true).unwrap();
        assert_eq!(d, ExchangeDecision::Accepted { added: 1 });
        assert_eq!(ex.local().len(), 1);
    }

    #[test]
    fn human_denial_drops_offer() {
        let mut ex = exchange(ExchangeRule::accept_from(["uk"]).with_human_ack());
        ex.offer("uk", &offer_set(false));
        let d = ex.resolve_pending(0, false).unwrap();
        assert!(!d.is_accepted());
        assert_eq!(ex.local().len(), 0);
        assert!(ex.pending().is_empty());
        assert!(ex.resolve_pending(0, true).is_none());
    }
}
