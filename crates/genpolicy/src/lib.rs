//! Generative policies: devices creating the policies they need to manage
//! themselves.
//!
//! Implements Section IV of *How to Prevent Skynet From Forming* (Calo et
//! al., ICDCS 2018), which describes the research alliance's generative
//! policy architecture:
//!
//! > "a human manager provides two types of information to each device. The
//! > first type of information specifies what the device can expect to see in
//! > its environment, in particular the other types of devices that would be
//! > encountered and their attributes. The second type of information
//! > provides directions indicating what kinds of policies it should generate
//! > as new devices are discovered in the environment. The former is
//! > specified by means of an **interaction graph**, the latter by means of a
//! > **policy generator grammar** or a **policy template**."
//!
//! * [`InteractionGraph`] — expected device kinds (with required attributes)
//!   and the interactions between them;
//! * [`PolicyTemplate`] — parameterized ECA rules instantiated per discovered
//!   peer;
//! * [`PolicyGrammar`] — a finite generative space of event × condition ×
//!   action productions, enumerable and sampleable;
//! * [`PolicyGenerator`] — ties graph + templates/grammar together: feed it
//!   discovery events, get generated rules (marked with machine provenance);
//! * [`ThresholdRefiner`] — post-generation refinement of numeric thresholds
//!   from observed outcomes ("use machine learning techniques to improve its
//!   ability to generate effective management policies");
//! * [`PolicyExchange`] — policy sharing between devices with org-based
//!   acceptance control ("share the information and policies they generate
//!   with other devices").
//!
//! Participates in experiments **G1**, **A2**, **E7** (DESIGN.md §3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grammar;
mod graph;
mod refine;
mod share;
mod template;

pub use grammar::{ActionForm, ConditionForm, PolicyGrammar};
pub use graph::{InteractionEdge, InteractionGraph, KindSpec};
pub use refine::{thresholds_for, Outcome, ThresholdRefiner};
pub use share::{ExchangeDecision, ExchangeRule, PolicyExchange};
pub use template::{PolicyTemplate, TemplateContext};

mod generator;
pub use generator::PolicyGenerator;
