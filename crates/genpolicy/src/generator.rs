use std::collections::BTreeMap;

use apdm_device::Attributes;
use apdm_policy::{EcaRule, PolicySet};

use crate::{InteractionGraph, PolicyGrammar, PolicyTemplate, TemplateContext};

/// The generative policy engine of Section IV: interaction graph + per-
/// interaction templates (plus an optional grammar for exploratory
/// generation), producing policies as peers are discovered.
///
/// "Based on these two classes of information, devices discover other devices
/// in the system and decide on the policies to be used in their interaction
/// with those devices."
///
/// # Example
///
/// ```
/// use apdm_genpolicy::{InteractionGraph, KindSpec, PolicyGenerator, PolicyTemplate};
/// use apdm_policy::{Action, Condition};
/// use apdm_device::Attributes;
///
/// let mut graph = InteractionGraph::new();
/// graph.add_kind(KindSpec::new("drone"));
/// graph.add_kind(KindSpec::new("mule"));
/// graph.add_interaction("drone", "mule", "dispatch");
///
/// let mut generator = PolicyGenerator::new("drone", graph);
/// generator.template_for(
///     "dispatch",
///     PolicyTemplate::new(
///         "dispatch-{peer}",
///         "convoy-sighted",
///         Condition::True,
///         Action::adjust("radio-{interaction}-{peer}", Default::default()),
///     ),
/// );
///
/// let rules = generator.on_discovery("mule", "uk", &Attributes::new());
/// assert_eq!(rules.len(), 1);
/// assert_eq!(rules[0].name(), "dispatch-mule");
/// ```
#[derive(Debug, Clone)]
pub struct PolicyGenerator {
    observer_kind: String,
    graph: InteractionGraph,
    templates: BTreeMap<String, PolicyTemplate>,
    grammar: Option<PolicyGrammar>,
    generated: PolicySet,
    unexpected_peers: Vec<String>,
}

impl PolicyGenerator {
    /// A generator for a device of `observer_kind` with the given interaction
    /// graph.
    pub fn new(observer_kind: impl Into<String>, graph: InteractionGraph) -> Self {
        let observer_kind = observer_kind.into();
        PolicyGenerator {
            generated: PolicySet::new(format!("generated-by-{observer_kind}")),
            observer_kind,
            graph,
            templates: BTreeMap::new(),
            grammar: None,
            unexpected_peers: Vec::new(),
        }
    }

    /// Register the template used for an interaction name.
    pub fn template_for(&mut self, interaction: impl Into<String>, template: PolicyTemplate) {
        self.templates.insert(interaction.into(), template);
    }

    /// Attach a grammar for exploratory generation (see
    /// [`explore`](Self::explore)).
    pub fn set_grammar(&mut self, grammar: PolicyGrammar) {
        self.grammar = Some(grammar);
    }

    /// The interaction graph.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }

    /// Everything generated so far.
    pub fn generated(&self) -> &PolicySet {
        &self.generated
    }

    /// Kinds seen that matched no expected kind spec — the "environment
    /// differs from the human's description" signal.
    pub fn unexpected_peers(&self) -> &[String] {
        &self.unexpected_peers
    }

    /// React to discovering a peer: match it against the interaction graph,
    /// instantiate the template of every relevant interaction, record and
    /// return the (deduplicated) new rules.
    pub fn on_discovery(
        &mut self,
        peer_kind: &str,
        peer_org: &str,
        attrs: &Attributes,
    ) -> Vec<EcaRule> {
        let Some(spec) = self.graph.recognize(peer_kind, attrs) else {
            if !self.unexpected_peers.iter().any(|k| k == peer_kind) {
                self.unexpected_peers.push(peer_kind.to_string());
            }
            return Vec::new();
        };
        let spec_kind = spec.kind().to_string();
        let mut new_rules = Vec::new();
        let interactions: Vec<(String, String)> = self
            .graph
            .relevant_interactions(&self.observer_kind, &spec_kind)
            .into_iter()
            .map(|e| (e.interaction.clone(), e.from.clone()))
            .collect();
        for (interaction, _from) in interactions {
            let Some(template) = self.templates.get(&interaction) else {
                continue;
            };
            let ctx = TemplateContext::new(
                self.observer_kind.clone(),
                spec_kind.clone(),
                peer_org.to_string(),
                interaction.clone(),
            );
            let rule = template.instantiate(&ctx);
            if !self.generated.rules().iter().any(|r| r.equivalent(&rule)) {
                self.generated.push(rule.clone());
                new_rules.push(rule);
            }
        }
        new_rules
    }

    /// Exploratory generation from the grammar: derive `n` sampled rules
    /// (deduplicated against everything generated so far). This is the
    /// Section IV extension where devices "augment the information provided
    /// by the human manager on their own" — the step that widens behaviour
    /// beyond human anticipation.
    pub fn explore(&mut self, n: usize, seed: u64) -> Vec<EcaRule> {
        let Some(grammar) = &self.grammar else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for rule in grammar.sample(n, seed) {
            if !self.generated.rules().iter().any(|r| r.equivalent(&rule)) {
                self.generated.push(rule.clone());
                out.push(rule);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActionForm, ConditionForm, KindSpec};
    use apdm_policy::{Action, Condition};

    fn generator() -> PolicyGenerator {
        let mut graph = InteractionGraph::new();
        graph.add_kind(KindSpec::new("drone"));
        graph.add_kind(KindSpec::new("mule"));
        graph.add_kind(KindSpec::new("chem-drone").requires("sensor", "chemical"));
        graph.add_interaction("drone", "mule", "dispatch");
        graph.add_interaction("drone", "chem-drone", "dispatch");
        graph.add_interaction("mule", "drone", "report-to");
        let mut g = PolicyGenerator::new("drone", graph);
        g.template_for(
            "dispatch",
            PolicyTemplate::new(
                "dispatch-{peer}",
                "sighting",
                Condition::True,
                Action::adjust("radio-dispatch-{peer}", Default::default()),
            ),
        );
        g.template_for(
            "report-to",
            PolicyTemplate::new(
                "accept-report-{peer}",
                "report",
                Condition::True,
                Action::adjust("log-report", Default::default()),
            ),
        );
        g
    }

    #[test]
    fn discovery_generates_per_interaction() {
        let mut g = generator();
        let rules = g.on_discovery("mule", "uk", &Attributes::new());
        // drone->mule dispatch AND mule->drone report-to are both relevant.
        assert_eq!(rules.len(), 2);
        assert!(rules.iter().all(|r| r.is_generated()));
        assert_eq!(g.generated().len(), 2);
    }

    #[test]
    fn rediscovery_is_deduplicated() {
        let mut g = generator();
        g.on_discovery("mule", "uk", &Attributes::new());
        let again = g.on_discovery("mule", "uk", &Attributes::new());
        assert!(again.is_empty());
        assert_eq!(g.generated().len(), 2);
    }

    #[test]
    fn attr_gated_kinds_need_attrs() {
        let mut g = generator();
        let none = g.on_discovery("chem-drone", "us", &Attributes::new());
        assert!(none.is_empty());
        assert_eq!(g.unexpected_peers(), &["chem-drone".to_string()]);
        let mut attrs = Attributes::new();
        attrs.set("sensor", "chemical");
        let rules = g.on_discovery("chem-drone", "us", &attrs);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].name(), "dispatch-chem-drone");
    }

    #[test]
    fn unknown_kinds_are_recorded_once() {
        let mut g = generator();
        g.on_discovery("submarine", "us", &Attributes::new());
        g.on_discovery("submarine", "us", &Attributes::new());
        assert_eq!(g.unexpected_peers().len(), 1);
    }

    #[test]
    fn missing_template_generates_nothing_for_that_interaction() {
        let mut graph = InteractionGraph::new();
        graph.add_kind(KindSpec::new("drone"));
        graph.add_kind(KindSpec::new("mule"));
        graph.add_interaction("drone", "mule", "exotic-interaction");
        let mut g = PolicyGenerator::new("drone", graph);
        assert!(g.on_discovery("mule", "uk", &Attributes::new()).is_empty());
    }

    #[test]
    fn explore_samples_grammar_with_dedup() {
        let mut g = generator();
        g.set_grammar(
            PolicyGrammar::new()
                .event("overheat")
                .condition(ConditionForm::Always)
                .action(ActionForm::Signal("vent".into())),
        );
        let first = g.explore(5, 1);
        assert_eq!(first.len(), 1, "single-point space dedups to one rule");
        assert!(g.explore(5, 2).is_empty());
    }

    #[test]
    fn explore_without_grammar_is_empty() {
        let mut g = generator();
        assert!(g.explore(10, 0).is_empty());
    }
}
