//! Property-based tests for the generative policy layer.

use proptest::prelude::*;

use apdm_device::Attributes;
use apdm_genpolicy::{
    ActionForm, ConditionForm, InteractionGraph, KindSpec, Outcome, PolicyGenerator, PolicyGrammar,
    PolicyTemplate, ThresholdRefiner,
};
use apdm_policy::{Action, Condition, EcaRule, Event};
use apdm_statespace::VarId;

fn arb_grammar() -> impl Strategy<Value = PolicyGrammar> {
    (
        1usize..4,                                     // events
        proptest::collection::vec(0.0..10.0f64, 1..5), // thresholds
        1usize..3,                                     // signals
    )
        .prop_map(|(n_events, thresholds, n_signals)| {
            let mut g = PolicyGrammar::new();
            for i in 0..n_events {
                g = g.event(format!("e{i}"));
            }
            g = g
                .condition(ConditionForm::Always)
                .condition(ConditionForm::VarAtLeast(VarId(0), thresholds));
            for i in 0..n_signals {
                g = g.action(ActionForm::Signal(format!("s{i}")));
            }
            g
        })
}

proptest! {
    /// The enumeration has exactly `space_size` elements, every index
    /// derives, every out-of-range index does not, and derivation is stable.
    #[test]
    fn grammar_enumeration_exact(g in arb_grammar()) {
        let size = g.space_size();
        let all = g.enumerate();
        prop_assert_eq!(all.len(), size);
        for (i, expected) in all.iter().enumerate() {
            let r = g.derive(i);
            prop_assert!(r.is_some());
            prop_assert!(r.unwrap().equivalent(expected));
        }
        prop_assert!(g.derive(size).is_none());
    }

    /// Grammar enumeration contains no equivalent duplicates when the
    /// threshold choices are distinct.
    #[test]
    fn grammar_no_duplicates(n_events in 1usize..3, n_thresholds in 1usize..4) {
        let thresholds: Vec<f64> = (0..n_thresholds).map(|i| i as f64).collect();
        let mut g = PolicyGrammar::new();
        for i in 0..n_events {
            g = g.event(format!("e{i}"));
        }
        g = g
            .condition(ConditionForm::VarAtLeast(VarId(0), thresholds))
            .action(ActionForm::Signal("s".into()));
        let all = g.enumerate();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                prop_assert!(!all[i].equivalent(&all[j]));
            }
        }
    }

    /// Sampling is within bounds and deterministic per seed.
    #[test]
    fn grammar_sampling(g in arb_grammar(), n in 0usize..20, seed in 0u64..50) {
        let a = g.sample(n, seed);
        let b = g.sample(n, seed);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!(x.equivalent(y));
        }
    }

    /// Discovery-driven generation is idempotent per peer and linear in the
    /// number of distinct peers.
    #[test]
    fn generation_idempotent(n_kinds in 1usize..10, repeats in 1usize..4) {
        let mut graph = InteractionGraph::new();
        graph.add_kind(KindSpec::new("observer"));
        for i in 0..n_kinds {
            graph.add_kind(KindSpec::new(format!("kind-{i}")));
            graph.add_interaction("observer", format!("kind-{i}"), "dispatch");
        }
        let mut gen = PolicyGenerator::new("observer", graph);
        gen.template_for(
            "dispatch",
            PolicyTemplate::new(
                "dispatch-{peer}",
                "sighting",
                Condition::True,
                Action::adjust("radio-{peer}", Default::default()),
            ),
        );
        let mut total = 0;
        for _ in 0..repeats {
            for i in 0..n_kinds {
                total += gen
                    .on_discovery(&format!("kind-{i}"), "us", &Attributes::new())
                    .len();
            }
        }
        prop_assert_eq!(total, n_kinds);
        prop_assert_eq!(gen.generated().len(), n_kinds);
    }

    /// Threshold refinement: feedback never moves a `>=` threshold in the
    /// wrong direction, and total movement is bounded by the geometric sum
    /// of steps.
    #[test]
    fn refinement_bounded(
        outcomes in proptest::collection::vec(0u8..4, 1..60),
        start in 0.0..10.0f64,
        step in 0.01..2.0f64,
    ) {
        let rule = EcaRule::new(
            "r",
            Event::pattern("tick"),
            Condition::state_at_least(VarId(0), start),
            Action::noop(),
        );
        let mut refiner = ThresholdRefiner::new(rule, step);
        let mut prev = start;
        for o in outcomes {
            let outcome = match o {
                0 => Outcome::TruePositive,
                1 => Outcome::FalsePositive,
                2 => Outcome::FalseNegative,
                _ => Outcome::TrueNegative,
            };
            refiner.feedback(outcome);
            let now = refiner.threshold(0).unwrap();
            match outcome {
                Outcome::FalsePositive => prop_assert!(now >= prev),
                Outcome::FalseNegative => prop_assert!(now <= prev),
                _ => prop_assert_eq!(now, prev),
            }
            prev = now;
        }
        // Geometric bound: |total movement| <= step / (1 - 0.9).
        prop_assert!((prev - start).abs() <= step / 0.1 + 1e-9);
    }
}
