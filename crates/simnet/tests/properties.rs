//! Property-based tests for the simulated network.

use proptest::prelude::*;

use apdm_simnet::{Link, Network, NodeId, OrgMap, Topology};

fn line_topology(n: usize, latency: u64) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let nodes: Vec<NodeId> = (0..n).map(|_| t.add_node()).collect();
    for w in nodes.windows(2) {
        t.connect(w[0], w[1], Link::with_latency(latency));
    }
    (t, nodes)
}

proptest! {
    /// Lossless delivery: every sent message arrives exactly once, at
    /// exactly send-tick + latency, in send order.
    #[test]
    fn lossless_delivery_exact(
        latency in 1u64..5,
        sends in proptest::collection::vec(0u64..20, 1..30),
    ) {
        let (t, nodes) = line_topology(2, latency);
        let mut net: Network<usize> = Network::new(t);
        for (i, &tick) in sends.iter().enumerate() {
            prop_assert!(net.send(nodes[0], nodes[1], i, tick));
        }
        let mut received = Vec::new();
        for now in 0..40 {
            for d in net.deliver_at(now) {
                prop_assert_eq!(d.sent_at + latency, now);
                received.push(d.payload);
            }
        }
        prop_assert_eq!(received.len(), sends.len());
        received.sort_unstable();
        prop_assert_eq!(received, (0..sends.len()).collect::<Vec<_>>());
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// deliver_up_to(t) after arbitrary sends leaves only messages due
    /// strictly after t.
    #[test]
    fn deliver_up_to_partitions_time(
        sends in proptest::collection::vec(0u64..30, 1..30),
        cut in 0u64..35,
    ) {
        let (t, nodes) = line_topology(2, 1);
        let mut net: Network<u64> = Network::new(t);
        for &tick in &sends {
            net.send(nodes[0], nodes[1], tick, tick);
        }
        let early = net.deliver_up_to(cut);
        prop_assert!(early.iter().all(|d| d.sent_at < cut));
        let late = net.deliver_up_to(100);
        prop_assert!(late.iter().all(|d| d.sent_at + 1 > cut));
        prop_assert_eq!(early.len() + late.len(), sends.len());
    }

    /// Partition then heal restores connectivity for any cut set.
    #[test]
    fn partition_heal_roundtrip(n in 2usize..8, cut_mask in 0u8..255) {
        let (mut t, nodes) = line_topology(n, 1);
        let left: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| cut_mask & (1 << (i % 8)) != 0)
            .map(|(_, &id)| id)
            .collect();
        prop_assert!(t.is_connected());
        t.partition(&left);
        t.heal();
        prop_assert!(t.is_connected());
    }

    /// Loss statistics account for every send: sent = delivered + lost,
    /// and rejected sends never enter the counts.
    #[test]
    fn loss_accounting(loss in 0.0..=1.0f64, n in 1usize..50) {
        let mut t = Topology::new();
        let a = t.add_node();
        let b = t.add_node();
        t.connect(a, b, Link::with_latency(1).with_loss(loss));
        let mut net: Network<usize> = Network::with_seed(t, 99);
        for i in 0..n {
            net.send(a, b, i, 0);
        }
        let delivered = net.deliver_up_to(10).len();
        let (sent, lost, rejected) = net.stats();
        prop_assert_eq!(sent as usize, n);
        prop_assert_eq!(rejected, 0);
        prop_assert_eq!(delivered + lost as usize, n);
    }

    /// OrgMap::may_interact is symmetric and reflexive-within-org for any
    /// allowance set.
    #[test]
    fn org_interaction_symmetry(
        orgs in proptest::collection::vec(0u8..4, 2..10),
        allows in proptest::collection::vec((0u8..4, 0u8..4), 0..8),
    ) {
        let mut map = OrgMap::new();
        for (i, &o) in orgs.iter().enumerate() {
            map.assign(NodeId(i as u64), format!("org{o}"));
        }
        for (a, b) in allows {
            map.allow(format!("org{a}"), format!("org{b}"));
        }
        for i in 0..orgs.len() {
            for j in 0..orgs.len() {
                let (ni, nj) = (NodeId(i as u64), NodeId(j as u64));
                prop_assert_eq!(map.may_interact(ni, nj), map.may_interact(nj, ni));
                if orgs[i] == orgs[j] {
                    prop_assert!(map.may_interact(ni, nj));
                }
            }
        }
    }
}
