use std::collections::BTreeMap;

use crate::NodeId;

/// Organization domains over network nodes, with a cross-organization
/// interaction policy.
///
/// Section III: a Skynet "needs to leverage and take over computing devices
/// that may belong to more than one organization". The [`OrgMap`] records
/// which organization owns each node and which organization pairs are allowed
/// to interact — the substrate for coalition experiments and for measuring
/// the multi-organizational Skynet property.
///
/// # Example
///
/// ```
/// use apdm_simnet::{NodeId, OrgMap};
///
/// let mut orgs = OrgMap::new();
/// orgs.assign(NodeId(0), "us");
/// orgs.assign(NodeId(1), "uk");
/// orgs.allow("us", "uk");
/// assert!(orgs.may_interact(NodeId(0), NodeId(1)));
/// assert!(orgs.is_cross_org(NodeId(0), NodeId(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OrgMap {
    owner: BTreeMap<NodeId, String>,
    /// Allowed unordered org pairs (lo, hi) by name.
    allowed: Vec<(String, String)>,
}

impl OrgMap {
    /// An empty map.
    pub fn new() -> Self {
        OrgMap::default()
    }

    /// Assign a node to an organization (replacing any previous owner).
    pub fn assign(&mut self, node: NodeId, org: impl Into<String>) {
        self.owner.insert(node, org.into());
    }

    /// The owner of a node.
    pub fn org_of(&self, node: NodeId) -> Option<&str> {
        self.owner.get(&node).map(String::as_str)
    }

    /// Allow two organizations to interact (same-org interaction is always
    /// allowed and need not be declared).
    pub fn allow(&mut self, a: impl Into<String>, b: impl Into<String>) {
        let pair = Self::key(a.into(), b.into());
        if !self.allowed.contains(&pair) {
            self.allowed.push(pair);
        }
    }

    /// Revoke a cross-org allowance.
    pub fn revoke(&mut self, a: &str, b: &str) {
        let pair = Self::key(a.to_string(), b.to_string());
        self.allowed.retain(|p| *p != pair);
    }

    /// Do the two nodes belong to different organizations?
    pub fn is_cross_org(&self, a: NodeId, b: NodeId) -> bool {
        match (self.org_of(a), self.org_of(b)) {
            (Some(x), Some(y)) => x != y,
            _ => false,
        }
    }

    /// May the two nodes interact under the coalition policy? Unassigned
    /// nodes may interact with nobody (fail closed).
    pub fn may_interact(&self, a: NodeId, b: NodeId) -> bool {
        match (self.org_of(a), self.org_of(b)) {
            (Some(x), Some(y)) if x == y => true,
            (Some(x), Some(y)) => self
                .allowed
                .contains(&Self::key(x.to_string(), y.to_string())),
            _ => false,
        }
    }

    /// Organizations present, deduplicated, in name order.
    pub fn organizations(&self) -> Vec<&str> {
        let mut orgs: Vec<&str> = self.owner.values().map(String::as_str).collect();
        orgs.sort_unstable();
        orgs.dedup();
        orgs
    }

    /// Nodes owned by an organization, in id order.
    pub fn nodes_of(&self, org: &str) -> Vec<NodeId> {
        self.owner
            .iter()
            .filter(|(_, o)| o.as_str() == org)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Number of distinct organizations reachable from `start` through
    /// allowed interactions over the given adjacency — the quantitative
    /// "multi-organizational reach" Skynet metric.
    pub fn reach(&self, start: NodeId, neighbors: impl Fn(NodeId) -> Vec<NodeId>) -> usize {
        let mut seen = vec![start];
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for m in neighbors(n) {
                if !seen.contains(&m) && self.may_interact(n, m) {
                    seen.push(m);
                    stack.push(m);
                }
            }
        }
        let mut orgs: Vec<&str> = seen.iter().filter_map(|&n| self.org_of(n)).collect();
        orgs.sort_unstable();
        orgs.dedup();
        orgs.len()
    }

    fn key(a: String, b: String) -> (String, String) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coalition() -> OrgMap {
        let mut m = OrgMap::new();
        m.assign(NodeId(0), "us");
        m.assign(NodeId(1), "us");
        m.assign(NodeId(2), "uk");
        m.assign(NodeId(3), "insurgent");
        m.allow("us", "uk");
        m
    }

    #[test]
    fn same_org_always_allowed() {
        let m = coalition();
        assert!(m.may_interact(NodeId(0), NodeId(1)));
        assert!(!m.is_cross_org(NodeId(0), NodeId(1)));
    }

    #[test]
    fn cross_org_needs_allowance() {
        let m = coalition();
        assert!(m.may_interact(NodeId(0), NodeId(2)));
        assert!(!m.may_interact(NodeId(0), NodeId(3)));
        assert!(m.is_cross_org(NodeId(0), NodeId(3)));
    }

    #[test]
    fn allowance_is_symmetric_and_revocable() {
        let mut m = coalition();
        assert!(m.may_interact(NodeId(2), NodeId(0)));
        m.revoke("uk", "us");
        assert!(!m.may_interact(NodeId(0), NodeId(2)));
    }

    #[test]
    fn unassigned_nodes_fail_closed() {
        let m = coalition();
        assert!(!m.may_interact(NodeId(0), NodeId(99)));
        assert_eq!(m.org_of(NodeId(99)), None);
    }

    #[test]
    fn organizations_and_nodes_of() {
        let m = coalition();
        assert_eq!(m.organizations(), vec!["insurgent", "uk", "us"]);
        assert_eq!(m.nodes_of("us"), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn reach_counts_allowed_orgs_only() {
        let m = coalition();
        // Full mesh adjacency.
        let all = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let neighbors = |n: NodeId| all.iter().copied().filter(|&x| x != n).collect::<Vec<_>>();
        // From us: reaches us + uk, never insurgent.
        assert_eq!(m.reach(NodeId(0), neighbors), 2);
    }

    #[test]
    fn duplicate_allow_is_idempotent() {
        let mut m = coalition();
        m.allow("us", "uk");
        m.allow("uk", "us");
        m.revoke("us", "uk");
        assert!(!m.may_interact(NodeId(0), NodeId(2)));
    }
}
