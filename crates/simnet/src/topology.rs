use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node (device) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(value: u64) -> Self {
        NodeId(value)
    }
}

/// Properties of a bidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Delivery delay in ticks (>= 1).
    pub latency: u64,
    /// Probability a message on this link is lost, in `[0, 1]`.
    pub loss: f64,
    /// Probability a message that survives loss is duplicated, in `[0, 1]`.
    pub dup: f64,
    /// Probability a message that survives loss is reordered (delivered with
    /// extra latency, so later sends can overtake it), in `[0, 1]`.
    pub reorder: f64,
    /// Is the link currently usable?
    pub up: bool,
}

impl Link {
    /// A reliable link with the given latency (min 1 tick).
    pub fn with_latency(latency: u64) -> Self {
        Link {
            latency: latency.max(1),
            loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            up: true,
        }
    }

    /// Set the loss probability (clamped to `[0, 1]`; builder style).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Set the duplication probability (clamped to `[0, 1]`; builder style).
    pub fn with_dup(mut self, dup: f64) -> Self {
        self.dup = dup.clamp(0.0, 1.0);
        self
    }

    /// Set the reorder probability (clamped to `[0, 1]`; builder style).
    pub fn with_reorder(mut self, reorder: f64) -> Self {
        self.reorder = reorder.clamp(0.0, 1.0);
        self
    }
}

impl Default for Link {
    fn default() -> Self {
        Link::with_latency(1)
    }
}

/// A dynamic undirected topology of nodes and links.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    next_node: u64,
    /// Adjacency keyed by ordered pair (lo, hi).
    links: BTreeMap<(NodeId, NodeId), Link>,
    nodes: Vec<NodeId>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes.push(id);
        id
    }

    /// Remove a node and all its links. Returns whether it existed.
    pub fn remove_node(&mut self, node: NodeId) -> bool {
        let existed = self.nodes.contains(&node);
        self.nodes.retain(|&n| n != node);
        self.links.retain(|&(a, b), _| a != node && b != node);
        existed
    }

    /// All nodes, in creation order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Connect two distinct nodes (replacing any existing link).
    ///
    /// # Panics
    ///
    /// Panics on self-links or unknown nodes.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        assert_ne!(a, b, "self-links are not allowed");
        assert!(self.nodes.contains(&a), "unknown node {a}");
        assert!(self.nodes.contains(&b), "unknown node {b}");
        self.links.insert(Self::key(a, b), link);
    }

    /// Remove the link between two nodes; returns it if present.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> Option<Link> {
        self.links.remove(&Self::key(a, b))
    }

    /// The link between two nodes, if any.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        self.links.get(&Self::key(a, b))
    }

    /// Mutable link access (to take links down, add loss, ...).
    pub fn link_mut(&mut self, a: NodeId, b: NodeId) -> Option<&mut Link> {
        self.links.get_mut(&Self::key(a, b))
    }

    /// Neighbours of a node over *up* links, in id order.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.links
            .iter()
            .filter(|((a, b), l)| l.up && (*a == node || *b == node))
            .map(|((a, b), _)| if *a == node { *b } else { *a })
            .collect()
    }

    /// Number of links (up or down).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Partition the network: take down every link crossing between `left`
    /// and the rest. Returns how many links went down.
    pub fn partition(&mut self, left: &[NodeId]) -> usize {
        let mut count = 0;
        for ((a, b), link) in self.links.iter_mut() {
            let a_left = left.contains(a);
            let b_left = left.contains(b);
            if a_left != b_left && link.up {
                link.up = false;
                count += 1;
            }
        }
        count
    }

    /// Bring every link back up (heal all partitions).
    pub fn heal(&mut self) {
        for link in self.links.values_mut() {
            link.up = true;
        }
    }

    /// Is the up-link graph connected? (Vacuously true for <= 1 node.)
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.nodes.first() else {
            return true;
        };
        let mut seen = vec![start];
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for m in self.neighbors(n) {
                if !seen.contains(&m) {
                    seen.push(m);
                    stack.push(m);
                }
            }
        }
        seen.len() == self.nodes.len()
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// A fully connected topology of `n` nodes with the given link template.
    pub fn full_mesh(n: usize, link: Link) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| t.add_node()).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                t.connect(nodes[i], nodes[j], link);
            }
        }
        (t, nodes)
    }

    /// A line (path) topology of `n` nodes.
    pub fn line(n: usize, link: Link) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| t.add_node()).collect();
        for w in nodes.windows(2) {
            t.connect(w[0], w[1], link);
        }
        (t, nodes)
    }

    /// A ring topology of `n` nodes (a line for `n < 3`).
    pub fn ring(n: usize, link: Link) -> (Topology, Vec<NodeId>) {
        let (mut t, nodes) = Topology::line(n, link);
        if n >= 3 {
            t.connect(nodes[n - 1], nodes[0], link);
        }
        (t, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node();
        let b = t.add_node();
        let c = t.add_node();
        t.connect(a, b, Link::default());
        t.connect(b, c, Link::default());
        (t, a, b, c)
    }

    #[test]
    fn add_and_remove_nodes() {
        let (mut t, a, b, _) = line3();
        assert_eq!(t.len(), 3);
        assert!(t.remove_node(b));
        assert_eq!(t.len(), 2);
        assert_eq!(t.link_count(), 0);
        assert!(t.neighbors(a).is_empty());
        assert!(!t.remove_node(b));
    }

    #[test]
    fn links_are_undirected() {
        let (t, a, b, _) = line3();
        assert!(t.link(a, b).is_some());
        assert!(t.link(b, a).is_some());
        assert_eq!(t.neighbors(b), vec![a, NodeId(2)]);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut t = Topology::new();
        let a = t.add_node();
        t.connect(a, a, Link::default());
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn connect_unknown_node_rejected() {
        let mut t = Topology::new();
        let a = t.add_node();
        t.connect(a, NodeId(99), Link::default());
    }

    #[test]
    fn down_links_hide_neighbors() {
        let (mut t, a, b, _) = line3();
        t.link_mut(a, b).unwrap().up = false;
        assert!(!t.neighbors(a).contains(&b));
        assert!(!t.is_connected());
        t.heal();
        assert!(t.is_connected());
    }

    #[test]
    fn partition_cuts_crossing_links() {
        let (mut t, a, b, c) = line3();
        let cut = t.partition(&[a]);
        assert_eq!(cut, 1);
        assert!(!t.is_connected());
        assert_eq!(t.neighbors(b), vec![c]);
    }

    #[test]
    fn latency_floor_is_one() {
        assert_eq!(Link::with_latency(0).latency, 1);
    }

    #[test]
    fn loss_is_clamped() {
        assert_eq!(Link::default().with_loss(2.0).loss, 1.0);
        assert_eq!(Link::default().with_loss(-1.0).loss, 0.0);
    }

    #[test]
    fn dup_and_reorder_are_clamped() {
        assert_eq!(Link::default().with_dup(2.0).dup, 1.0);
        assert_eq!(Link::default().with_dup(-1.0).dup, 0.0);
        assert_eq!(Link::default().with_reorder(3.0).reorder, 1.0);
        assert_eq!(Link::default().with_reorder(-0.5).reorder, 0.0);
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        let mut t = Topology::new();
        assert!(t.is_connected());
        t.add_node();
        assert!(t.is_connected());
    }

    #[test]
    fn topology_constructors() {
        let (mesh, mesh_nodes) = Topology::full_mesh(5, Link::default());
        assert_eq!(mesh.link_count(), 10);
        assert!(mesh.is_connected());
        assert_eq!(mesh.neighbors(mesh_nodes[0]).len(), 4);

        let (line, line_nodes) = Topology::line(5, Link::default());
        assert_eq!(line.link_count(), 4);
        assert!(line.is_connected());
        assert_eq!(line.neighbors(line_nodes[0]).len(), 1);
        assert_eq!(line.neighbors(line_nodes[2]).len(), 2);

        let (ring, ring_nodes) = Topology::ring(5, Link::default());
        assert_eq!(ring.link_count(), 5);
        assert!(ring.neighbors(ring_nodes[0]).len() == 2);

        // Degenerate sizes.
        let (tiny_ring, _) = Topology::ring(2, Link::default());
        assert_eq!(tiny_ring.link_count(), 1);
        let (empty, nodes) = Topology::full_mesh(0, Link::default());
        assert!(empty.is_empty());
        assert!(nodes.is_empty());
    }

    #[test]
    fn disconnect_removes_link() {
        let (mut t, a, b, _) = line3();
        assert!(t.disconnect(a, b).is_some());
        assert!(t.link(a, b).is_none());
        assert!(t.disconnect(a, b).is_none());
    }
}
