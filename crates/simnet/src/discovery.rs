use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::{Network, NodeId};

/// What a node announces about itself: the inputs to interaction-graph
/// matching and generative policy creation (Section IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// The announcing node.
    pub node: NodeId,
    /// Device kind name ("drone", "mule", ...).
    pub kind: String,
    /// Owning organization name.
    pub org: String,
    /// Capability attributes.
    pub attrs: Vec<(String, String)>,
}

impl NodeInfo {
    /// Info with no attributes.
    pub fn new(node: NodeId, kind: impl Into<String>, org: impl Into<String>) -> Self {
        NodeInfo {
            node,
            kind: kind.into(),
            org: org.into(),
            attrs: Vec::new(),
        }
    }

    /// Attach an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Look up an attribute.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A discovery state change observed by some node.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscoveryEvent {
    /// `observer` learned about a node it had not seen before.
    Appeared {
        /// The node that learned something.
        observer: NodeId,
        /// What it learned.
        info: NodeInfo,
    },
    /// `observer` noticed a previously known node go silent.
    Disappeared {
        /// The node that noticed.
        observer: NodeId,
        /// The node that went silent.
        node: NodeId,
    },
}

/// Dynamic discovery over a [`Network`] of [`NodeInfo`] payloads.
///
/// Each registered node periodically announces itself to its link neighbours;
/// observers track who they know and when they last heard from them, expiring
/// entries after `expiry` ticks of silence. The produced
/// [`DiscoveryEvent::Appeared`] events are what the generative policy layer
/// listens to.
///
/// # Example
///
/// ```
/// use apdm_simnet::{DiscoveryService, Link, Network, NodeInfo, Topology};
///
/// let mut topo = Topology::new();
/// let a = topo.add_node();
/// let b = topo.add_node();
/// topo.connect(a, b, Link::with_latency(1));
/// let mut net = Network::new(topo);
///
/// let mut disco = DiscoveryService::new(5, 20);
/// disco.register(NodeInfo::new(a, "drone", "us"));
/// disco.register(NodeInfo::new(b, "mule", "uk"));
///
/// disco.announce(&mut net, 0);
/// let events = disco.step(&mut net, 1);
/// assert_eq!(events.len(), 2); // each side learned about the other
/// ```
#[derive(Debug)]
pub struct DiscoveryService {
    interval: u64,
    expiry: u64,
    members: Vec<NodeInfo>,
    /// observer -> (seen node -> (info, last heard tick)).
    known: BTreeMap<NodeId, BTreeMap<NodeId, (NodeInfo, u64)>>,
    last_announce: Option<u64>,
}

impl DiscoveryService {
    /// A service announcing every `interval` ticks and expiring after
    /// `expiry` ticks of silence.
    ///
    /// # Panics
    ///
    /// Panics when `interval` is zero.
    pub fn new(interval: u64, expiry: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        DiscoveryService {
            interval,
            expiry,
            members: Vec::new(),
            known: BTreeMap::new(),
            last_announce: None,
        }
    }

    /// Register a node to announce itself.
    pub fn register(&mut self, info: NodeInfo) {
        self.members.retain(|m| m.node != info.node);
        self.members.push(info);
    }

    /// Deregister a node (it stops announcing; observers will expire it).
    pub fn deregister(&mut self, node: NodeId) {
        self.members.retain(|m| m.node != node);
    }

    /// Force an announcement round at `now` regardless of the interval.
    pub fn announce(&mut self, net: &mut Network<NodeInfo>, now: u64) {
        for info in &self.members {
            net.broadcast(info.node, info.clone(), now);
        }
        self.last_announce = Some(now);
    }

    /// Advance to tick `now`: announce if due, deliver announcements, update
    /// each observer's neighbour table and return the resulting events.
    pub fn step(&mut self, net: &mut Network<NodeInfo>, now: u64) -> Vec<DiscoveryEvent> {
        let due = match self.last_announce {
            None => true,
            Some(t) => now >= t + self.interval,
        };
        if due {
            self.announce(net, now);
        }
        let mut events = Vec::new();
        for msg in net.deliver_up_to(now) {
            let table = self.known.entry(msg.to).or_default();
            let is_new = !table.contains_key(&msg.payload.node);
            table.insert(msg.payload.node, (msg.payload.clone(), now));
            if is_new {
                events.push(DiscoveryEvent::Appeared {
                    observer: msg.to,
                    info: msg.payload,
                });
            }
        }
        // Expire silent entries.
        for (&observer, table) in self.known.iter_mut() {
            let expired: Vec<NodeId> = table
                .iter()
                .filter(|(_, (_, last))| now.saturating_sub(*last) > self.expiry)
                .map(|(&n, _)| n)
                .collect();
            for node in expired {
                table.remove(&node);
                events.push(DiscoveryEvent::Disappeared { observer, node });
            }
        }
        events
    }

    /// Nodes `observer` currently knows about.
    pub fn known_by(&self, observer: NodeId) -> Vec<&NodeInfo> {
        self.known
            .get(&observer)
            .map(|t| t.values().map(|(info, _)| info).collect())
            .unwrap_or_default()
    }

    /// Number of registered announcers.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Link, Topology};

    fn setup() -> (Network<NodeInfo>, DiscoveryService, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node();
        let b = t.add_node();
        t.connect(a, b, Link::with_latency(1));
        let mut disco = DiscoveryService::new(5, 12);
        disco.register(NodeInfo::new(a, "drone", "us").with_attr("sensor", "optical"));
        disco.register(NodeInfo::new(b, "mule", "uk"));
        (Network::new(t), disco, a, b)
    }

    #[test]
    fn nodes_discover_each_other() {
        let (mut net, mut disco, a, b) = setup();
        let ev0 = disco.step(&mut net, 0); // announces, nothing delivered yet
        assert!(ev0.is_empty());
        let ev1 = disco.step(&mut net, 1);
        assert_eq!(ev1.len(), 2);
        assert_eq!(disco.known_by(a).len(), 1);
        assert_eq!(disco.known_by(a)[0].kind, "mule");
        assert_eq!(disco.known_by(b)[0].attr("sensor"), Some("optical"));
    }

    #[test]
    fn appeared_fires_once_per_node() {
        let (mut net, mut disco, _, _) = setup();
        disco.step(&mut net, 0);
        disco.step(&mut net, 1);
        // Next announcement round: already known, no new events.
        let ev = disco.step(&mut net, 5);
        let ev6 = disco.step(&mut net, 6);
        assert!(ev.is_empty());
        assert!(ev6.is_empty());
    }

    #[test]
    fn silent_nodes_expire() {
        let (mut net, mut disco, a, b) = setup();
        disco.step(&mut net, 0);
        disco.step(&mut net, 1);
        disco.deregister(b);
        // Walk time forward past expiry (announcements from a keep flowing).
        let mut disappeared = false;
        for t in 2..40 {
            for ev in disco.step(&mut net, t) {
                if let DiscoveryEvent::Disappeared { observer, node } = ev {
                    assert_eq!(observer, a);
                    assert_eq!(node, b);
                    disappeared = true;
                }
            }
        }
        assert!(disappeared);
        assert!(disco.known_by(a).is_empty());
    }

    #[test]
    fn partition_blocks_discovery() {
        let (mut net, mut disco, a, b) = setup();
        net.topology_mut().partition(&[a]);
        disco.step(&mut net, 0);
        let ev = disco.step(&mut net, 1);
        assert!(ev.is_empty());
        assert!(disco.known_by(a).is_empty());
        assert!(disco.known_by(b).is_empty());
    }

    #[test]
    fn register_replaces_existing_info() {
        let (_, mut disco, a, _) = setup();
        assert_eq!(disco.member_count(), 2);
        disco.register(NodeInfo::new(a, "upgraded-drone", "us"));
        assert_eq!(disco.member_count(), 2);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        let _ = DiscoveryService::new(0, 10);
    }
}
