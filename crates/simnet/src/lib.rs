//! Simulated multi-organization device network with dynamic discovery.
//!
//! Implements the "Networked" and "Multi-Organizational" Skynet properties of
//! Section III and the discovery substrate of Section IV ("devices discover
//! other devices in the system and decide on the policies to be used in their
//! interaction with those devices"):
//!
//! * [`Topology`] — nodes and links with latency, loss and up/down status;
//! * [`Network`] — a deterministic tick-driven message router over a
//!   topology (generic in the payload type);
//! * [`DiscoveryService`] — periodic announcements propagate [`NodeInfo`]
//!   (kind, organization, attributes) to neighbours, the trigger for
//!   generative policy creation;
//! * [`OrgMap`] — organization domains and cross-organization link policy.
//!
//! Participates in experiments **F1**, **E3**, **E4** (DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use apdm_simnet::{Link, Network, NodeId, Topology};
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node();
//! let b = topo.add_node();
//! topo.connect(a, b, Link::with_latency(2));
//!
//! let mut net: Network<&'static str> = Network::new(topo);
//! net.send(a, b, "hello", 0);
//! assert!(net.deliver_at(1).is_empty());
//! let delivered = net.deliver_at(2);
//! assert_eq!(delivered[0].payload, "hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod discovery;
mod network;
mod org;
mod topology;

pub use discovery::{DiscoveryEvent, DiscoveryService, NodeInfo};
pub use network::{Delivered, Network};
pub use org::OrgMap;
pub use topology::{Link, NodeId, Topology};
