use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{NodeId, Topology};

/// A message delivered by [`Network::deliver_at`].
#[derive(Debug, Clone, PartialEq)]
pub struct Delivered<P> {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// The payload.
    pub payload: P,
    /// Tick at which the message was sent.
    pub sent_at: u64,
}

/// A deterministic tick-driven message router over a [`Topology`].
///
/// Messages sent at tick `t` over a link with latency `l` are delivered when
/// [`deliver_at`](Self::deliver_at)`(t + l)` is called. Loss, duplication
/// and reordering are decided at send time with the network's seeded RNG, so
/// runs are exactly reproducible. Only directly linked nodes can exchange
/// messages; multi-hop routing is the application's business (devices
/// relaying is itself a behaviour the paper's collectives exhibit).
#[derive(Debug)]
pub struct Network<P> {
    topology: Topology,
    rng: StdRng,
    /// Pending messages keyed by delivery tick.
    pending: BTreeMap<u64, Vec<Delivered<P>>>,
    sent: u64,
    lost: u64,
    rejected: u64,
    duplicated: u64,
    reordered: u64,
}

impl<P> Network<P> {
    /// A network over `topology` with a fixed default seed.
    pub fn new(topology: Topology) -> Self {
        Network::with_seed(topology, 0)
    }

    /// A network with an explicit RNG seed (loss decisions depend on it).
    pub fn with_seed(topology: Topology, seed: u64) -> Self {
        Network {
            topology,
            rng: StdRng::seed_from_u64(seed),
            pending: BTreeMap::new(),
            sent: 0,
            lost: 0,
            rejected: 0,
            duplicated: 0,
            reordered: 0,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology (partitions, new links, churn).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Deliver every message due at exactly tick `now`, in send order.
    pub fn deliver_at(&mut self, now: u64) -> Vec<Delivered<P>> {
        self.pending.remove(&now).unwrap_or_default()
    }

    /// Deliver every message due at or before `now` (catch-up after idle
    /// periods), in tick then send order.
    pub fn deliver_up_to(&mut self, now: u64) -> Vec<Delivered<P>> {
        let mut due: Vec<u64> = self.pending.range(..=now).map(|(&t, _)| t).collect();
        due.sort_unstable();
        let mut out = Vec::new();
        for t in due {
            out.extend(self.pending.remove(&t).unwrap_or_default());
        }
        out
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Statistics: `(sent, lost, rejected)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.sent, self.lost, self.rejected)
    }

    /// Fault statistics: `(duplicated, reordered)`.
    pub fn fault_stats(&self) -> (u64, u64) {
        (self.duplicated, self.reordered)
    }
}

impl<P: Clone> Network<P> {
    /// Send `payload` from `from` to `to` at tick `now`. Returns whether the
    /// message entered the network (false: no up link, or lost).
    ///
    /// After surviving the loss draw, a message may be *reordered* (delivered
    /// with 1–3 ticks of extra latency, letting later sends overtake it) and
    /// *duplicated* (a second copy enqueued 1–2 ticks after the first),
    /// according to the link's `reorder` / `dup` rates. Links with zero rates
    /// make no extra RNG draws, so pre-existing seeded loss streams are
    /// unchanged.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: P, now: u64) -> bool {
        let Some(link) = self.topology.link(from, to).copied().filter(|l| l.up) else {
            self.rejected += 1;
            return false;
        };
        self.sent += 1;
        if link.loss > 0.0 && self.rng.random_range(0.0..1.0) < link.loss {
            self.lost += 1;
            return false;
        }
        let mut due = now + link.latency;
        if link.reorder > 0.0 && self.rng.random_range(0.0..1.0) < link.reorder {
            self.reordered += 1;
            due += self.rng.random_range(1..=3u64);
        }
        if link.dup > 0.0 && self.rng.random_range(0.0..1.0) < link.dup {
            self.duplicated += 1;
            let copy_due = due + self.rng.random_range(1..=2u64);
            self.pending.entry(copy_due).or_default().push(Delivered {
                from,
                to,
                payload: payload.clone(),
                sent_at: now,
            });
        }
        self.pending.entry(due).or_default().push(Delivered {
            from,
            to,
            payload,
            sent_at: now,
        });
        true
    }

    /// Broadcast to every up-link neighbour of `from`; returns the number of
    /// messages that entered the network.
    pub fn broadcast(&mut self, from: NodeId, payload: P, now: u64) -> usize {
        let neighbors = self.topology.neighbors(from);
        neighbors
            .into_iter()
            .filter(|&n| self.send(from, n, payload.clone(), now))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Link;

    fn pair(latency: u64, loss: f64) -> (Network<u32>, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node();
        let b = t.add_node();
        t.connect(a, b, Link::with_latency(latency).with_loss(loss));
        (Network::with_seed(t, 7), a, b)
    }

    #[test]
    fn delivery_respects_latency() {
        let (mut net, a, b) = pair(3, 0.0);
        assert!(net.send(a, b, 42, 10));
        assert!(net.deliver_at(12).is_empty());
        let out = net.deliver_at(13);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, 42);
        assert_eq!(out[0].sent_at, 10);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn no_link_rejects() {
        let mut t = Topology::new();
        let a = t.add_node();
        let b = t.add_node();
        let mut net: Network<u32> = Network::new(t);
        assert!(!net.send(a, b, 1, 0));
        assert_eq!(net.stats(), (0, 0, 1));
    }

    #[test]
    fn down_link_rejects() {
        let (mut net, a, b) = pair(1, 0.0);
        net.topology_mut().link_mut(a, b).unwrap().up = false;
        assert!(!net.send(a, b, 1, 0));
    }

    #[test]
    fn total_loss_drops_everything() {
        let (mut net, a, b) = pair(1, 1.0);
        for i in 0..10 {
            assert!(!net.send(a, b, i, 0));
        }
        assert_eq!(net.stats(), (10, 10, 0));
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed| {
            let mut t = Topology::new();
            let a = t.add_node();
            let b = t.add_node();
            t.connect(a, b, Link::with_latency(1).with_loss(0.5));
            let mut net: Network<u32> = Network::with_seed(t, seed);
            (0..32).map(|i| net.send(a, b, i, 0)).collect::<Vec<bool>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds should differ (w.h.p.)");
    }

    #[test]
    fn duplication_is_deterministic_per_seed() {
        let run = |seed| {
            let mut t = Topology::new();
            let a = t.add_node();
            let b = t.add_node();
            t.connect(a, b, Link::with_latency(1).with_dup(0.5));
            let mut net: Network<u32> = Network::with_seed(t, seed);
            for i in 0..32 {
                net.send(a, b, i, 0);
            }
            let deliveries: Vec<u32> = net.deliver_up_to(10).iter().map(|d| d.payload).collect();
            (deliveries, net.fault_stats())
        };
        let (deliveries, (dups, _)) = run(1);
        assert!(dups > 0, "with dup=0.5, 32 sends should duplicate some");
        assert_eq!(deliveries.len(), 32 + dups as usize);
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds should differ (w.h.p.)");
    }

    #[test]
    fn reordering_is_deterministic_per_seed() {
        let run = |seed| {
            let mut t = Topology::new();
            let a = t.add_node();
            let b = t.add_node();
            t.connect(a, b, Link::with_latency(1).with_reorder(0.5));
            let mut net: Network<u32> = Network::with_seed(t, seed);
            for i in 0..32 {
                net.send(a, b, i, i as u64);
            }
            let deliveries: Vec<u32> = net.deliver_up_to(64).iter().map(|d| d.payload).collect();
            (deliveries, net.fault_stats())
        };
        let (deliveries, (_, reordered)) = run(1);
        assert!(
            reordered > 0,
            "with reorder=0.5, 32 sends should reorder some"
        );
        assert_eq!(deliveries.len(), 32, "reordering never drops or copies");
        assert!(
            deliveries.windows(2).any(|w| w[0] > w[1]),
            "some later send should overtake an earlier one: {deliveries:?}"
        );
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds should differ (w.h.p.)");
    }

    #[test]
    fn deliver_up_to_catches_up_in_order() {
        let (mut net, a, b) = pair(1, 0.0);
        net.send(a, b, 1, 0); // due 1
        net.send(a, b, 2, 5); // due 6
        net.send(a, b, 3, 2); // due 3
        let out = net.deliver_up_to(6);
        let payloads: Vec<u32> = out.iter().map(|d| d.payload).collect();
        assert_eq!(payloads, vec![1, 3, 2]);
    }

    #[test]
    fn broadcast_reaches_all_up_neighbors() {
        let mut t = Topology::new();
        let hub = t.add_node();
        let s1 = t.add_node();
        let s2 = t.add_node();
        let s3 = t.add_node();
        t.connect(hub, s1, Link::default());
        t.connect(hub, s2, Link::default());
        t.connect(hub, s3, Link::default());
        t.link_mut(hub, s3).unwrap().up = false;
        let mut net: Network<&str> = Network::new(t);
        assert_eq!(net.broadcast(hub, "ping", 0), 2);
        assert_eq!(net.deliver_at(1).len(), 2);
    }
}
