use serde::{Deserialize, Serialize};
use std::fmt;

use crate::condition::Value;

/// An event a device reacts to: "changes in sensor values, reception of a
/// message from a network connection, etc." (Section V).
///
/// Events have a name and a bag of typed attributes. A rule's event field is
/// a *pattern*: the wildcard name `*` matches any event.
///
/// # Example
///
/// ```
/// use apdm_policy::Event;
///
/// let ev = Event::named("smoke-detected")
///     .with_num("intensity", 0.8)
///     .with_text("sector", "north-ridge");
/// assert_eq!(ev.num("intensity"), Some(0.8));
/// assert!(Event::pattern("*").matches(&ev));
/// assert!(Event::pattern("smoke-detected").matches(&ev));
/// assert!(!Event::pattern("convoy-sighted").matches(&ev));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    name: String,
    attrs: Vec<(String, Value)>,
}

impl Event {
    /// An event with the given name and no attributes.
    pub fn named(name: impl Into<String>) -> Self {
        Event {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// An event *pattern* for use in rules; `*` matches any event name.
    /// (Patterns and events share a representation; only
    /// [`matches`](Self::matches) treats the name specially.)
    pub fn pattern(name: impl Into<String>) -> Self {
        Event::named(name)
    }

    /// The event's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attach a numeric attribute (builder style).
    pub fn with_num(mut self, key: impl Into<String>, value: f64) -> Self {
        self.attrs.push((key.into(), Value::Num(value)));
        self
    }

    /// Attach a text attribute (builder style).
    pub fn with_text(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), Value::Text(value.into())));
        self
    }

    /// Attach a boolean attribute (builder style).
    pub fn with_flag(mut self, key: impl Into<String>, value: bool) -> Self {
        self.attrs.push((key.into(), Value::Flag(value)));
        self
    }

    /// Look up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric attribute, if present and numeric.
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.attr(key) {
            Some(Value::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// Text attribute, if present and textual.
    pub fn text(&self, key: &str) -> Option<&str> {
        match self.attr(key) {
            Some(Value::Text(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Boolean attribute, if present and boolean.
    pub fn flag(&self, key: &str) -> Option<bool> {
        match self.attr(key) {
            Some(Value::Flag(b)) => Some(*b),
            _ => None,
        }
    }

    /// All attributes in insertion order.
    pub fn attrs(&self) -> &[(String, Value)] {
        &self.attrs
    }

    /// Does this pattern match `event`? Name `*` is a wildcard; attributes
    /// play no role in matching (conditions inspect them instead).
    pub fn matches(&self, event: &Event) -> bool {
        self.name == "*" || self.name == event.name
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.attrs.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_accessors_are_typed() {
        let ev = Event::named("e")
            .with_num("n", 1.5)
            .with_text("t", "abc")
            .with_flag("f", true);
        assert_eq!(ev.num("n"), Some(1.5));
        assert_eq!(ev.text("t"), Some("abc"));
        assert_eq!(ev.flag("f"), Some(true));
        // Wrong-type access is None, not a panic.
        assert_eq!(ev.num("t"), None);
        assert_eq!(ev.text("n"), None);
        assert_eq!(ev.flag("missing"), None);
    }

    #[test]
    fn wildcard_pattern_matches_everything() {
        let p = Event::pattern("*");
        assert!(p.matches(&Event::named("a")));
        assert!(p.matches(&Event::named("b").with_num("x", 1.0)));
    }

    #[test]
    fn exact_pattern_matches_name_only() {
        let p = Event::pattern("tick");
        assert!(p.matches(&Event::named("tick").with_num("x", 1.0)));
        assert!(!p.matches(&Event::named("tock")));
    }

    #[test]
    fn display_includes_attrs() {
        let ev = Event::named("smoke").with_num("level", 0.5);
        assert_eq!(ev.to_string(), "smoke{level=0.5}");
        assert_eq!(Event::named("tick").to_string(), "tick");
    }
}
