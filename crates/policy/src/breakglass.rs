//! Break-glass rules: audited emergency escapes from normal policy.
//!
//! Section VI.B: "Break-glass rules are typically used in medical systems to
//! allow operators emergency access to data and IT systems when normal
//! authentication cannot be successfully completed or the access control
//! policies would not allow access. Use of such rules in our context would
//! require support for audits to verify that devices did not abuse the
//! break-glass rules ... it is critical that a device be able to obtain
//! trustworthy information concerning its own status and the environment to
//! allow the device to base its decision of breaking the glass on true
//! information."
//!
//! A [`BreakGlassRule`] authorizes an action that normal policy (or a guard)
//! would forbid, but only when its *emergency condition* holds, only a
//! bounded number of times, and always leaving an audit record. The
//! controller also models the trustworthiness caveat: it evaluates the
//! emergency condition against a possibly-deceived *perceived* state supplied
//! by the caller, so experiments can measure the effect of sensor deception
//! (E2's deception arm).

use std::fmt;

use apdm_statespace::State;

use crate::{Action, AuditKind, AuditLog, Condition, Event};

/// An emergency rule that may override normal policy, with abuse bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakGlassRule {
    name: String,
    emergency: Condition,
    action: Action,
    max_uses: u32,
}

impl BreakGlassRule {
    /// Create a rule allowing `action` whenever `emergency` holds, at most
    /// `max_uses` times.
    pub fn new(
        name: impl Into<String>,
        emergency: Condition,
        action: Action,
        max_uses: u32,
    ) -> Self {
        BreakGlassRule {
            name: name.into(),
            emergency,
            action,
            max_uses,
        }
    }

    /// The rule's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The emergency condition.
    pub fn emergency(&self) -> &Condition {
        &self.emergency
    }

    /// The authorized emergency action.
    pub fn action(&self) -> &Action {
        &self.action
    }

    /// Maximum number of invocations.
    pub fn max_uses(&self) -> u32 {
        self.max_uses
    }
}

impl fmt::Display for BreakGlassRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "break-glass {} (max {} uses)", self.name, self.max_uses)
    }
}

/// Outcome of attempting to break the glass.
#[derive(Debug, Clone, PartialEq)]
pub enum BreakGlassOutcome {
    /// The override is granted; execute the contained action.
    Granted(Action),
    /// No emergency condition held in the perceived state.
    NoEmergency,
    /// The rule matched but its use budget is exhausted.
    Exhausted,
}

impl BreakGlassOutcome {
    /// Was the override granted?
    pub fn is_granted(&self) -> bool {
        matches!(self, BreakGlassOutcome::Granted(_))
    }
}

/// Evaluates break-glass rules, enforces use budgets and writes audits.
///
/// # Example
///
/// ```
/// use apdm_policy::{Action, BreakGlassController, BreakGlassRule, Condition, Event};
/// use apdm_statespace::StateSchema;
///
/// let schema = StateSchema::builder().var("threat", 0.0, 1.0).build();
/// let mut ctl = BreakGlassController::new();
/// ctl.add_rule(BreakGlassRule::new(
///     "evade",
///     Condition::state_at_least(0.into(), 0.9),
///     Action::adjust("emergency-climb", Default::default()),
///     1,
/// ));
/// let danger = schema.state(&[0.95]).unwrap();
/// let outcome = ctl.attempt("drone-1", &Event::named("threat"), &danger, 42);
/// assert!(outcome.is_granted());
/// assert_eq!(ctl.audit().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BreakGlassController {
    rules: Vec<(BreakGlassRule, u32)>,
    audit: AuditLog,
}

impl BreakGlassController {
    /// A controller with no rules.
    pub fn new() -> Self {
        BreakGlassController::default()
    }

    /// Install a break-glass rule.
    pub fn add_rule(&mut self, rule: BreakGlassRule) {
        self.rules.push((rule, 0));
    }

    /// Attempt an emergency override for `subject` given the *perceived*
    /// state. Every grant and every exhausted attempt is audited; a
    /// no-emergency probe is audited too, since probing the glass is itself
    /// suspicious behaviour worth reviewing.
    pub fn attempt(
        &mut self,
        subject: &str,
        event: &Event,
        perceived: &State,
        tick: u64,
    ) -> BreakGlassOutcome {
        for (rule, uses) in &mut self.rules {
            if !rule.emergency.eval(event, perceived) {
                continue;
            }
            if *uses >= rule.max_uses {
                self.audit.record(
                    tick,
                    subject,
                    AuditKind::BreakGlass,
                    format!("DENIED (budget exhausted): {}", rule.name),
                );
                return BreakGlassOutcome::Exhausted;
            }
            *uses += 1;
            self.audit.record(
                tick,
                subject,
                AuditKind::BreakGlass,
                format!("granted: {} (use {}/{})", rule.name, *uses, rule.max_uses),
            );
            return BreakGlassOutcome::Granted(rule.action.clone());
        }
        self.audit.record(
            tick,
            subject,
            AuditKind::BreakGlass,
            "probe with no emergency condition".to_string(),
        );
        BreakGlassOutcome::NoEmergency
    }

    /// Remaining uses of a named rule (`None` for unknown rules).
    pub fn remaining_uses(&self, name: &str) -> Option<u32> {
        self.rules
            .iter()
            .find(|(r, _)| r.name == name)
            .map(|(r, uses)| r.max_uses.saturating_sub(*uses))
    }

    /// The audit trail of all attempts.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::StateSchema;

    fn schema() -> StateSchema {
        StateSchema::builder().var("threat", 0.0, 1.0).build()
    }

    fn controller(max_uses: u32) -> BreakGlassController {
        let mut ctl = BreakGlassController::new();
        ctl.add_rule(BreakGlassRule::new(
            "evade",
            Condition::state_at_least(0.into(), 0.9),
            Action::adjust("climb", Default::default()),
            max_uses,
        ));
        ctl
    }

    #[test]
    fn grant_when_emergency_holds() {
        let mut ctl = controller(2);
        let danger = schema().state(&[0.95]).unwrap();
        match ctl.attempt("d", &Event::named("e"), &danger, 0) {
            BreakGlassOutcome::Granted(a) => assert_eq!(a.name(), "climb"),
            other => panic!("expected grant, got {other:?}"),
        }
        assert_eq!(ctl.remaining_uses("evade"), Some(1));
    }

    #[test]
    fn deny_without_emergency() {
        let mut ctl = controller(2);
        let calm = schema().state(&[0.1]).unwrap();
        assert_eq!(
            ctl.attempt("d", &Event::named("e"), &calm, 0),
            BreakGlassOutcome::NoEmergency
        );
        // Probes are audited.
        assert_eq!(ctl.audit().len(), 1);
        assert!(ctl.audit().entries()[0].detail.contains("probe"));
    }

    #[test]
    fn budget_exhaustion() {
        let mut ctl = controller(1);
        let danger = schema().state(&[0.95]).unwrap();
        assert!(ctl
            .attempt("d", &Event::named("e"), &danger, 0)
            .is_granted());
        assert_eq!(
            ctl.attempt("d", &Event::named("e"), &danger, 1),
            BreakGlassOutcome::Exhausted
        );
        assert_eq!(ctl.remaining_uses("evade"), Some(0));
        assert_eq!(ctl.audit().len(), 2);
        assert!(ctl.audit().entries()[1].detail.contains("DENIED"));
    }

    #[test]
    fn deceived_perception_grants_wrongly() {
        // The paper's caveat: the controller can only judge the *perceived*
        // state. A deception attack that inflates the threat reading tricks
        // the glass into breaking.
        let mut ctl = controller(1);
        let deceived_perception = schema().state(&[0.99]).unwrap(); // reality: 0.0
        assert!(ctl
            .attempt("d", &Event::named("e"), &deceived_perception, 0)
            .is_granted());
    }

    #[test]
    fn unknown_rule_has_no_remaining_uses() {
        let ctl = controller(1);
        assert_eq!(ctl.remaining_uses("nope"), None);
        assert!(!ctl.is_empty());
        assert_eq!(ctl.len(), 1);
    }

    #[test]
    fn every_grant_is_audited() {
        let mut ctl = controller(3);
        let danger = schema().state(&[1.0]).unwrap();
        for t in 0..3 {
            ctl.attempt("d", &Event::named("e"), &danger, t);
        }
        assert_eq!(ctl.audit().count(AuditKind::BreakGlass), 3);
    }
}
