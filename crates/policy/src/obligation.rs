//! Obligations: follow-up actions that accompany a primary action.
//!
//! Section VI.A: "One approach to prevent indirect harm to humans would be to
//! extend the event-condition-action with obligations, that is, further
//! actions that need to be executed after the original action has been
//! executed (or even while the original action is being executed). In the
//! example of the hole, possible obligations would include posting notices
//! indicating the hole, broadcasting messages to humans approaching the
//! location of the hole."
//!
//! The paper also flags "the main interesting challenge is to develop
//! ontologies of such obligations so that devices can automatically select
//! the ones most relevant to their actions" — realized here as
//! [`ObligationCatalog`], which maps action names (and hazard tags) to
//! obligation templates.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::Action;

/// When an obligation must run relative to its primary action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObligationTrigger {
    /// Execute together with the primary action.
    During,
    /// Execute after the primary action, within the deadline.
    After,
}

/// A follow-up action owed after (or during) a primary action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Obligation {
    action: Action,
    trigger: ObligationTrigger,
    /// Ticks after the primary action by which the obligation must complete.
    deadline: u64,
}

impl Obligation {
    /// An obligation running `action` after the primary action, due within
    /// `deadline` ticks.
    pub fn after(action: Action, deadline: u64) -> Self {
        Obligation {
            action,
            trigger: ObligationTrigger::After,
            deadline,
        }
    }

    /// An obligation running `action` concurrently with the primary action.
    pub fn during(action: Action) -> Self {
        Obligation {
            action,
            trigger: ObligationTrigger::During,
            deadline: 0,
        }
    }

    /// The obliged action.
    pub fn action(&self) -> &Action {
        &self.action
    }

    /// When the obligation runs.
    pub fn trigger(&self) -> ObligationTrigger {
        self.trigger
    }

    /// The completion deadline in ticks (0 for `During`).
    pub fn deadline(&self) -> u64 {
        self.deadline
    }
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.trigger {
            ObligationTrigger::During => write!(f, "during: {}", self.action),
            ObligationTrigger::After => {
                write!(f, "after (within {} ticks): {}", self.deadline, self.action)
            }
        }
    }
}

/// Status of a tracked obligation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObligationStatus {
    /// Not yet discharged, deadline not passed.
    Pending,
    /// Discharged in time.
    Fulfilled,
    /// Deadline passed without discharge — an audit-relevant violation.
    Overdue,
}

/// A pending obligation instance tracked by [`ObligationTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedObligation {
    /// Unique instance id.
    pub id: u64,
    /// The obligation owed.
    pub obligation: Obligation,
    /// Tick at which the primary action executed.
    pub incurred_at: u64,
    /// Current status.
    pub status: ObligationStatus,
}

impl TrackedObligation {
    /// Tick by which the obligation must be fulfilled.
    pub fn due_at(&self) -> u64 {
        self.incurred_at + self.obligation.deadline()
    }
}

/// Tracks incurred obligations, fulfilment and deadline violations.
///
/// # Example
///
/// ```
/// use apdm_policy::{Action, Obligation, ObligationStatus, ObligationTracker};
///
/// let mut tracker = ObligationTracker::new();
/// let sign = Obligation::after(Action::adjust("post-warning-sign", Default::default()), 5);
/// let id = tracker.incur(sign, 10);
/// tracker.advance(12);
/// assert_eq!(tracker.status(id), Some(ObligationStatus::Pending));
/// tracker.fulfill(id, 13);
/// assert_eq!(tracker.status(id), Some(ObligationStatus::Fulfilled));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObligationTracker {
    next_id: u64,
    tracked: Vec<TrackedObligation>,
}

impl ObligationTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        ObligationTracker::default()
    }

    /// Record that an obligation was incurred at `tick`; returns its id.
    pub fn incur(&mut self, obligation: Obligation, tick: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.tracked.push(TrackedObligation {
            id,
            obligation,
            incurred_at: tick,
            status: ObligationStatus::Pending,
        });
        id
    }

    /// Mark an obligation fulfilled at `tick`. Fulfilment after the deadline
    /// leaves the obligation `Overdue` — late discharge does not erase the
    /// violation. Returns false for unknown ids.
    pub fn fulfill(&mut self, id: u64, tick: u64) -> bool {
        match self.tracked.iter_mut().find(|t| t.id == id) {
            Some(t) => {
                if t.status == ObligationStatus::Pending && tick <= t.due_at() {
                    t.status = ObligationStatus::Fulfilled;
                } else if t.status == ObligationStatus::Pending {
                    t.status = ObligationStatus::Overdue;
                }
                true
            }
            None => false,
        }
    }

    /// Advance time: mark pending obligations past their deadline overdue.
    pub fn advance(&mut self, tick: u64) {
        for t in &mut self.tracked {
            if t.status == ObligationStatus::Pending && tick > t.due_at() {
                t.status = ObligationStatus::Overdue;
            }
        }
    }

    /// Status of a tracked obligation.
    pub fn status(&self, id: u64) -> Option<ObligationStatus> {
        self.tracked.iter().find(|t| t.id == id).map(|t| t.status)
    }

    /// All pending obligations, in incurral order.
    pub fn pending(&self) -> impl Iterator<Item = &TrackedObligation> {
        self.tracked
            .iter()
            .filter(|t| t.status == ObligationStatus::Pending)
    }

    /// Number of overdue obligations (audit signal).
    pub fn overdue_count(&self) -> usize {
        self.tracked
            .iter()
            .filter(|t| t.status == ObligationStatus::Overdue)
            .count()
    }

    /// Number of tracked obligations of all statuses.
    pub fn len(&self) -> usize {
        self.tracked.len()
    }

    /// True when nothing was ever tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked.is_empty()
    }
}

/// An ontology of obligations: which follow-ups are relevant to which
/// actions, keyed by action name or hazard tag.
///
/// # Example
///
/// ```
/// use apdm_policy::{Action, Obligation};
/// use apdm_policy::obligation::ObligationCatalog;
///
/// let mut catalog = ObligationCatalog::new();
/// catalog.register(
///     "dig-hole",
///     Obligation::after(Action::adjust("post-warning-sign", Default::default()), 2),
/// );
/// catalog.register(
///     "dig-hole",
///     Obligation::during(Action::adjust("broadcast-warning", Default::default())),
/// );
/// assert_eq!(catalog.relevant("dig-hole").len(), 2);
/// assert!(catalog.relevant("take-photo").is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObligationCatalog {
    entries: Vec<(String, Obligation)>,
}

impl ObligationCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        ObligationCatalog::default()
    }

    /// Register an obligation template as relevant to `action_name`.
    pub fn register(&mut self, action_name: impl Into<String>, obligation: Obligation) {
        self.entries.push((action_name.into(), obligation));
    }

    /// Obligations relevant to an action, in registration order.
    pub fn relevant(&self, action_name: &str) -> Vec<&Obligation> {
        self.entries
            .iter()
            .filter(|(k, _)| k == action_name)
            .map(|(_, o)| o)
            .collect()
    }

    /// Total number of registered templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sign() -> Obligation {
        Obligation::after(Action::adjust("post-sign", Default::default()), 5)
    }

    #[test]
    fn during_obligations_have_zero_deadline() {
        let o = Obligation::during(Action::noop());
        assert_eq!(o.trigger(), ObligationTrigger::During);
        assert_eq!(o.deadline(), 0);
    }

    #[test]
    fn fulfil_in_time() {
        let mut t = ObligationTracker::new();
        let id = t.incur(sign(), 10);
        assert!(t.fulfill(id, 15));
        assert_eq!(t.status(id), Some(ObligationStatus::Fulfilled));
        assert_eq!(t.overdue_count(), 0);
    }

    #[test]
    fn advance_marks_overdue() {
        let mut t = ObligationTracker::new();
        let id = t.incur(sign(), 10);
        t.advance(15);
        assert_eq!(t.status(id), Some(ObligationStatus::Pending));
        t.advance(16);
        assert_eq!(t.status(id), Some(ObligationStatus::Overdue));
        assert_eq!(t.overdue_count(), 1);
    }

    #[test]
    fn late_fulfilment_stays_a_violation() {
        let mut t = ObligationTracker::new();
        let id = t.incur(sign(), 10);
        assert!(t.fulfill(id, 99));
        assert_eq!(t.status(id), Some(ObligationStatus::Overdue));
    }

    #[test]
    fn fulfil_unknown_id_is_false() {
        let mut t = ObligationTracker::new();
        assert!(!t.fulfill(42, 0));
    }

    #[test]
    fn pending_iterates_only_pending() {
        let mut t = ObligationTracker::new();
        let a = t.incur(sign(), 0);
        let _b = t.incur(sign(), 0);
        t.fulfill(a, 1);
        assert_eq!(t.pending().count(), 1);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn due_at_adds_deadline() {
        let mut t = ObligationTracker::new();
        let id = t.incur(sign(), 7);
        let tracked = t.pending().find(|o| o.id == id).unwrap();
        assert_eq!(tracked.due_at(), 12);
    }

    #[test]
    fn catalog_lookup_by_action() {
        let mut c = ObligationCatalog::new();
        c.register("dig", sign());
        c.register("dig", Obligation::during(Action::noop()));
        c.register("fly", sign());
        assert_eq!(c.relevant("dig").len(), 2);
        assert_eq!(c.relevant("fly").len(), 1);
        assert!(c.relevant("swim").is_empty());
        assert_eq!(c.len(), 3);
    }
}
