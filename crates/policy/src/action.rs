use serde::{Deserialize, Serialize};
use std::fmt;

use apdm_statespace::StateDelta;

/// The action part of an ECA rule: an actuator invocation.
///
/// Section V: "the action is the invocation of an actuator, resulting in a
/// new state". An action names the actuator, carries the state delta its
/// invocation applies to the device, and flags whether it touches the
/// *physical* world — the property that separates a Skynet-capable system
/// from a purely informational one (Section III, "Physical Aspect").
///
/// # Example
///
/// ```
/// use apdm_policy::Action;
/// use apdm_statespace::StateDelta;
///
/// let dig = Action::adjust("dig-hole", StateDelta::single(0.into(), 1.0)).physical();
/// assert!(dig.is_physical());
/// assert_eq!(dig.name(), "dig-hole");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Action {
    name: String,
    delta: StateDelta,
    physical: bool,
    params: Vec<(String, String)>,
}

impl Action {
    /// The no-op action: "simply choosing the option of taking no action
    /// (which keeps it in the current good state)" (Section VI.B).
    pub fn noop() -> Self {
        Action {
            name: "noop".to_string(),
            delta: StateDelta::empty(),
            physical: false,
            params: Vec::new(),
        }
    }

    /// An action invoking `actuator` with a state delta.
    pub fn adjust(actuator: impl Into<String>, delta: StateDelta) -> Self {
        Action {
            name: actuator.into(),
            delta,
            physical: false,
            params: Vec::new(),
        }
    }

    /// Mark the action as affecting the physical world (builder style).
    pub fn physical(mut self) -> Self {
        self.physical = true;
        self
    }

    /// Attach a named parameter (builder style).
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push((key.into(), value.into()));
        self
    }

    /// The actuator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The state delta this action applies.
    pub fn delta(&self) -> &StateDelta {
        &self.delta
    }

    /// Does the action change the physical environment?
    pub fn is_physical(&self) -> bool {
        self.physical
    }

    /// Is this the no-op?
    pub fn is_noop(&self) -> bool {
        self.name == "noop" && self.delta.is_empty()
    }

    /// Look up a parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All parameters in insertion order.
    pub fn params(&self) -> &[(String, String)] {
        &self.params
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if self.physical {
            write!(f, " [physical]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::VarId;

    #[test]
    fn noop_is_noop() {
        let a = Action::noop();
        assert!(a.is_noop());
        assert!(!a.is_physical());
        assert!(a.delta().is_empty());
    }

    #[test]
    fn adjust_with_delta_is_not_noop() {
        let a = Action::adjust("vent", StateDelta::single(VarId(0), -1.0));
        assert!(!a.is_noop());
        assert_eq!(a.delta().magnitude(), 1.0);
    }

    #[test]
    fn a_noop_named_action_with_empty_delta_is_noop() {
        let a = Action::adjust("noop", StateDelta::empty());
        assert!(a.is_noop());
    }

    #[test]
    fn physical_flag_and_params() {
        let a = Action::adjust("dig", StateDelta::empty())
            .physical()
            .with_param("depth", "2m");
        assert!(a.is_physical());
        assert_eq!(a.param("depth"), Some("2m"));
        assert_eq!(a.param("width"), None);
        assert_eq!(a.params().len(), 1);
    }

    #[test]
    fn display_marks_physical() {
        assert_eq!(Action::noop().to_string(), "noop");
        assert_eq!(
            Action::adjust("dig", StateDelta::empty())
                .physical()
                .to_string(),
            "dig [physical]"
        );
    }
}
