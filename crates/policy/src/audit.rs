//! Append-only audit trail for policy decisions, break-glass invocations and
//! guard interventions.
//!
//! Section VI.B: "Use of such [break-glass] rules in our context would
//! require support for audits to verify that devices did not abuse the
//! break-glass rules. Such audits in turn would require the collection of
//! comprehensive context information."

use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of occurrence an audit entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditKind {
    /// A policy decision was made.
    Decision,
    /// A break-glass rule was invoked.
    BreakGlass,
    /// A guard blocked or rewrote an action.
    GuardIntervention,
    /// An obligation went overdue.
    ObligationViolation,
    /// A device was deactivated.
    Deactivation,
    /// Free-form note (operator annotations, test probes).
    Note,
}

impl fmt::Display for AuditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditKind::Decision => "decision",
            AuditKind::BreakGlass => "break-glass",
            AuditKind::GuardIntervention => "guard-intervention",
            AuditKind::ObligationViolation => "obligation-violation",
            AuditKind::Deactivation => "deactivation",
            AuditKind::Note => "note",
        };
        f.write_str(s)
    }
}

/// One immutable audit record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Monotonic position within the originating log. Stable across
    /// serialization, so downstream consumers (the `apdm-ledger` flight
    /// recorder) can order and deduplicate entries without a parallel
    /// bookkeeping struct.
    pub seq: u64,
    /// Simulation tick of the occurrence.
    pub tick: u64,
    /// Device the entry concerns (free-form id; empty for system entries).
    pub subject: String,
    /// Kind of occurrence.
    pub kind: AuditKind,
    /// Human-readable context ("comprehensive context information").
    pub detail: String,
}

impl fmt::Display for AuditEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={} {} {}] {}",
            self.tick, self.subject, self.kind, self.detail
        )
    }
}

/// An append-only audit log.
///
/// Entries can be appended and read but never modified or removed — the
/// tamper-evidence the paper's audit requirement presumes. (Tamper *attacks*
/// are modelled separately in `apdm-guards::tamper`.)
///
/// # Example
///
/// ```
/// use apdm_policy::{AuditKind, AuditLog};
///
/// let mut log = AuditLog::new();
/// log.record(3, "drone-7", AuditKind::BreakGlass, "emergency climb over crowd");
/// assert_eq!(log.count(AuditKind::BreakGlass), 1);
/// assert_eq!(log.entries_for("drone-7").count(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
    /// Next seq to assign; kept explicit (not `entries.len()`) so merged
    /// logs keep assigning fresh, strictly increasing seqs.
    next_seq: u64,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Append an entry, stamping the next monotonic seq.
    pub fn record(
        &mut self,
        tick: u64,
        subject: impl Into<String>,
        kind: AuditKind,
        detail: impl Into<String>,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(AuditEntry {
            seq,
            tick,
            subject: subject.into(),
            kind,
            detail: detail.into(),
        });
    }

    /// All entries in append order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Entries concerning one subject.
    pub fn entries_for<'a>(&'a self, subject: &'a str) -> impl Iterator<Item = &'a AuditEntry> {
        self.entries.iter().filter(move |e| e.subject == subject)
    }

    /// Entries of one kind.
    pub fn of_kind(&self, kind: AuditKind) -> impl Iterator<Item = &AuditEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// Number of entries of one kind.
    pub fn count(&self, kind: AuditKind) -> usize {
        self.of_kind(kind).count()
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another log's entries (e.g. collecting per-device logs for a
    /// fleet-level audit), keeping overall tick order stable.
    pub fn merge(&mut self, other: &AuditLog) {
        self.entries.extend(other.entries.iter().cloned());
        self.entries.sort_by_key(|e| (e.tick, e.seq));
        self.bump_next_seq();
    }

    fn bump_next_seq(&mut self) {
        let max_seq = self.entries.iter().map(|e| e.seq).max();
        self.next_seq = self.next_seq.max(max_seq.map_or(0, |s| s + 1));
    }
}

impl Extend<AuditEntry> for AuditLog {
    fn extend<T: IntoIterator<Item = AuditEntry>>(&mut self, iter: T) {
        self.entries.extend(iter);
        self.bump_next_seq();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut log = AuditLog::new();
        log.record(1, "d1", AuditKind::Decision, "chose vent");
        log.record(2, "d1", AuditKind::BreakGlass, "emergency");
        log.record(3, "d2", AuditKind::Decision, "chose noop");
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(AuditKind::Decision), 2);
        assert_eq!(log.entries_for("d1").count(), 2);
        assert_eq!(
            log.of_kind(AuditKind::BreakGlass).next().unwrap().subject,
            "d1"
        );
    }

    #[test]
    fn merge_sorts_by_tick() {
        let mut a = AuditLog::new();
        a.record(5, "d1", AuditKind::Note, "late");
        let mut b = AuditLog::new();
        b.record(1, "d2", AuditKind::Note, "early");
        a.merge(&b);
        assert_eq!(a.entries()[0].tick, 1);
        assert_eq!(a.entries()[1].tick, 5);
    }

    #[test]
    fn display_formats_entry() {
        let e = AuditEntry {
            seq: 0,
            tick: 7,
            subject: "mule-2".into(),
            kind: AuditKind::Deactivation,
            detail: "quorum kill".into(),
        };
        assert_eq!(e.to_string(), "[t=7 mule-2 deactivation] quorum kill");
    }

    #[test]
    fn seq_is_monotonic_across_merges() {
        let mut a = AuditLog::new();
        a.record(1, "d1", AuditKind::Note, "one");
        a.record(2, "d1", AuditKind::Note, "two");
        assert_eq!(a.entries()[0].seq, 0);
        assert_eq!(a.entries()[1].seq, 1);
        let mut b = AuditLog::new();
        b.record(1, "d2", AuditKind::Note, "other");
        b.record(3, "d2", AuditKind::Note, "later");
        a.merge(&b);
        // Ties on tick keep seq order stable.
        assert_eq!(a.entries()[0].detail, "one");
        assert_eq!(a.entries()[1].detail, "other");
        // Fresh records keep climbing past everything merged in.
        a.record(9, "d1", AuditKind::Note, "fresh");
        let max_before = a.entries()[..4].iter().map(|e| e.seq).max().unwrap();
        assert!(a.entries().last().unwrap().seq > max_before);
    }

    #[test]
    fn empty_log() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        assert_eq!(log.count(AuditKind::Note), 0);
    }
}
