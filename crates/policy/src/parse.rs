//! A small text language for authoring ECA rules.
//!
//! Section IV's policy templates and grammars ultimately come from humans;
//! this module gives operators a concrete syntax for the rules they write by
//! hand (and a round-trippable serialization for the ones devices generate):
//!
//! ```text
//! rule cool-down priority 5:
//!     on tick
//!     if state[0] >= 80 and event.mode == "auto"
//!     do vent delta 0 = -10 physical param speed = "fast"
//! ```
//!
//! Grammar (one rule; [`parse_rules`] accepts many, separated by blank lines
//! or just adjacency):
//!
//! ```text
//! rule      := "rule" NAME meta* ":" "on" EVENT ("if" cond)? "do" action
//! meta      := "priority" INT | "generated"
//! cond      := and_expr ("or" and_expr)*
//! and_expr  := unary ("and" unary)*
//! unary     := "not" "(" cond ")" | "(" cond ")" | atom
//! atom      := "state" "[" var "]" op NUM
//!            | "event" "." KEY (op NUM | "==" STRING | "!=" STRING
//!                               | "is" ("true"|"false"))
//!            | "always" | "never"
//! action    := NAME ("delta" var "=" NUM ("," var "=" NUM)*)?
//!                   ("physical")? ("param" KEY "=" STRING)*
//! var       := INT            -- variable index, or a name when a schema
//!            | NAME           -- is supplied to `parse_rule_with_schema`
//! ```

use std::fmt;

use apdm_statespace::{StateDelta, StateSchema, VarId};

use crate::{Action, Cmp, Condition, EcaRule, Event, Value};

/// Error from parsing policy text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Approximate token position (0-based) where parsing failed.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Colon,
    Dot,
    Comma,
    Equals,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Op(Cmp),
}

fn tokenize(text: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    let mut pos = 0usize;
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            ':' => {
                chars.next();
                tokens.push(Token::Colon);
            }
            '.' => {
                chars.next();
                tokens.push(Token::Dot);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '[' => {
                chars.next();
                tokens.push(Token::LBracket);
            }
            ']' => {
                chars.next();
                tokens.push(Token::RBracket);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(c) => s.push(c),
                        None => {
                            return Err(ParseError {
                                message: "unterminated string literal".into(),
                                position: pos,
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '>' | '<' | '=' | '!' => {
                chars.next();
                let second_eq = chars.peek() == Some(&'=');
                if second_eq {
                    chars.next();
                }
                let op = match (c, second_eq) {
                    ('>', true) => Token::Op(Cmp::Ge),
                    ('>', false) => Token::Op(Cmp::Gt),
                    ('<', true) => Token::Op(Cmp::Le),
                    ('<', false) => Token::Op(Cmp::Lt),
                    ('=', true) => Token::Op(Cmp::Eq),
                    ('=', false) => Token::Equals,
                    ('!', true) => Token::Op(Cmp::Ne),
                    ('!', false) => {
                        return Err(ParseError {
                            message: "`!` must be followed by `=`".into(),
                            position: pos,
                        })
                    }
                    _ => unreachable!(),
                };
                tokens.push(op);
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: f64 = s.parse().map_err(|_| ParseError {
                    message: format!("invalid number `{s}`"),
                    position: pos,
                })?;
                tokens.push(Token::Number(n));
            }
            c if c.is_alphanumeric() || c == '_' || c == '*' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '-' || d == '*' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    position: pos,
                })
            }
        }
        pos += 1;
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    schema: Option<&'a StateSchema>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn expect_ident(&mut self, expected: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s == expected => Ok(()),
            other => Err(self.err(format!("expected `{expected}`, found {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn var(&mut self) -> Result<VarId, ParseError> {
        match self.next() {
            Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Ok(VarId(n as usize)),
            Some(Token::Ident(name)) => match self.schema {
                Some(schema) => schema
                    .index_of(&name)
                    .ok_or_else(|| self.err(format!("unknown state variable `{name}`"))),
                None => Err(self.err(format!(
                    "named variable `{name}` needs a schema; use an index or parse_rule_with_schema"
                ))),
            },
            other => Err(self.err(format!("expected a variable, found {other:?}"))),
        }
    }

    fn rule(&mut self) -> Result<EcaRule, ParseError> {
        self.expect_ident("rule")?;
        let name = self.ident("a rule name")?;
        let mut priority = 0i32;
        let mut generated = false;
        loop {
            match self.peek() {
                Some(Token::Ident(s)) if s == "priority" => {
                    self.next();
                    match self.next() {
                        Some(Token::Number(n)) if n.fract() == 0.0 => priority = n as i32,
                        other => {
                            return Err(
                                self.err(format!("expected an integer priority, found {other:?}"))
                            )
                        }
                    }
                }
                Some(Token::Ident(s)) if s == "generated" => {
                    self.next();
                    generated = true;
                }
                Some(Token::Colon) => {
                    self.next();
                    break;
                }
                other => {
                    return Err(self.err(format!(
                        "expected `priority`, `generated` or `:`, found {other:?}"
                    )))
                }
            }
        }
        self.expect_ident("on")?;
        let event = self.ident("an event name")?;
        let condition = match self.peek() {
            Some(Token::Ident(s)) if s == "if" => {
                self.next();
                self.cond()?
            }
            _ => Condition::True,
        };
        self.expect_ident("do")?;
        let action = self.action()?;
        let mut rule =
            EcaRule::new(name, Event::pattern(event), condition, action).with_priority(priority);
        if generated {
            rule = rule.generated();
        }
        Ok(rule)
    }

    fn cond(&mut self) -> Result<Condition, ParseError> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Some(Token::Ident(s)) if s == "or") {
            self.next();
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Condition, ParseError> {
        let mut left = self.unary()?;
        while matches!(self.peek(), Some(Token::Ident(s)) if s == "and") {
            self.next();
            let right = self.unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Condition, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == "not" => {
                self.next();
                match self.next() {
                    Some(Token::LParen) => {}
                    other => {
                        return Err(self.err(format!("expected `(` after `not`, found {other:?}")))
                    }
                }
                let inner = self.cond()?;
                match self.next() {
                    Some(Token::RParen) => Ok(inner.negate()),
                    other => Err(self.err(format!("expected `)`, found {other:?}"))),
                }
            }
            Some(Token::LParen) => {
                self.next();
                let inner = self.cond()?;
                match self.next() {
                    Some(Token::RParen) => Ok(inner),
                    other => Err(self.err(format!("expected `)`, found {other:?}"))),
                }
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Condition, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s == "always" => Ok(Condition::True),
            Some(Token::Ident(s)) if s == "never" => Ok(Condition::False),
            Some(Token::Ident(s)) if s == "state" => {
                match self.next() {
                    Some(Token::LBracket) => {}
                    other => return Err(self.err(format!("expected `[`, found {other:?}"))),
                }
                let var = self.var()?;
                match self.next() {
                    Some(Token::RBracket) => {}
                    other => return Err(self.err(format!("expected `]`, found {other:?}"))),
                }
                let op = match self.next() {
                    Some(Token::Op(op)) => op,
                    other => {
                        return Err(self.err(format!("expected a comparison, found {other:?}")))
                    }
                };
                let value = match self.next() {
                    Some(Token::Number(n)) => n,
                    other => return Err(self.err(format!("expected a number, found {other:?}"))),
                };
                Ok(Condition::StateCmp { var, op, value })
            }
            Some(Token::Ident(s)) if s == "event" => {
                match self.next() {
                    Some(Token::Dot) => {}
                    other => return Err(self.err(format!("expected `.`, found {other:?}"))),
                }
                let key = self.ident("an attribute key")?;
                match self.next() {
                    Some(Token::Ident(is)) if is == "is" => {
                        let flag = match self.next() {
                            Some(Token::Ident(b)) if b == "true" => true,
                            Some(Token::Ident(b)) if b == "false" => false,
                            other => {
                                return Err(self
                                    .err(format!("expected `true` or `false`, found {other:?}")))
                            }
                        };
                        Ok(Condition::event_flag(key, flag))
                    }
                    Some(Token::Op(op)) => match self.next() {
                        Some(Token::Number(n)) => Ok(Condition::EventCmp {
                            key,
                            op,
                            value: Value::Num(n),
                        }),
                        Some(Token::Str(s)) if op == Cmp::Eq || op == Cmp::Ne => {
                            Ok(Condition::EventCmp {
                                key,
                                op,
                                value: Value::Text(s),
                            })
                        }
                        other => {
                            Err(self.err(format!("expected a number or string, found {other:?}")))
                        }
                    },
                    other => {
                        Err(self.err(format!("expected a comparison or `is`, found {other:?}")))
                    }
                }
            }
            other => Err(self.err(format!("expected a condition atom, found {other:?}"))),
        }
    }

    fn action(&mut self) -> Result<Action, ParseError> {
        let name = self.ident("an action name")?;
        let mut delta = StateDelta::empty();
        let mut physical = false;
        let mut params: Vec<(String, String)> = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Ident(s)) if s == "delta" => {
                    self.next();
                    loop {
                        let var = self.var()?;
                        match self.next() {
                            Some(Token::Equals) => {}
                            other => return Err(self.err(format!("expected `=`, found {other:?}"))),
                        }
                        let n = match self.next() {
                            Some(Token::Number(n)) => n,
                            other => {
                                return Err(self.err(format!("expected a number, found {other:?}")))
                            }
                        };
                        delta = delta.and(var, n);
                        if matches!(self.peek(), Some(Token::Comma)) {
                            self.next();
                        } else {
                            break;
                        }
                    }
                }
                Some(Token::Ident(s)) if s == "physical" => {
                    self.next();
                    physical = true;
                }
                Some(Token::Ident(s)) if s == "param" => {
                    self.next();
                    let key = self.ident("a parameter key")?;
                    match self.next() {
                        Some(Token::Equals) => {}
                        other => return Err(self.err(format!("expected `=`, found {other:?}"))),
                    }
                    let value = match self.next() {
                        Some(Token::Str(s)) => s,
                        Some(Token::Ident(s)) => s,
                        Some(Token::Number(n)) => n.to_string(),
                        other => return Err(self.err(format!("expected a value, found {other:?}"))),
                    };
                    params.push((key, value));
                }
                _ => break,
            }
        }
        let mut action = Action::adjust(name, delta);
        if physical {
            action = action.physical();
        }
        for (k, v) in params {
            action = action.with_param(k, v);
        }
        Ok(action)
    }
}

/// Parse one rule; state variables must be referenced by index.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
pub fn parse_rule(text: &str) -> Result<EcaRule, ParseError> {
    parse_with(text, None).and_then(|rules| {
        let mut it = rules.into_iter();
        match (it.next(), it.next()) {
            (Some(rule), None) => Ok(rule),
            (Some(_), Some(_)) => Err(ParseError {
                message: "expected exactly one rule; use parse_rules for several".into(),
                position: 0,
            }),
            _ => Err(ParseError {
                message: "no rule found".into(),
                position: 0,
            }),
        }
    })
}

/// Parse one rule with named state variables resolved against `schema`.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax problems or unknown variable names.
pub fn parse_rule_with_schema(text: &str, schema: &StateSchema) -> Result<EcaRule, ParseError> {
    parse_with(text, Some(schema)).and_then(|rules| {
        rules.into_iter().next().ok_or(ParseError {
            message: "no rule found".into(),
            position: 0,
        })
    })
}

/// Parse any number of rules (index-referenced variables).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
pub fn parse_rules(text: &str) -> Result<Vec<EcaRule>, ParseError> {
    parse_with(text, None)
}

fn parse_with(text: &str, schema: Option<&StateSchema>) -> Result<Vec<EcaRule>, ParseError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        schema,
    };
    let mut rules = Vec::new();
    while parser.peek().is_some() {
        rules.push(parser.rule()?);
    }
    Ok(rules)
}

/// Serialize a rule back to the DSL (index-referenced variables). The output
/// round-trips through [`parse_rule`] to an [`EcaRule::equivalent`] rule for
/// every condition shape the DSL can express.
pub fn to_dsl(rule: &EcaRule) -> String {
    let mut out = format!("rule {}", rule.name());
    if rule.priority() != 0 {
        out.push_str(&format!(" priority {}", rule.priority()));
    }
    if rule.is_generated() {
        out.push_str(" generated");
    }
    out.push_str(&format!(": on {}", rule.event().name()));
    if *rule.condition() != Condition::True {
        out.push_str(" if ");
        write_cond(rule.condition(), &mut out);
    }
    out.push_str(&format!(" do {}", rule.action().name()));
    let delta = rule.action().delta();
    if !delta.changes().is_empty() {
        let parts: Vec<String> = delta
            .changes()
            .iter()
            .map(|(var, dv)| format!("{} = {}", var.0, dv))
            .collect();
        out.push_str(&format!(" delta {}", parts.join(", ")));
    }
    if rule.action().is_physical() {
        out.push_str(" physical");
    }
    for (k, v) in rule.action().params() {
        out.push_str(&format!(" param {k} = \"{v}\""));
    }
    out
}

fn write_cond(cond: &Condition, out: &mut String) {
    match cond {
        Condition::True => out.push_str("always"),
        Condition::False => out.push_str("never"),
        Condition::StateCmp { var, op, value } => {
            out.push_str(&format!("state[{}] {op} {value}", var.0));
        }
        Condition::EventCmp { key, op, value } => match value {
            Value::Num(n) => out.push_str(&format!("event.{key} {op} {n}")),
            Value::Text(s) => out.push_str(&format!("event.{key} {op} \"{s}\"")),
            Value::Flag(b) => out.push_str(&format!("event.{key} is {b}")),
        },
        Condition::InRegion(_) => {
            // Regions have no DSL surface; approximate conservatively.
            out.push_str("always");
        }
        Condition::Not(inner) => {
            out.push_str("not (");
            write_cond(inner, out);
            out.push(')');
        }
        Condition::All(cs) => {
            out.push('(');
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                write_cond(c, out);
            }
            out.push(')');
        }
        Condition::Any(cs) => {
            out.push('(');
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" or ");
                }
                write_cond(c, out);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::State;

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("temp", 0.0, 100.0)
            .var("speed", 0.0, 10.0)
            .build()
    }

    fn st(temp: f64, speed: f64) -> State {
        schema().state(&[temp, speed]).unwrap()
    }

    #[test]
    fn minimal_rule() {
        let rule = parse_rule("rule watch: on tick do noop").unwrap();
        assert_eq!(rule.name(), "watch");
        assert_eq!(rule.event().name(), "tick");
        assert_eq!(rule.condition(), &Condition::True);
        assert_eq!(rule.action().name(), "noop");
        assert_eq!(rule.priority(), 0);
        assert!(!rule.is_generated());
    }

    #[test]
    fn full_featured_rule() {
        let rule = parse_rule(
            r#"rule cool-down priority 5 generated:
                on tick
                if state[0] >= 80 and event.mode == "auto"
                do vent delta 0 = -10, 1 = 0.5 physical param speed = "fast""#,
        )
        .unwrap();
        assert_eq!(rule.priority(), 5);
        assert!(rule.is_generated());
        assert!(rule.action().is_physical());
        assert_eq!(rule.action().param("speed"), Some("fast"));
        assert_eq!(rule.action().delta().changes().len(), 2);
        let hot_auto = Event::named("tick").with_text("mode", "auto");
        assert!(rule.fires(&hot_auto, &st(90.0, 0.0)));
        assert!(!rule.fires(&hot_auto, &st(50.0, 0.0)));
        let manual = Event::named("tick").with_text("mode", "manual");
        assert!(!rule.fires(&manual, &st(90.0, 0.0)));
    }

    #[test]
    fn named_variables_resolve_against_schema() {
        let rule = parse_rule_with_schema(
            "rule brake: on tick if state[speed] > 7 do throttle delta speed = -2",
            &schema(),
        )
        .unwrap();
        assert!(rule.fires(&Event::named("tick"), &st(0.0, 8.0)));
        assert!(!rule.fires(&Event::named("tick"), &st(0.0, 5.0)));
        assert_eq!(rule.action().delta().changes()[0].0, VarId(1));
    }

    #[test]
    fn named_variables_without_schema_fail() {
        let err = parse_rule("rule r: on tick if state[speed] > 7 do noop").unwrap_err();
        assert!(err.message.contains("schema"));
    }

    #[test]
    fn unknown_named_variable_fails() {
        let err =
            parse_rule_with_schema("rule r: on tick if state[altitude] > 7 do noop", &schema())
                .unwrap_err();
        assert!(err.message.contains("unknown state variable"));
    }

    #[test]
    fn boolean_connectives_and_precedence() {
        // and binds tighter than or.
        let rule =
            parse_rule("rule r: on e if state[0] >= 8 and state[1] <= 2 or state[0] <= 1 do act")
                .unwrap();
        assert!(rule.fires(&Event::named("e"), &st(9.0, 1.0)));
        assert!(rule.fires(&Event::named("e"), &st(0.5, 9.0)));
        assert!(!rule.fires(&Event::named("e"), &st(9.0, 9.0)));
    }

    #[test]
    fn not_and_parentheses() {
        let rule =
            parse_rule("rule r: on e if not (state[0] >= 5 or state[1] >= 5) do act").unwrap();
        assert!(rule.fires(&Event::named("e"), &st(1.0, 1.0)));
        assert!(!rule.fires(&Event::named("e"), &st(6.0, 1.0)));
    }

    #[test]
    fn event_flag_and_numeric_atoms() {
        let rule = parse_rule("rule r: on e if event.armed is true and event.level >= 0.5 do act")
            .unwrap();
        let yes = Event::named("e")
            .with_flag("armed", true)
            .with_num("level", 0.7);
        let no = Event::named("e")
            .with_flag("armed", false)
            .with_num("level", 0.7);
        assert!(rule.fires(&yes, &st(0.0, 0.0)));
        assert!(!rule.fires(&no, &st(0.0, 0.0)));
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let rule =
            parse_rule("# operator-authored\nrule r: # inline\n  on tick\n  do noop\n").unwrap();
        assert_eq!(rule.name(), "r");
    }

    #[test]
    fn multiple_rules_parse_in_order() {
        let rules = parse_rules("rule a: on tick do x\nrule b priority 2: on tock do y").unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name(), "a");
        assert_eq!(rules[1].priority(), 2);
    }

    #[test]
    fn wildcard_event() {
        let rule = parse_rule("rule any: on * do act").unwrap();
        assert!(rule.event().matches(&Event::named("whatever")));
    }

    #[test]
    fn roundtrip_through_to_dsl() {
        let texts = [
            "rule watch: on tick do noop",
            "rule r priority -3: on e if state[0] >= 8 do act delta 0 = -1 physical",
            r#"rule q generated: on e if event.kind == "convoy" or state[1] < 2 do act param a = "b""#,
            "rule n: on e if not (state[0] == 5) do act",
        ];
        for text in texts {
            let rule = parse_rule(text).unwrap();
            let reparsed = parse_rule(&to_dsl(&rule)).unwrap();
            assert!(
                rule.equivalent(&reparsed),
                "roundtrip failed for `{text}` -> `{}`",
                to_dsl(&rule)
            );
        }
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_rule("on tick do x").is_err());
        assert!(parse_rule("rule r on tick do x").is_err()); // missing colon
        assert!(parse_rule("rule r: on tick if state[0] do x").is_err()); // missing op
        assert!(parse_rule("rule r: on tick do").is_err()); // missing action
        assert!(parse_rule(r#"rule r: on tick if event.k == "unterminated do x"#).is_err());
        assert!(parse_rule("rule r: on tick if state[0] > 1 do x trailing ( ").is_err());
    }

    #[test]
    fn error_display_mentions_position() {
        let err = parse_rule("rule r do").unwrap_err();
        assert!(err.to_string().contains("parse error at token"));
    }
}
