use std::collections::BTreeMap;
use std::fmt;

use apdm_statespace::State;

use crate::{Action, EcaRule, Event, Obligation, RuleId};

/// The outcome of evaluating an event against a policy set: the winning
/// rule's action and obligations.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    rule: RuleId,
    rule_name: String,
    action: Action,
    obligations: Vec<Obligation>,
    /// All rules that matched (winner first) — exposed for audits and
    /// conflict diagnostics.
    matched: Vec<RuleId>,
}

impl Decision {
    /// The rule that won conflict resolution.
    pub fn rule(&self) -> RuleId {
        self.rule
    }

    /// Name of the winning rule.
    pub fn rule_name(&self) -> &str {
        &self.rule_name
    }

    /// The action to execute.
    pub fn action(&self) -> &Action {
        &self.action
    }

    /// Obligations incurred by executing the action.
    pub fn obligations(&self) -> &[Obligation] {
        &self.obligations
    }

    /// Every rule that matched, winner first.
    pub fn matched(&self) -> &[RuleId] {
        &self.matched
    }

    /// Did more than one rule match (i.e. was conflict resolution needed)?
    pub fn had_conflict(&self) -> bool {
        self.matched.len() > 1
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.rule_name, self.action)
    }
}

/// A deterministic ECA policy engine.
///
/// Holds a set of [`EcaRule`]s and, for each `(event, state)` pair, produces
/// at most one [`Decision`]. Conflict resolution is total and deterministic:
///
/// 1. higher **priority** wins;
/// 2. ties break toward the more **specific** condition (more atoms);
/// 3. remaining ties break toward the **earlier registered** rule.
///
/// Determinism matters for the reproduction: the paper's guards must wrap a
/// well-defined decision, and audits must be able to replay it.
#[derive(Debug, Clone, Default)]
pub struct PolicyEngine {
    next_id: u64,
    rules: BTreeMap<RuleId, EcaRule>,
}

impl PolicyEngine {
    /// An empty engine.
    pub fn new() -> Self {
        PolicyEngine::default()
    }

    /// Add a rule; returns its id.
    pub fn add_rule(&mut self, rule: EcaRule) -> RuleId {
        let id = RuleId(self.next_id);
        self.next_id += 1;
        self.rules.insert(id, rule);
        id
    }

    /// Add a rule unless an equivalent one is already present; returns the
    /// new or existing id. Used when devices share policies (Section IV).
    pub fn add_rule_deduped(&mut self, rule: EcaRule) -> RuleId {
        if let Some((&id, _)) = self.rules.iter().find(|(_, r)| r.equivalent(&rule)) {
            return id;
        }
        self.add_rule(rule)
    }

    /// Remove a rule; returns it if present.
    pub fn remove_rule(&mut self, id: RuleId) -> Option<EcaRule> {
        self.rules.remove(&id)
    }

    /// Look up a rule.
    pub fn rule(&self, id: RuleId) -> Option<&EcaRule> {
        self.rules.get(&id)
    }

    /// Iterate rules in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &EcaRule)> {
        self.rules.iter().map(|(&id, r)| (id, r))
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of machine-generated rules (Section IV provenance).
    pub fn generated_count(&self) -> usize {
        self.rules.values().filter(|r| r.is_generated()).count()
    }

    /// Evaluate an event in a state; `None` when no rule matches.
    pub fn decide(&self, event: &Event, state: &State) -> Option<Decision> {
        let mut matched: Vec<(RuleId, &EcaRule)> = self
            .rules
            .iter()
            .filter(|(_, r)| r.fires(event, state))
            .map(|(&id, r)| (id, r))
            .collect();
        if matched.is_empty() {
            return None;
        }
        // Priority desc, specificity desc, registration (id) asc.
        matched.sort_by(|(ida, a), (idb, b)| {
            b.priority()
                .cmp(&a.priority())
                .then_with(|| {
                    b.condition()
                        .specificity()
                        .cmp(&a.condition().specificity())
                })
                .then_with(|| ida.cmp(idb))
        });
        let (winner_id, winner) = matched[0];
        Some(Decision {
            rule: winner_id,
            rule_name: winner.name().to_string(),
            action: winner.action().clone(),
            obligations: winner.obligations().to_vec(),
            matched: matched.iter().map(|(id, _)| *id).collect(),
        })
    }

    /// Merge another engine's rules into this one (deduplicating
    /// equivalents); returns how many rules were actually added.
    pub fn absorb(&mut self, other: &PolicyEngine) -> usize {
        let before = self.len();
        for (_, rule) in other.iter() {
            self.add_rule_deduped(rule.clone());
        }
        self.len() - before
    }
}

impl FromIterator<EcaRule> for PolicyEngine {
    fn from_iter<T: IntoIterator<Item = EcaRule>>(iter: T) -> Self {
        let mut engine = PolicyEngine::new();
        for rule in iter {
            engine.add_rule(rule);
        }
        engine
    }
}

impl Extend<EcaRule> for PolicyEngine {
    fn extend<T: IntoIterator<Item = EcaRule>>(&mut self, iter: T) {
        for rule in iter {
            self.add_rule(rule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Condition;
    use apdm_statespace::{StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder().var("t", 0.0, 100.0).build()
    }

    fn rule(name: &str, prio: i32, cond: Condition, act: &str) -> EcaRule {
        EcaRule::new(
            name,
            Event::pattern("tick"),
            cond,
            Action::adjust(act, StateDelta::empty()),
        )
        .with_priority(prio)
    }

    #[test]
    fn no_match_returns_none() {
        let engine = PolicyEngine::new();
        let s = schema().state(&[50.0]).unwrap();
        assert!(engine.decide(&Event::named("tick"), &s).is_none());
    }

    #[test]
    fn single_match_wins() {
        let mut engine = PolicyEngine::new();
        engine.add_rule(rule("a", 0, Condition::True, "act-a"));
        let s = schema().state(&[50.0]).unwrap();
        let d = engine.decide(&Event::named("tick"), &s).unwrap();
        assert_eq!(d.action().name(), "act-a");
        assert!(!d.had_conflict());
    }

    #[test]
    fn priority_beats_specificity() {
        let mut engine = PolicyEngine::new();
        engine.add_rule(rule(
            "specific",
            0,
            Condition::state_at_least(VarId(0), 10.0).and(Condition::state_at_most(VarId(0), 90.0)),
            "specific-act",
        ));
        engine.add_rule(rule("loud", 5, Condition::True, "loud-act"));
        let s = schema().state(&[50.0]).unwrap();
        let d = engine.decide(&Event::named("tick"), &s).unwrap();
        assert_eq!(d.action().name(), "loud-act");
        assert!(d.had_conflict());
        assert_eq!(d.matched().len(), 2);
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut engine = PolicyEngine::new();
        engine.add_rule(rule("generic", 1, Condition::True, "generic-act"));
        engine.add_rule(rule(
            "specific",
            1,
            Condition::state_at_least(VarId(0), 0.0),
            "specific-act",
        ));
        let s = schema().state(&[50.0]).unwrap();
        let d = engine.decide(&Event::named("tick"), &s).unwrap();
        assert_eq!(d.action().name(), "specific-act");
    }

    #[test]
    fn registration_order_breaks_remaining_ties() {
        let mut engine = PolicyEngine::new();
        engine.add_rule(rule("first", 0, Condition::True, "first-act"));
        engine.add_rule(rule("second", 0, Condition::True, "second-act"));
        let s = schema().state(&[50.0]).unwrap();
        let d = engine.decide(&Event::named("tick"), &s).unwrap();
        assert_eq!(d.action().name(), "first-act");
    }

    #[test]
    fn decide_is_deterministic() {
        let mut engine = PolicyEngine::new();
        for i in 0..20 {
            engine.add_rule(rule(&format!("r{i}"), i % 3, Condition::True, "act"));
        }
        let s = schema().state(&[1.0]).unwrap();
        let first = engine.decide(&Event::named("tick"), &s).unwrap();
        for _ in 0..10 {
            assert_eq!(engine.decide(&Event::named("tick"), &s).unwrap(), first);
        }
    }

    #[test]
    fn remove_rule_stops_matching() {
        let mut engine = PolicyEngine::new();
        let id = engine.add_rule(rule("a", 0, Condition::True, "act"));
        let s = schema().state(&[1.0]).unwrap();
        assert!(engine.decide(&Event::named("tick"), &s).is_some());
        assert!(engine.remove_rule(id).is_some());
        assert!(engine.decide(&Event::named("tick"), &s).is_none());
        assert!(engine.remove_rule(id).is_none());
    }

    #[test]
    fn dedup_add_returns_existing_id() {
        let mut engine = PolicyEngine::new();
        let a = engine.add_rule_deduped(rule("a", 0, Condition::True, "act"));
        let b = engine.add_rule_deduped(rule("renamed-same", 0, Condition::True, "act"));
        assert_eq!(a, b);
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn absorb_merges_without_duplicates() {
        let mut a = PolicyEngine::new();
        a.add_rule(rule("x", 0, Condition::True, "act-x"));
        let mut b = PolicyEngine::new();
        b.add_rule(rule("x2", 0, Condition::True, "act-x")); // equivalent to x
        b.add_rule(rule("y", 0, Condition::True, "act-y"));
        let added = a.absorb(&b);
        assert_eq!(added, 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn generated_count_tracks_provenance() {
        let mut engine = PolicyEngine::new();
        engine.add_rule(rule("h", 0, Condition::True, "a"));
        engine.add_rule(rule("g", 0, Condition::False, "b").generated());
        assert_eq!(engine.generated_count(), 1);
    }

    #[test]
    fn from_iterator_and_extend() {
        let rules = vec![
            rule("a", 0, Condition::True, "x"),
            rule("b", 0, Condition::True, "y"),
        ];
        let mut engine: PolicyEngine = rules.into_iter().collect();
        assert_eq!(engine.len(), 2);
        engine.extend(vec![rule("c", 0, Condition::True, "z")]);
        assert_eq!(engine.len(), 3);
    }
}
