//! Named policy sets: the unit of policy exchange between devices.
//!
//! Section IV: devices "share the information and policies they generate with
//! other devices". A [`PolicySet`] is a named, versioned bundle of rules that
//! can be diffed, merged and checked for conflicts before installation.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{EcaRule, PolicyEngine};

/// A named, versioned bundle of ECA rules.
///
/// # Example
///
/// ```
/// use apdm_policy::{Action, Condition, EcaRule, Event, PolicySet};
///
/// let mut set = PolicySet::new("surveillance-v1");
/// set.push(EcaRule::new(
///     "report-smoke",
///     Event::pattern("smoke-detected"),
///     Condition::True,
///     Action::adjust("radio-report", Default::default()),
/// ));
/// assert_eq!(set.len(), 1);
/// let engine = set.to_engine();
/// assert_eq!(engine.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySet {
    name: String,
    version: u32,
    rules: Vec<EcaRule>,
}

impl PolicySet {
    /// An empty set at version 1.
    pub fn new(name: impl Into<String>) -> Self {
        PolicySet {
            name: name.into(),
            version: 1,
            rules: Vec::new(),
        }
    }

    /// The set's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The set's version; bumped by mutating operations.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Append a rule (bumps version).
    pub fn push(&mut self, rule: EcaRule) {
        self.rules.push(rule);
        self.version += 1;
    }

    /// The rules in order.
    pub fn rules(&self) -> &[EcaRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the set has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Materialize into a fresh [`PolicyEngine`].
    pub fn to_engine(&self) -> PolicyEngine {
        self.rules.iter().cloned().collect()
    }

    /// Merge rules from `other` that have no equivalent here (bumps version
    /// when anything was added); returns the number added.
    pub fn merge(&mut self, other: &PolicySet) -> usize {
        let mut added = 0;
        for rule in &other.rules {
            if !self.rules.iter().any(|r| r.equivalent(rule)) {
                self.rules.push(rule.clone());
                added += 1;
            }
        }
        if added > 0 {
            self.version += 1;
        }
        added
    }

    /// Rules present in `other` but not here (by equivalence) — the diff a
    /// device inspects before accepting shared policies.
    pub fn missing_from<'a>(&self, other: &'a PolicySet) -> Vec<&'a EcaRule> {
        other
            .rules
            .iter()
            .filter(|r| !self.rules.iter().any(|mine| mine.equivalent(r)))
            .collect()
    }

    /// Pairs of rules that *potentially conflict*: same event pattern and
    /// same priority but different actions. Conflicting pairs are legal (the
    /// engine resolves them deterministically) but worth surfacing to audits
    /// and to the formation check.
    pub fn potential_conflicts(&self) -> Vec<(&EcaRule, &EcaRule)> {
        let mut out = Vec::new();
        for (i, a) in self.rules.iter().enumerate() {
            for b in &self.rules[i + 1..] {
                if a.event() == b.event()
                    && a.priority() == b.priority()
                    && a.action() != b.action()
                {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Two sets are equivalent when each rule has an equivalent counterpart
    /// in the other (names/order/versions ignored).
    pub fn equivalent(&self, other: &PolicySet) -> bool {
        self.rules.len() == other.rules.len()
            && self
                .rules
                .iter()
                .all(|r| other.rules.iter().any(|o| o.equivalent(r)))
            && other
                .rules
                .iter()
                .all(|r| self.rules.iter().any(|m| m.equivalent(r)))
    }
}

impl fmt::Display for PolicySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} v{} ({} rules)",
            self.name,
            self.version,
            self.rules.len()
        )
    }
}

impl Extend<EcaRule> for PolicySet {
    fn extend<T: IntoIterator<Item = EcaRule>>(&mut self, iter: T) {
        for rule in iter {
            self.push(rule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, Condition, Event};

    fn rule(name: &str, event: &str, action: &str, prio: i32) -> EcaRule {
        EcaRule::new(
            name,
            Event::pattern(event),
            Condition::True,
            Action::adjust(action, Default::default()),
        )
        .with_priority(prio)
    }

    #[test]
    fn push_bumps_version() {
        let mut s = PolicySet::new("s");
        assert_eq!(s.version(), 1);
        s.push(rule("a", "e", "x", 0));
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn merge_dedups_by_equivalence() {
        let mut a = PolicySet::new("a");
        a.push(rule("r1", "e", "x", 0));
        let mut b = PolicySet::new("b");
        b.push(rule("r1-renamed", "e", "x", 0)); // equivalent
        b.push(rule("r2", "e", "y", 0));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
        // Merging again adds nothing and keeps the version stable.
        let v = a.version();
        assert_eq!(a.merge(&b), 0);
        assert_eq!(a.version(), v);
    }

    #[test]
    fn missing_from_reports_diff() {
        let mut a = PolicySet::new("a");
        a.push(rule("r1", "e", "x", 0));
        let mut b = PolicySet::new("b");
        b.push(rule("r1", "e", "x", 0));
        b.push(rule("r2", "e2", "y", 0));
        let missing = a.missing_from(&b);
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].name(), "r2");
    }

    #[test]
    fn potential_conflicts_same_event_same_priority_diff_action() {
        let mut s = PolicySet::new("s");
        s.push(rule("a", "e", "x", 0));
        s.push(rule("b", "e", "y", 0));
        s.push(rule("c", "e", "z", 1)); // different priority: engine resolves
        assert_eq!(s.potential_conflicts().len(), 1);
    }

    #[test]
    fn equivalence_is_order_insensitive() {
        let mut a = PolicySet::new("a");
        a.push(rule("r1", "e", "x", 0));
        a.push(rule("r2", "e2", "y", 0));
        let mut b = PolicySet::new("b");
        b.push(rule("rr2", "e2", "y", 0));
        b.push(rule("rr1", "e", "x", 0));
        assert!(a.equivalent(&b));
        b.push(rule("r3", "e3", "z", 0));
        assert!(!a.equivalent(&b));
    }

    #[test]
    fn to_engine_installs_all_rules() {
        let mut s = PolicySet::new("s");
        s.extend(vec![rule("a", "e", "x", 0), rule("b", "e2", "y", 0)]);
        assert_eq!(s.to_engine().len(), 2);
    }
}
