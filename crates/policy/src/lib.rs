//! Event–condition–action policy engine with obligations and break-glass
//! rules.
//!
//! Implements the policy substrate of *How to Prevent Skynet From Forming*
//! (Calo et al., ICDCS 2018), Sections IV–VI:
//!
//! * "A policy in this context is an **event-condition-action rule** directing
//!   the devices to take specific actions when an event happens and the
//!   conditions specified hold true" ([`EcaRule`], [`PolicyEngine`]).
//! * "One approach to prevent indirect harm to humans would be to extend the
//!   event-condition-action with **obligations**, that is, further actions
//!   that need to be executed after the original action" ([`Obligation`],
//!   [`ObligationTracker`]).
//! * "**Break-glass rules** are typically used ... to allow operators
//!   emergency access ... Use of such rules in our context would require
//!   support for **audits**" ([`breakglass`], [`AuditLog`]).
//!
//! Participates in experiments **F2**, **E1**, **E2**, **G1** (DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use apdm_policy::{Action, Condition, EcaRule, Event, PolicyEngine};
//! use apdm_statespace::{StateDelta, StateSchema};
//!
//! let schema = StateSchema::builder().var("temp", 0.0, 100.0).build();
//! let mut engine = PolicyEngine::new();
//! engine.add_rule(
//!     EcaRule::new(
//!         "cool-down",
//!         Event::pattern("tick"),
//!         Condition::state_at_least(0.into(), 80.0),
//!         Action::adjust("vent", StateDelta::single(0.into(), -10.0)),
//!     )
//!     .with_priority(10),
//! );
//! let hot = schema.state(&[90.0]).unwrap();
//! let decision = engine.decide(&Event::named("tick"), &hot);
//! assert_eq!(decision.unwrap().action().name(), "vent");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod condition;
mod engine;
mod event;
mod rule;

pub mod audit;
pub mod breakglass;
pub mod obligation;
pub mod parse;
pub mod set;

pub use action::Action;
pub use audit::{AuditEntry, AuditKind, AuditLog};
pub use breakglass::{BreakGlassController, BreakGlassOutcome, BreakGlassRule};
pub use condition::{Cmp, Condition, Value};
pub use engine::{Decision, PolicyEngine};
pub use event::Event;
pub use obligation::{Obligation, ObligationStatus, ObligationTracker, ObligationTrigger};
pub use parse::{parse_rule, parse_rule_with_schema, parse_rules, to_dsl, ParseError};
pub use rule::{EcaRule, RuleId};
pub use set::PolicySet;
