use serde::{Deserialize, Serialize};
use std::fmt;

use apdm_statespace::{Region, State, VarId};

use crate::Event;

/// A typed attribute value carried by [`Event`]s and compared by conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A numeric value.
    Num(f64),
    /// A text value.
    Text(String),
    /// A boolean value.
    Flag(bool),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Flag(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for Value {
    fn from(value: f64) -> Self {
        Value::Num(value)
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value::Text(value.to_string())
    }
}

impl From<bool> for Value {
    fn from(value: bool) -> Self {
        Value::Flag(value)
    }
}

/// Comparison operator for condition atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cmp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Greater than or equal.
    Ge,
    /// Strictly greater than.
    Gt,
}

impl Cmp {
    /// Apply the comparison to two floats.
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Gt => lhs > rhs,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
            Cmp::Ge => ">=",
            Cmp::Gt => ">",
        };
        f.write_str(s)
    }
}

/// The condition of an ECA rule: a boolean expression over the device's
/// current state and the triggering event's attributes.
///
/// Section V: "the condition is the current state of the device". Conditions
/// also inspect event attributes, which lets generated policies specialize on
/// what they discover (Section IV).
///
/// # Example
///
/// ```
/// use apdm_policy::{Condition, Event};
/// use apdm_statespace::StateSchema;
///
/// let schema = StateSchema::builder().var("battery", 0.0, 1.0).build();
/// let cond = Condition::state_at_most(0.into(), 0.2)
///     .and(Condition::event_flag("docked", false));
/// let low = schema.state(&[0.1]).unwrap();
/// let ev = Event::named("tick").with_flag("docked", false);
/// assert!(cond.eval(&ev, &low));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Compare a state variable to a constant.
    StateCmp {
        /// Variable to inspect.
        var: VarId,
        /// Comparison operator.
        op: Cmp,
        /// Constant to compare against.
        value: f64,
    },
    /// Compare an event attribute to a constant. Missing attributes and type
    /// mismatches evaluate to false ([`Cmp::Ne`] to true — the attribute
    /// indeed differs).
    EventCmp {
        /// Attribute key.
        key: String,
        /// Comparison operator (numeric compares require numeric attrs;
        /// text/flag attrs support only `Eq`/`Ne`).
        op: Cmp,
        /// Constant to compare against.
        value: Value,
    },
    /// True when the device state lies in a region.
    InRegion(Region),
    /// Negation.
    Not(Box<Condition>),
    /// Conjunction (empty = true).
    All(Vec<Condition>),
    /// Disjunction (empty = false).
    Any(Vec<Condition>),
}

impl Condition {
    /// `state[var] >= value`.
    pub fn state_at_least(var: VarId, value: f64) -> Condition {
        Condition::StateCmp {
            var,
            op: Cmp::Ge,
            value,
        }
    }

    /// `state[var] <= value`.
    pub fn state_at_most(var: VarId, value: f64) -> Condition {
        Condition::StateCmp {
            var,
            op: Cmp::Le,
            value,
        }
    }

    /// `event[key] == value` for a numeric attribute.
    pub fn event_num(key: impl Into<String>, op: Cmp, value: f64) -> Condition {
        Condition::EventCmp {
            key: key.into(),
            op,
            value: Value::Num(value),
        }
    }

    /// `event[key] == value` for a text attribute.
    pub fn event_text(key: impl Into<String>, value: impl Into<String>) -> Condition {
        Condition::EventCmp {
            key: key.into(),
            op: Cmp::Eq,
            value: Value::Text(value.into()),
        }
    }

    /// `event[key] == value` for a boolean attribute.
    pub fn event_flag(key: impl Into<String>, value: bool) -> Condition {
        Condition::EventCmp {
            key: key.into(),
            op: Cmp::Eq,
            value: Value::Flag(value),
        }
    }

    /// Conjunction (builder style).
    pub fn and(self, other: Condition) -> Condition {
        match self {
            Condition::All(mut cs) => {
                cs.push(other);
                Condition::All(cs)
            }
            c => Condition::All(vec![c, other]),
        }
    }

    /// Disjunction (builder style).
    pub fn or(self, other: Condition) -> Condition {
        match self {
            Condition::Any(mut cs) => {
                cs.push(other);
                Condition::Any(cs)
            }
            c => Condition::Any(vec![c, other]),
        }
    }

    /// Negation (builder style).
    pub fn negate(self) -> Condition {
        Condition::Not(Box::new(self))
    }

    /// Evaluate against an event and the device's current state.
    pub fn eval(&self, event: &Event, state: &State) -> bool {
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::StateCmp { var, op, value } => {
                state.get(*var).map(|v| op.eval(v, *value)).unwrap_or(false)
            }
            Condition::EventCmp { key, op, value } => match (event.attr(key), value) {
                (Some(Value::Num(a)), Value::Num(b)) => op.eval(*a, *b),
                (Some(Value::Text(a)), Value::Text(b)) => match op {
                    Cmp::Eq => a == b,
                    Cmp::Ne => a != b,
                    _ => false,
                },
                (Some(Value::Flag(a)), Value::Flag(b)) => match op {
                    Cmp::Eq => a == b,
                    Cmp::Ne => a != b,
                    _ => false,
                },
                // Missing or mistyped attribute: only Ne holds.
                _ => *op == Cmp::Ne,
            },
            Condition::InRegion(region) => region.contains(state),
            Condition::Not(c) => !c.eval(event, state),
            Condition::All(cs) => cs.iter().all(|c| c.eval(event, state)),
            Condition::Any(cs) => cs.iter().any(|c| c.eval(event, state)),
        }
    }

    /// Number of atomic predicates — used as the *specificity* tiebreak in
    /// conflict resolution: a rule constraining more facts wins over a more
    /// generic one.
    pub fn specificity(&self) -> usize {
        match self {
            Condition::True | Condition::False => 0,
            Condition::StateCmp { .. } | Condition::EventCmp { .. } | Condition::InRegion(_) => 1,
            Condition::Not(c) => c.specificity(),
            Condition::All(cs) | Condition::Any(cs) => cs.iter().map(|c| c.specificity()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::StateSchema;

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("x", 0.0, 10.0)
            .var("y", 0.0, 10.0)
            .build()
    }

    fn st(x: f64, y: f64) -> State {
        schema().state(&[x, y]).unwrap()
    }

    fn ev() -> Event {
        Event::named("e")
            .with_num("n", 5.0)
            .with_text("t", "hi")
            .with_flag("f", true)
    }

    #[test]
    fn cmp_eval_all_operators() {
        assert!(Cmp::Lt.eval(1.0, 2.0));
        assert!(Cmp::Le.eval(2.0, 2.0));
        assert!(Cmp::Eq.eval(2.0, 2.0));
        assert!(Cmp::Ne.eval(1.0, 2.0));
        assert!(Cmp::Ge.eval(2.0, 2.0));
        assert!(Cmp::Gt.eval(3.0, 2.0));
        assert!(!Cmp::Gt.eval(2.0, 2.0));
    }

    #[test]
    fn state_comparisons() {
        let c = Condition::state_at_least(VarId(0), 5.0);
        assert!(c.eval(&ev(), &st(5.0, 0.0)));
        assert!(!c.eval(&ev(), &st(4.9, 0.0)));
        // Unknown variable -> false.
        let c = Condition::StateCmp {
            var: VarId(9),
            op: Cmp::Ge,
            value: 0.0,
        };
        assert!(!c.eval(&ev(), &st(0.0, 0.0)));
    }

    #[test]
    fn event_numeric_comparisons() {
        let c = Condition::event_num("n", Cmp::Gt, 4.0);
        assert!(c.eval(&ev(), &st(0.0, 0.0)));
        let c = Condition::event_num("n", Cmp::Gt, 6.0);
        assert!(!c.eval(&ev(), &st(0.0, 0.0)));
    }

    #[test]
    fn event_text_and_flag_support_eq_ne_only() {
        assert!(Condition::event_text("t", "hi").eval(&ev(), &st(0.0, 0.0)));
        assert!(!Condition::event_text("t", "bye").eval(&ev(), &st(0.0, 0.0)));
        assert!(Condition::event_flag("f", true).eval(&ev(), &st(0.0, 0.0)));
        let ordered_text = Condition::EventCmp {
            key: "t".into(),
            op: Cmp::Lt,
            value: Value::Text("zz".into()),
        };
        assert!(!ordered_text.eval(&ev(), &st(0.0, 0.0)));
    }

    #[test]
    fn missing_attribute_only_satisfies_ne() {
        let ne = Condition::EventCmp {
            key: "absent".into(),
            op: Cmp::Ne,
            value: Value::Num(1.0),
        };
        let eq = Condition::EventCmp {
            key: "absent".into(),
            op: Cmp::Eq,
            value: Value::Num(1.0),
        };
        assert!(ne.eval(&ev(), &st(0.0, 0.0)));
        assert!(!eq.eval(&ev(), &st(0.0, 0.0)));
    }

    #[test]
    fn mistyped_attribute_behaves_like_missing() {
        let c = Condition::event_num("t", Cmp::Eq, 1.0);
        assert!(!c.eval(&ev(), &st(0.0, 0.0)));
    }

    #[test]
    fn region_condition() {
        let c = Condition::InRegion(Region::rect(&[(2.0, 8.0), (2.0, 8.0)]));
        assert!(c.eval(&ev(), &st(5.0, 5.0)));
        assert!(!c.eval(&ev(), &st(1.0, 5.0)));
    }

    #[test]
    fn connectives() {
        let c =
            Condition::state_at_least(VarId(0), 5.0).and(Condition::state_at_most(VarId(1), 5.0));
        assert!(c.eval(&ev(), &st(6.0, 4.0)));
        assert!(!c.eval(&ev(), &st(6.0, 6.0)));

        let c =
            Condition::state_at_least(VarId(0), 9.0).or(Condition::state_at_most(VarId(0), 1.0));
        assert!(c.eval(&ev(), &st(0.5, 0.0)));
        assert!(c.eval(&ev(), &st(9.5, 0.0)));
        assert!(!c.eval(&ev(), &st(5.0, 0.0)));

        assert!(Condition::False.negate().eval(&ev(), &st(0.0, 0.0)));
    }

    #[test]
    fn empty_connectives() {
        assert!(Condition::All(vec![]).eval(&ev(), &st(0.0, 0.0)));
        assert!(!Condition::Any(vec![]).eval(&ev(), &st(0.0, 0.0)));
    }

    #[test]
    fn specificity_counts_atoms() {
        assert_eq!(Condition::True.specificity(), 0);
        let c = Condition::state_at_least(VarId(0), 1.0)
            .and(Condition::event_flag("f", true))
            .and(Condition::InRegion(Region::All).negate());
        assert_eq!(c.specificity(), 3);
    }

    #[test]
    fn value_conversions_and_display() {
        assert_eq!(Value::from(1.5).to_string(), "1.5");
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::from(true).to_string(), "true");
    }
}
