//! Property-based tests for the policy engine.

use proptest::prelude::*;

use apdm_policy::{
    parse_rule, to_dsl, Action, AuditKind, AuditLog, Cmp, Condition, EcaRule, Event, Obligation,
    ObligationStatus, ObligationTracker, PolicyEngine, PolicySet,
};
use apdm_statespace::{StateDelta, StateSchema, VarId};

fn schema() -> StateSchema {
    StateSchema::builder().var("x", 0.0, 10.0).build()
}

fn rule(name: &str, prio: i32, threshold: f64, action: &str) -> EcaRule {
    EcaRule::new(
        name.to_string(),
        Event::pattern("tick"),
        Condition::state_at_least(VarId(0), threshold),
        Action::adjust(action.to_string(), Default::default()),
    )
    .with_priority(prio)
}

proptest! {
    /// The winning rule always (a) matches and (b) carries the maximum
    /// priority among matching rules; the matched list is complete.
    #[test]
    fn winner_dominates(
        rules in proptest::collection::vec((-5i32..5, 0.0..10.0f64), 1..12),
        x in 0.0..=10.0f64,
    ) {
        let mut engine = PolicyEngine::new();
        for (i, (p, t)) in rules.iter().enumerate() {
            engine.add_rule(rule(&format!("r{i}"), *p, *t, &format!("a{i}")));
        }
        let s = schema().state(&[x]).unwrap();
        let ev = Event::named("tick");
        let matching: Vec<_> = engine
            .iter()
            .filter(|(_, r)| r.fires(&ev, &s))
            .map(|(id, r)| (id, r.priority()))
            .collect();
        match engine.decide(&ev, &s) {
            None => prop_assert!(matching.is_empty()),
            Some(d) => {
                prop_assert_eq!(d.matched().len(), matching.len());
                let max_prio = matching.iter().map(|(_, p)| *p).max().unwrap();
                prop_assert_eq!(engine.rule(d.rule()).unwrap().priority(), max_prio);
            }
        }
    }

    /// add_rule_deduped is idempotent: absorbing the same rules repeatedly
    /// never grows the engine past the distinct-rule count.
    #[test]
    fn dedup_idempotence(
        rules in proptest::collection::vec((0i32..3, 0.0..3.0f64), 1..10),
        repeats in 1usize..4,
    ) {
        let built: Vec<EcaRule> = rules
            .iter()
            .enumerate()
            .map(|(i, (p, t))| rule(&format!("r{i}"), *p, *t, "act"))
            .collect();
        let mut engine = PolicyEngine::new();
        for _ in 0..repeats {
            for r in &built {
                engine.add_rule_deduped(r.clone());
            }
        }
        let mut reference = PolicyEngine::new();
        for r in &built {
            reference.add_rule_deduped(r.clone());
        }
        prop_assert_eq!(engine.len(), reference.len());
    }

    /// PolicySet::merge is idempotent and commutative in content: A+B and
    /// B+A are equivalent sets.
    #[test]
    fn merge_commutative_in_content(
        xs in proptest::collection::vec(0.0..5.0f64, 0..6),
        ys in proptest::collection::vec(0.0..5.0f64, 0..6),
    ) {
        let mk = |vals: &[f64], tag: &str| {
            let mut s = PolicySet::new(tag.to_string());
            for (i, t) in vals.iter().enumerate() {
                s.push(rule(&format!("{tag}{i}"), 0, *t, "act"));
            }
            s
        };
        let mut ab = mk(&xs, "a");
        ab.merge(&mk(&ys, "b"));
        let mut ba = mk(&ys, "b");
        ba.merge(&mk(&xs, "a"));
        prop_assert!(ab.equivalent(&ba));
        // Merging again changes nothing.
        let before = ab.len();
        ab.merge(&mk(&ys, "b"));
        prop_assert_eq!(ab.len(), before);
    }

    /// Condition::specificity is additive over conjunction.
    #[test]
    fn specificity_additive(n in 1usize..8) {
        let mut c = Condition::state_at_least(VarId(0), 0.0);
        for i in 1..n {
            c = c.and(Condition::state_at_least(VarId(0), i as f64));
        }
        prop_assert_eq!(c.specificity(), n);
    }

    /// Cmp::eval matches the mathematical relation for all operators.
    #[test]
    fn cmp_matches_math(a in -100.0..100.0f64, b in -100.0..100.0f64) {
        prop_assert_eq!(Cmp::Lt.eval(a, b), a < b);
        prop_assert_eq!(Cmp::Le.eval(a, b), a <= b);
        prop_assert_eq!(Cmp::Eq.eval(a, b), a == b);
        prop_assert_eq!(Cmp::Ne.eval(a, b), a != b);
        prop_assert_eq!(Cmp::Ge.eval(a, b), a >= b);
        prop_assert_eq!(Cmp::Gt.eval(a, b), a > b);
    }

    /// Obligation tracker: every obligation ends Fulfilled or Overdue, never
    /// both; fulfilling before the deadline always wins; the overdue count
    /// equals the obligations not discharged in time.
    #[test]
    fn obligation_lifecycle(
        jobs in proptest::collection::vec((0u64..20, 0u64..10, 0u64..40), 1..20),
    ) {
        let mut tracker = ObligationTracker::new();
        let mut expected_overdue = 0;
        let mut ids = Vec::new();
        for (incurred, deadline, fulfil_at) in &jobs {
            let ob = Obligation::after(Action::noop(), *deadline);
            let id = tracker.incur(ob, *incurred);
            ids.push((id, *incurred + *deadline, *fulfil_at));
        }
        for (id, due, fulfil_at) in &ids {
            tracker.fulfill(*id, *fulfil_at);
            if fulfil_at > due {
                expected_overdue += 1;
            }
        }
        tracker.advance(10_000);
        prop_assert_eq!(tracker.overdue_count(), expected_overdue);
        for (id, due, fulfil_at) in &ids {
            let status = tracker.status(*id).unwrap();
            if fulfil_at <= due {
                prop_assert_eq!(status, ObligationStatus::Fulfilled);
            } else {
                prop_assert_eq!(status, ObligationStatus::Overdue);
            }
        }
    }

    /// DSL round-trip: any rule built from DSL-expressible parts serializes
    /// via `to_dsl` and re-parses to an equivalent rule.
    #[test]
    fn dsl_roundtrip(
        prio in -9i32..9,
        generated in any::<bool>(),
        physical in any::<bool>(),
        atoms in proptest::collection::vec((0usize..3, 0u8..6, -50.0..50.0f64), 1..4),
        deltas in proptest::collection::vec((0usize..3, -5.0..5.0f64), 0..3),
    ) {
        let mut cond: Option<Condition> = None;
        for (var, op_code, value) in &atoms {
            let op = match op_code {
                0 => Cmp::Lt,
                1 => Cmp::Le,
                2 => Cmp::Eq,
                3 => Cmp::Ne,
                4 => Cmp::Ge,
                _ => Cmp::Gt,
            };
            let atom = Condition::StateCmp { var: VarId(*var), op, value: *value };
            cond = Some(match cond {
                None => atom,
                Some(c) => c.and(atom),
            });
        }
        let mut delta = StateDelta::empty();
        for (var, dv) in &deltas {
            delta = delta.and(VarId(*var), *dv);
        }
        let mut action = Action::adjust("act", delta);
        if physical {
            action = action.physical();
        }
        let mut rule = EcaRule::new("r", Event::pattern("e"), cond.unwrap(), action)
            .with_priority(prio);
        if generated {
            rule = rule.generated();
        }
        let text = to_dsl(&rule);
        let reparsed = parse_rule(&text)
            .unwrap_or_else(|e| panic!("reparse of `{text}` failed: {e}"));
        prop_assert!(rule.equivalent(&reparsed), "roundtrip broke `{}`", text);
        prop_assert_eq!(rule.is_generated(), reparsed.is_generated());
    }

    /// The audit log is append-only in observable behaviour: entries never
    /// change and counts are monotone.
    #[test]
    fn audit_monotone(n in 1usize..30) {
        let mut log = AuditLog::new();
        let mut counts = Vec::new();
        for i in 0..n {
            log.record(i as u64, "d", AuditKind::Decision, format!("e{i}"));
            counts.push(log.len());
        }
        prop_assert!(counts.windows(2).all(|w| w[0] < w[1]));
        for (i, e) in log.entries().iter().enumerate() {
            prop_assert_eq!(e.detail.clone(), format!("e{i}"));
        }
    }
}
