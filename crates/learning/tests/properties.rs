//! Property-based tests for the learning substrate and attack models.

use proptest::prelude::*;

use apdm_learning::adversarial::{deny_data, obfuscate_feature, poison_labels, report};
use apdm_learning::{
    BehaviorClone, Dataset, NearestCentroid, OnlineClassifier, Perceptron, QLearner, Sample,
};

proptest! {
    /// Poisoning at rate r flips roughly r of the labels and never touches
    /// features; rate 0 and 1 are exact.
    #[test]
    fn poison_rate_bounds(rate in 0.0..=1.0f64, seed in 0u64..100) {
        let clean = Dataset::linear(200, 2, seed);
        let poisoned = poison_labels(&clean, rate, seed + 1);
        let rep = report(&clean, &poisoned);
        prop_assert_eq!(rep.clean_len, rep.attacked_len);
        let frac = rep.labels_flipped as f64 / 200.0;
        prop_assert!((frac - rate).abs() < 0.15, "rate {rate} flipped {frac}");
        for (a, b) in clean.samples().iter().zip(poisoned.samples()) {
            prop_assert_eq!(&a.x, &b.x);
        }
    }

    /// Denial only removes, never alters: the surviving samples are a
    /// subsequence of the originals.
    #[test]
    fn denial_is_a_filter(seed in 0u64..100, cut in 0.0..1.0f64) {
        let clean = Dataset::linear(100, 2, seed);
        let denied = deny_data(&clean, |s: &Sample| s.x[0] < cut);
        prop_assert!(denied.len() <= clean.len());
        let mut iter = clean.samples().iter();
        for survivor in denied.samples() {
            prop_assert!(iter.any(|orig| orig == survivor), "sample not from original");
        }
    }

    /// Obfuscation keeps labels and sample count; only the target feature
    /// changes.
    #[test]
    fn obfuscation_scope(seed in 0u64..100) {
        let clean = Dataset::linear(100, 3, seed);
        let fogged = obfuscate_feature(&clean, 1, 0.0, 1.0, seed + 7);
        prop_assert_eq!(clean.len(), fogged.len());
        for (a, b) in clean.samples().iter().zip(fogged.samples()) {
            prop_assert_eq!(a.y, b.y);
            prop_assert_eq!(a.x[0], b.x[0]);
            prop_assert_eq!(a.x[2], b.x[2]);
        }
    }

    /// The perceptron's update only moves weights on mistakes, and always
    /// toward reducing the margin error on the triggering sample.
    #[test]
    fn perceptron_update_direction(
        x in proptest::collection::vec(-1.0..1.0f64, 2),
        y in any::<bool>(),
    ) {
        let mut p = Perceptron::new(2, 0.5);
        let margin_before = p.margin(&x);
        let was_correct = p.update(&x, y);
        if was_correct {
            prop_assert_eq!(p.margin(&x), margin_before);
        } else {
            let margin_after = p.margin(&x);
            if y {
                prop_assert!(margin_after >= margin_before);
            } else {
                prop_assert!(margin_after <= margin_before);
            }
        }
    }

    /// Nearest centroid: after absorbing samples of only one class, it
    /// predicts that class everywhere.
    #[test]
    fn centroid_single_class_bias(
        xs in proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, 2), 1..20),
        y in any::<bool>(),
        probe in proptest::collection::vec(-5.0..5.0f64, 2),
    ) {
        let mut c = NearestCentroid::new(2);
        for x in &xs {
            c.update(x, y);
        }
        prop_assert_eq!(c.predict(&probe), y);
    }

    /// Q-learning with gamma=0 and a deterministic reward converges to the
    /// greedy-on-reward policy.
    #[test]
    fn qlearner_bandit_convergence(best in 0usize..4, seed in 0u64..50) {
        let mut q = QLearner::new(1, 4, 0.5, 0.0, 0.3, seed);
        for _ in 0..400 {
            let a = q.choose(0);
            q.update(0, a, if a == best { 1.0 } else { 0.0 }, 0);
        }
        prop_assert_eq!(q.best_action(0), best);
    }

    /// Behaviour cloning fidelity is 1.0 exactly when the demonstrator never
    /// erred on any observed state.
    #[test]
    fn clone_fidelity_extremes(states in proptest::collection::vec(0usize..10, 1..50)) {
        let mut perfect = BehaviorClone::new();
        perfect.observe_demonstrator(states.iter().copied(), |s| s % 3, 3, 0.0, 1);
        prop_assert_eq!(perfect.fidelity(|s| s % 3), 1.0);
    }
}
